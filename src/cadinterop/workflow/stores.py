"""Pluggable data management: plain files, versioned store, make-like deps.

Section 5 ("Architectural separation of workflow and data management"):
"It should be possible to build a flow that contains as much data
management as is required - but no more...  In some cases, UNIX-based
utilities such as SCCS, RCS and make can provide an adequate level of data
management.  In other cases, a much more sophisticated level ... is
required.  This decision should be left to the flow developer, not the
workflow system provider."

Accordingly, all three levels share one minimal protocol (``put``/``get``/
``exists``) the engine can use, and each adds its own capabilities on top:
:class:`VersionedStore` adds RCS-style check-in history, and
:class:`MakeLikeChecker` answers "is this target up to date?".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple


class StoreError(Exception):
    """Data management failure."""


class FileStore:
    """Level 1: a bare directory; the designer manages nothing."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        return self.root / name

    def put(self, name: str, content: str) -> None:
        path = self._path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)

    def get(self, name: str) -> str:
        path = self._path(name)
        if not path.exists():
            raise StoreError(f"no data item {name!r}")
        return path.read_text()

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def path_of(self, name: str) -> Path:
        return self._path(name)


@dataclass
class Revision:
    """One checked-in revision of a data item."""

    number: int
    content: str
    author: str
    comment: str
    timestamp: float


class VersionedStore:
    """Level 2: RCS-like check-in/check-out with revision history and locks."""

    def __init__(self) -> None:
        self._revisions: Dict[str, List[Revision]] = {}
        self._locks: Dict[str, str] = {}  # item -> holder

    def check_in(self, name: str, content: str, author: str, comment: str = "") -> Revision:
        holder = self._locks.get(name)
        if holder is not None and holder != author:
            raise StoreError(f"{name!r} is locked by {holder!r}")
        history = self._revisions.setdefault(name, [])
        revision = Revision(
            number=len(history) + 1,
            content=content,
            author=author,
            comment=comment,
            timestamp=time.time(),
        )
        history.append(revision)
        self._locks.pop(name, None)
        return revision

    def check_out(self, name: str, author: str, lock: bool = True) -> Revision:
        history = self._revisions.get(name)
        if not history:
            raise StoreError(f"no data item {name!r}")
        if lock:
            holder = self._locks.get(name)
            if holder is not None and holder != author:
                raise StoreError(f"{name!r} is locked by {holder!r}")
            self._locks[name] = author
        return history[-1]

    def unlock(self, name: str, author: str) -> None:
        holder = self._locks.get(name)
        if holder is None:
            return
        if holder != author:
            raise StoreError(f"{name!r} is locked by {holder!r}, not {author!r}")
        del self._locks[name]

    def revision(self, name: str, number: int) -> Revision:
        history = self._revisions.get(name, [])
        for revision in history:
            if revision.number == number:
                return revision
        raise StoreError(f"{name!r} has no revision {number}")

    def history(self, name: str) -> List[Revision]:
        return list(self._revisions.get(name, []))

    # Minimal shared protocol
    def put(self, name: str, content: str) -> None:
        self.check_in(name, content, author="workflow")

    def get(self, name: str) -> str:
        history = self._revisions.get(name)
        if not history:
            raise StoreError(f"no data item {name!r}")
        return history[-1].content

    def exists(self, name: str) -> bool:
        return bool(self._revisions.get(name))


@dataclass(frozen=True)
class MakeRule:
    """target: prerequisites, with a rebuild marker."""

    target: str
    prerequisites: Tuple[str, ...]


class MakeLikeChecker:
    """Level 1.5: make-style out-of-date detection over a file store."""

    def __init__(self, store: FileStore) -> None:
        self.store = store
        self.rules: Dict[str, MakeRule] = {}

    def add_rule(self, target: str, prerequisites: Sequence[str]) -> MakeRule:
        if target in self.rules:
            raise StoreError(f"duplicate rule for {target!r}")
        rule = MakeRule(target, tuple(prerequisites))
        self.rules[target] = rule
        return rule

    def out_of_date(self, target: str) -> Tuple[bool, str]:
        """(stale?, reason) — recursive over prerequisite rules."""
        rule = self.rules.get(target)
        target_path = self.store.path_of(target)
        if not target_path.exists():
            return True, f"{target} does not exist"
        if rule is None:
            return False, f"{target} is a source"
        target_mtime = target_path.stat().st_mtime
        for prerequisite in rule.prerequisites:
            stale, reason = self.out_of_date(prerequisite)
            if stale:
                return True, f"{target} <- {reason}"
            prerequisite_path = self.store.path_of(prerequisite)
            if prerequisite_path.stat().st_mtime > target_mtime:
                return True, f"{prerequisite} newer than {target}"
        return False, f"{target} up to date"
