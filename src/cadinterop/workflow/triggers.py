"""Trigger-based procedures: change detection and downstream notification.

Section 5: "Workflow procedures can be automatically triggered based on
design data-related events that occur...  Trigger-based procedures provide
the ability to notify the user when something has changed in the design
that does, or might, require them to rework some of their steps.  Features
that detect changes, notify downstream process steps, capture information
about the change, and allow the user to determine the best course of
action must be provided."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from cadinterop.workflow.data import DataSnapshot, DataVariable
from cadinterop.workflow.engine import WorkflowEngine
from cadinterop.workflow.model import FlowInstance, StepState


@dataclass
class Notification:
    """A captured change notification delivered to the user."""

    kind: str
    subject: str
    detail: str
    affected_steps: Tuple[str, ...] = ()


class TriggerManager:
    """Watches data variables and step events; marks stale steps."""

    def __init__(self, engine: WorkflowEngine) -> None:
        self.engine = engine
        self.notifications: List[Notification] = []
        self._watched: List[Tuple[FlowInstance, DataVariable, Tuple[str, ...], Dict[Path, DataSnapshot]]] = []
        self._variable_triggers: List[Tuple[str, Callable[[FlowInstance, str, Any], None]]] = []
        engine.on_variable_change(self._variable_changed)

    # -- data-file watching -----------------------------------------------

    def watch(
        self,
        instance: FlowInstance,
        variable: DataVariable,
        downstream_steps: Sequence[str],
    ) -> None:
        """Watch a data variable's files; changes mark the steps stale."""
        baseline = variable.observe()
        self._watched.append((instance, variable, tuple(downstream_steps), baseline))

    def poll(self) -> List[Notification]:
        """Detect changes since the baselines; returns new notifications."""
        new: List[Notification] = []
        updated: List[Tuple[FlowInstance, DataVariable, Tuple[str, ...], Dict[Path, DataSnapshot]]] = []
        for instance, variable, steps, baseline in self._watched:
            changed = variable.changed_since(baseline)
            if changed:
                for step in steps:
                    self.engine.mark_needs_rerun(instance, step)
                notification = Notification(
                    kind="data-changed",
                    subject=variable.name,
                    detail=", ".join(str(p) for p in changed),
                    affected_steps=steps,
                )
                self.notifications.append(notification)
                new.append(notification)
                baseline = variable.observe()
            updated.append((instance, variable, steps, baseline))
        self._watched = updated
        return new

    # -- metadata triggers ----------------------------------------------------

    def on_variable(self, name: str, procedure: Callable[[FlowInstance, str, Any], None]) -> None:
        """Run a procedure whenever the named data variable is set."""
        self._variable_triggers.append((name, procedure))

    def _variable_changed(self, instance: FlowInstance, name: str, value: Any) -> None:
        for watched_name, procedure in self._variable_triggers:
            if watched_name == name:
                procedure(instance, name, value)
                self.notifications.append(
                    Notification(
                        kind="variable-trigger",
                        subject=name,
                        detail=f"value={value!r} in block {instance.block}",
                    )
                )
