"""Workflow metrics: status collection and closed-loop process tuning.

Section 5: "As the workflow progresses, status is collected and reported to
the end-user and to management as required.  These collected metrics can
later be analyzed and used to tune the process, providing a closed-loop,
continuously improving process environment."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from cadinterop.obs.metrics import MetricsRegistry, get_metrics
from cadinterop.workflow.model import FlowInstance, StepState


@dataclass
class StepMetrics:
    """Aggregated observations for one step name across instances."""

    name: str
    runs: int = 0
    failures: int = 0
    total_duration: float = 0.0
    samples: int = 0

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self.samples if self.samples else 0.0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.runs if self.runs else 0.0


class MetricsCollector:
    """Collects status from instance trees; answers tuning questions."""

    def __init__(self) -> None:
        self._steps: Dict[str, StepMetrics] = {}
        self.instances_seen = 0

    def collect(self, instance: FlowInstance) -> None:
        """Fold one instance tree's records into the aggregate."""
        for node in instance.walk():
            self.instances_seen += 1
            for record in node.records.values():
                metrics = self._steps.setdefault(record.name, StepMetrics(record.name))
                metrics.runs += record.runs
                if record.state is StepState.FAILED:
                    metrics.failures += 1
                duration = record.duration
                if duration is not None:
                    metrics.total_duration += duration
                    metrics.samples += 1

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Export the aggregate into an obs metrics registry (default: the
        globally installed one) — per-step run/failure counters plus a
        duration histogram, so workflow health rides along in the same
        snapshot as farm and pipeline metrics."""
        registry = registry if registry is not None else get_metrics()
        for metrics in self._steps.values():
            if metrics.runs:
                registry.counter(f"workflow.step.runs[{metrics.name}]").inc(
                    metrics.runs
                )
            if metrics.failures:
                registry.counter(f"workflow.step.failures[{metrics.name}]").inc(
                    metrics.failures
                )
            if metrics.samples:
                histogram = registry.histogram(
                    f"workflow.step.seconds[{metrics.name}]"
                )
                # The collector keeps totals, not raw samples; feed the
                # mean per sample so count and sum stay faithful.
                for _ in range(metrics.samples):
                    histogram.observe(metrics.mean_duration)

    def step(self, name: str) -> StepMetrics:
        return self._steps[name]

    def steps(self) -> List[StepMetrics]:
        return list(self._steps.values())

    # -- tuning analysis --------------------------------------------------

    def bottleneck(self) -> Optional[StepMetrics]:
        """The step with the largest mean duration (tune this first)."""
        timed = [m for m in self._steps.values() if m.samples]
        return max(timed, key=lambda m: m.mean_duration) if timed else None

    def most_failure_prone(self) -> Optional[StepMetrics]:
        ran = [m for m in self._steps.values() if m.runs]
        if not ran:
            return None
        worst = max(ran, key=lambda m: m.failure_rate)
        return worst if worst.failure_rate > 0 else None

    def rerun_hotspots(self, threshold: int = 2) -> List[StepMetrics]:
        """Steps re-executed often — candidates for process fixes."""
        return sorted(
            (m for m in self._steps.values() if m.runs >= threshold),
            key=lambda m: m.runs,
            reverse=True,
        )

    def report(self) -> str:
        lines = ["workflow metrics", "================"]
        for metrics in sorted(self._steps.values(), key=lambda m: m.name):
            lines.append(
                f"{metrics.name:24} runs={metrics.runs:3} "
                f"fail%={metrics.failure_rate * 100:5.1f} "
                f"mean={metrics.mean_duration:8.4f}s"
            )
        bottleneck = self.bottleneck()
        if bottleneck is not None:
            lines.append(f"bottleneck: {bottleneck.name} ({bottleneck.mean_duration:.4f}s mean)")
        failure_prone = self.most_failure_prone()
        if failure_prone is not None:
            lines.append(
                f"most failure-prone: {failure_prone.name} "
                f"({failure_prone.failure_rate * 100:.0f}% of runs)"
            )
        return "\n".join(lines)
