"""Workflow state persistence: save and restore instance status.

Section 5: "As the workflow progresses, status is collected and reported to
the end-user and to management as required."  Reporting across sessions
needs durable state: this module serializes a flow instance tree (step
states, exit codes, timings, data variables, event history) to JSON and
restores it against the same template — so a flow survives a workstation
reboot mid-tapeout, which is exactly when it matters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from cadinterop.workflow.model import (
    FlowInstance,
    FlowTemplate,
    StepState,
    WorkflowError,
)

FORMAT_VERSION = 1


def instance_to_dict(instance: FlowInstance) -> Dict[str, Any]:
    """Serialize one instance tree to plain data."""
    return {
        "version": FORMAT_VERSION,
        "template": instance.template.name,
        "block": instance.block,
        "records": {
            name: {
                "state": record.state.value,
                "exit_code": record.exit_code,
                "message": record.message,
                "started_at": record.started_at,
                "finished_at": record.finished_at,
                "runs": record.runs,
            }
            for name, record in instance.records.items()
        },
        "variables": dict(instance.variables),
        "events": list(instance.events),
        "children": {
            name: instance_to_dict(child)
            for name, child in instance.children.items()
        },
    }


def dict_to_instance(data: Dict[str, Any], template: FlowTemplate) -> FlowInstance:
    """Rebuild an instance tree from serialized data and its template.

    The template is the source of truth for structure; the data must match
    it (same template name, same step set) or restoration refuses — silent
    drift between a deployed template and saved state is exactly the kind
    of inconsistency this library exists to flag.
    """
    if data.get("version") != FORMAT_VERSION:
        raise WorkflowError(f"unsupported state format version {data.get('version')!r}")
    if data.get("template") != template.name:
        raise WorkflowError(
            f"saved state is for template {data.get('template')!r}, "
            f"not {template.name!r}"
        )
    saved_steps = set(data.get("records", {}))
    template_steps = set(template.step_names())
    if saved_steps != template_steps:
        raise WorkflowError(
            f"saved state steps {sorted(saved_steps)} do not match template "
            f"steps {sorted(template_steps)}"
        )

    instance = FlowInstance(template, data["block"])
    for name, saved in data["records"].items():
        record = instance.records[name]
        record.state = StepState(saved["state"])
        record.exit_code = saved["exit_code"]
        record.message = saved["message"]
        record.started_at = saved["started_at"]
        record.finished_at = saved["finished_at"]
        record.runs = saved["runs"]
    instance.variables.update(data.get("variables", {}))
    instance.events.extend(tuple(e) for e in data.get("events", []))

    for name, child_data in data.get("children", {}).items():
        step = template.step(name)
        if step.sub_flow is None:
            raise WorkflowError(f"saved child {name!r} is not a sub-flow step")
        instance.children[name] = dict_to_instance(child_data, step.sub_flow)
    return instance


def save_instance(instance: FlowInstance, path: Path) -> None:
    """Write an instance tree to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: Path, template: FlowTemplate) -> FlowInstance:
    """Read an instance tree from a JSON file against its template."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkflowError(f"cannot load workflow state from {path}: {exc}") from exc
    return dict_to_instance(data, template)
