"""Workflow actions: any program, in any language (paper Section 5).

"Open language environment: ... the actions invoked from the process
description can be implemented in any programming language desired by the
flow developer - UNIX shell scripts, PERL, TCL/TK, C-language, etc.  This
openness allows any existing programs, executable from the UNIX command
line, to be attached as actions to a workflow without the use of special
compilers, proprietary languages or wrappers."

Three action classes cover the paper's tool-management modes:

* :class:`ShellAction` — an existing command-line program, attached as-is;
* :class:`PythonAction` — an in-process callable (the "any language" seam);
* :class:`ToolSessionAction` — a feature of an already-running tool,
  reached through its session (the paper's "inter-process communication or
  RPC protocols" case, see :mod:`cadinterop.workflow.tools`).

All expose ``run(api) -> int``: the exit code feeds the engine's default
zero-is-success policy.
"""

from __future__ import annotations

import shlex
import subprocess
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class ShellAction:
    """Run a command line; its exit status is the step's exit code."""

    command: str
    timeout: float = 30.0
    capture: bool = True

    def run(self, api: "object") -> int:
        completed = subprocess.run(
            self.command,
            shell=True,
            timeout=self.timeout,
            stdout=subprocess.PIPE if self.capture else None,
            stderr=subprocess.STDOUT if self.capture else None,
            text=True,
        )
        if self.capture and completed.stdout:
            api.log_output(completed.stdout)
        return completed.returncode


@dataclass
class PythonAction:
    """An in-process callable taking the step API, returning an exit code.

    A return of ``None`` is treated as 0 — mirroring the paper's plea for
    sensible defaults ("a tool invoked from a workflow step that returns
    zero status will be assumed to have completed successfully").
    """

    fn: Callable[[Any], Optional[int]]
    name: str = ""

    def run(self, api: "object") -> int:
        result = self.fn(api)
        return 0 if result is None else int(result)


@dataclass
class ToolSessionAction:
    """Invoke one feature of a persistent tool over its session.

    ``tool`` is a :class:`cadinterop.workflow.tools.PersistentTool`; the
    engine guarantees the tool is started before the first feature call
    ("the first step in the sequence invokes the tool (if not already
    invoked), then subsequent steps communicate to the already-running
    tool").
    """

    tool: object
    feature: str
    args: Dict[str, Any] = field(default_factory=dict)

    def run(self, api: "object") -> int:
        if not self.tool.running:
            self.tool.start()
            api.log_output(f"[tool {self.tool.name} started]")
        return self.tool.call(self.feature, **self.args)
