"""Workflow model: templates, steps, hierarchical sub-flows, instances.

Section 5: "Creating a workflow involves first capturing the structure of
the flow graphically.  Next, the work that occurs within the flow as the
process is followed is specified.  Once the workflow is captured and
specified, the resulting workflow template is deployed across the
organization.  Each instance of the captured process is derived from the
same template, providing process consistency."

And ("Support for hierarchical design"): "Each design block in the
hierarchy can be developed using the same sub-flow template, but the data
and process status is kept separate for each block."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple


class WorkflowError(Exception):
    """Structural or runtime workflow failure."""


class StepState(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"
    NEEDS_RERUN = "needs-rerun"

    @property
    def terminal(self) -> bool:
        return self in (StepState.SUCCEEDED, StepState.FAILED, StepState.SKIPPED)


@dataclass
class StepDef:
    """One step of a template.

    ``action`` is any object with ``run(api) -> int`` (see
    :mod:`cadinterop.workflow.actions`); alternatively ``sub_flow`` names a
    nested template instantiated per design block.  ``explicit_status``
    switches off the default exit-code policy for this step — the action
    must then set its own state through the API ("support is provided in
    the API to set the state of a step to an explicit value").
    """

    name: str
    action: Optional[object] = None
    sub_flow: Optional["FlowTemplate"] = None
    start_after: Tuple[str, ...] = ()
    finish_conditions: Tuple[object, ...] = ()  # Condition objects
    permissions: Optional[Set[str]] = None  # None = anyone
    explicit_status: bool = False

    def __post_init__(self) -> None:
        if (self.action is None) == (self.sub_flow is None):
            raise WorkflowError(
                f"step {self.name!r} needs exactly one of action or sub_flow"
            )


class FlowTemplate:
    """A reusable, deployable process description."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._steps: Dict[str, StepDef] = {}

    def add_step(self, step: StepDef) -> StepDef:
        if step.name in self._steps:
            raise WorkflowError(f"duplicate step {step.name!r} in template {self.name!r}")
        self._steps[step.name] = step
        return step

    def step(self, name: str) -> StepDef:
        try:
            return self._steps[name]
        except KeyError:
            raise WorkflowError(f"template {self.name!r} has no step {name!r}") from None

    def steps(self) -> List[StepDef]:
        return list(self._steps.values())

    def step_names(self) -> List[str]:
        return list(self._steps)

    def validate(self) -> None:
        """Check dependency references and acyclicity."""
        for step in self._steps.values():
            for dependency in step.start_after:
                if dependency not in self._steps:
                    raise WorkflowError(
                        f"step {step.name!r} depends on unknown step {dependency!r}"
                    )
            if step.sub_flow is not None:
                step.sub_flow.validate()
        # Cycle detection via DFS coloring.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._steps}

        def visit(name: str, stack: List[str]) -> None:
            color[name] = GRAY
            for dependency in self._steps[name].start_after:
                if color[dependency] == GRAY:
                    cycle = " -> ".join(stack + [name, dependency])
                    raise WorkflowError(f"dependency cycle: {cycle}")
                if color[dependency] == WHITE:
                    visit(dependency, stack + [name])
            color[name] = BLACK

        for name in self._steps:
            if color[name] == WHITE:
                visit(name, [])

    def topological_order(self) -> List[str]:
        self.validate()
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for dependency in self._steps[name].start_after:
                visit(dependency)
            order.append(name)

        for name in self._steps:
            visit(name)
        return order


@dataclass
class StepRecord:
    """Runtime status of one step within an instance."""

    name: str
    state: StepState = StepState.PENDING
    exit_code: Optional[int] = None
    message: str = ""
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    runs: int = 0

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class FlowInstance:
    """One deployment of a template against one design block.

    ``block`` names the design-hierarchy node this instance serves; nested
    sub-flows get dotted block paths, so "a natural design hierarchy is
    visible" while "the data and process status is kept separate for each
    block".
    """

    def __init__(self, template: FlowTemplate, block: str = "top") -> None:
        template.validate()
        self.template = template
        self.block = block
        self.records: Dict[str, StepRecord] = {
            name: StepRecord(name) for name in template.step_names()
        }
        self.children: Dict[str, "FlowInstance"] = {}
        #: data variables: metadata proxies for design data items
        self.variables: Dict[str, Any] = {}
        self.events: List[Tuple[str, str]] = []  # (event kind, detail)

    def record(self, step_name: str) -> StepRecord:
        try:
            return self.records[step_name]
        except KeyError:
            raise WorkflowError(
                f"instance {self.block!r} has no step {step_name!r}"
            ) from None

    def state_of(self, step_name: str) -> StepState:
        return self.record(step_name).state

    def emit(self, kind: str, detail: str) -> None:
        self.events.append((kind, detail))

    def walk(self) -> Iterator["FlowInstance"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def all_succeeded(self) -> bool:
        return all(
            record.state is StepState.SUCCEEDED for record in self.records.values()
        ) and all(child.all_succeeded() for child in self.children.values())
