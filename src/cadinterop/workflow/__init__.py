"""Workflow management (paper Section 5).

A workflow engine with every characteristic the paper requires: environment
independence (actions are opaque programs), an open language environment
(shell, Python, persistent-tool sessions), flexible tool management,
default exit-code status with an explicit-status API escape, hierarchical
sub-flows per design block, pluggable data management (plain files,
RCS-like versioning, make-like staleness), start/finish dependencies with
permissions and reset rules, trigger-based change notification, and
closed-loop metrics.
"""

from cadinterop.workflow.actions import PythonAction, ShellAction, ToolSessionAction
from cadinterop.workflow.data import (
    ContentContains,
    DataSnapshot,
    DataVariable,
    FileExists,
    NewerThan,
    VariableEquals,
    snapshot_file,
)
from cadinterop.workflow.engine import RunSummary, StepApi, WorkflowEngine
from cadinterop.workflow.metrics import MetricsCollector, StepMetrics
from cadinterop.workflow.model import (
    FlowInstance,
    FlowTemplate,
    StepDef,
    StepRecord,
    StepState,
    WorkflowError,
)
from cadinterop.workflow.stores import (
    FileStore,
    MakeLikeChecker,
    Revision,
    StoreError,
    VersionedStore,
)
from cadinterop.workflow.tools import PersistentTool, ToolSessionError
from cadinterop.workflow.triggers import Notification, TriggerManager

__all__ = [
    "ContentContains",
    "DataSnapshot",
    "DataVariable",
    "FileExists",
    "FileStore",
    "FlowInstance",
    "FlowTemplate",
    "MakeLikeChecker",
    "MetricsCollector",
    "NewerThan",
    "Notification",
    "PersistentTool",
    "PythonAction",
    "Revision",
    "RunSummary",
    "ShellAction",
    "StepApi",
    "StepDef",
    "StepMetrics",
    "StepRecord",
    "StepState",
    "StoreError",
    "ToolSessionAction",
    "ToolSessionError",
    "TriggerManager",
    "VariableEquals",
    "VersionedStore",
    "WorkflowEngine",
    "WorkflowError",
    "snapshot_file",
]
