"""Tool management: one-shot invocations vs persistent tool sessions.

Section 5 ("Flexible tool management"): "a workflow may consist of a number
of separate steps, each of which causes a separate tool to invoke.  Another
workflow may consist of the same number of steps, but in this case each of
the steps causes a separate feature of a single tool to be executed.  In
the first case, each tool is invoked as a separate process and the return
value ... is used to determine the success or failure of the step.  In the
second case, the first step in the sequence invokes the tool (if not
already invoked), then subsequent steps communicate to the already-running
tool via inter-process communication or RPC protocols."

:class:`PersistentTool` models the second case: an object with explicit
start/stop lifecycle and named features reachable over its "session".  The
in-process implementation keeps the integration surface honest (lifecycle
errors, unknown features, per-call status) without a real daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class ToolSessionError(Exception):
    """Lifecycle or protocol misuse of a persistent tool."""


class PersistentTool:
    """A long-running tool with feature calls over a session."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.running = False
        self.start_count = 0
        self.call_log: List[str] = []
        self._features: Dict[str, Callable[..., int]] = {}

    def register_feature(self, feature: str, fn: Callable[..., int]) -> None:
        if feature in self._features:
            raise ToolSessionError(f"feature {feature!r} already registered")
        self._features[feature] = fn

    def start(self) -> None:
        if self.running:
            raise ToolSessionError(f"tool {self.name!r} already running")
        self.running = True
        self.start_count += 1

    def stop(self) -> None:
        if not self.running:
            raise ToolSessionError(f"tool {self.name!r} is not running")
        self.running = False

    def call(self, feature: str, **kwargs: Any) -> int:
        if not self.running:
            raise ToolSessionError(
                f"feature {feature!r} called but tool {self.name!r} is not running"
            )
        if feature not in self._features:
            raise ToolSessionError(f"tool {self.name!r} has no feature {feature!r}")
        self.call_log.append(feature)
        result = self._features[feature](**kwargs)
        return 0 if result is None else int(result)
