"""The workflow engine: execution, default status policy, step API.

Key Section 5 behaviors implemented here:

* **Default behavior, not built-in policies** — "a tool invoked from a
  workflow step that returns zero status will be assumed to have completed
  successfully, and the workflow status for that task will be updated
  appropriately by default"; steps flagged ``explicit_status`` must set
  their own state through the API instead.
* **Start and finish dependencies** — a step becomes READY only when its
  ``start_after`` steps succeeded; it may only complete successfully when
  its ``finish_conditions`` hold ("other events might be used to insure
  that a task does not complete too soon").
* **Permissions and reset rules** — "Do I have the necessary permissions to
  execute this task?", "When can I reset and rerun this step?".
* **Hierarchical sub-flows** — one template instantiated per design block,
  status kept separate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.obs import get_lineage, get_logger, get_metrics, get_tracer
from cadinterop.workflow.model import (
    FlowInstance,
    FlowTemplate,
    StepDef,
    StepRecord,
    StepState,
    WorkflowError,
)

_log = get_logger("workflow.engine")


class StepApi:
    """What an action sees: state control, data variables, notification."""

    def __init__(self, engine: "WorkflowEngine", instance: FlowInstance, step: StepDef) -> None:
        self._engine = engine
        self._instance = instance
        self._step = step
        self.output: List[str] = []
        self._explicit_state: Optional[StepState] = None

    # -- logging ----------------------------------------------------------
    def log_output(self, text: str) -> None:
        self.output.append(text)

    # -- explicit status (the escape hatch from the default policy) --------
    def set_state(self, state: StepState, message: str = "") -> None:
        if state not in (StepState.SUCCEEDED, StepState.FAILED, StepState.SKIPPED):
            raise WorkflowError(f"actions may only set terminal states, not {state}")
        self._explicit_state = state
        if message:
            self.log_output(message)

    @property
    def explicit_state(self) -> Optional[StepState]:
        return self._explicit_state

    # -- metadata exchange ("exchange (set/get) metadata with the workflow")
    def set_variable(self, name: str, value: Any) -> None:
        # An artifact facet: the step produced workflow metadata that did
        # not exist before it ran.
        get_lineage().record(
            "artifact", name, f"workflow:{self._step.name}", "synthesized",
            detail=f"produced {value!r}", design=self._instance.block,
        )
        self._engine.set_variable(self._instance, name, value)

    def get_variable(self, name: str, default: Any = None) -> Any:
        if name in self._instance.variables:
            get_lineage().record(
                "artifact", name, f"workflow:{self._step.name}", "preserved",
                detail="consumed", design=self._instance.block,
            )
        return self._instance.variables.get(name, default)

    # -- introspection -------------------------------------------------------
    @property
    def block(self) -> str:
        return self._instance.block

    @property
    def step_name(self) -> str:
        return self._step.name


@dataclass
class RunSummary:
    """Outcome of one engine run over an instance tree."""

    executed: List[str] = field(default_factory=list)
    succeeded: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    blocked: List[str] = field(default_factory=list)
    skipped_permission: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.blocked and not self.skipped_permission


class WorkflowEngine:
    """Instantiates templates and drives instances to completion."""

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._variable_listeners: List[Callable[[FlowInstance, str, Any], None]] = []
        self._completion_listeners: List[Callable[[FlowInstance, str, StepState], None]] = []

    # -- deployment ---------------------------------------------------------

    def instantiate(self, template: FlowTemplate, block: str = "top") -> FlowInstance:
        """Deploy a template for one design block (sub-flows recurse)."""
        instance = FlowInstance(template, block)
        for step in template.steps():
            if step.sub_flow is not None:
                instance.children[step.name] = self.instantiate(
                    step.sub_flow, block=f"{block}.{step.name}"
                )
        return instance

    def instantiate_for_blocks(
        self, template: FlowTemplate, blocks: Sequence[str]
    ) -> Dict[str, FlowInstance]:
        """One instance per design block, all from the same template."""
        return {block: self.instantiate(template, block) for block in blocks}

    # -- listeners (used by triggers) -------------------------------------------

    def on_variable_change(self, listener: Callable[[FlowInstance, str, Any], None]) -> None:
        self._variable_listeners.append(listener)

    def on_step_complete(self, listener: Callable[[FlowInstance, str, StepState], None]) -> None:
        self._completion_listeners.append(listener)

    def set_variable(self, instance: FlowInstance, name: str, value: Any) -> None:
        instance.variables[name] = value
        instance.emit("variable", f"{name}={value!r}")
        get_metrics().counter("workflow.variable.changes").inc()
        if self._variable_listeners:
            with get_tracer().span(
                "workflow:trigger", variable=name, block=instance.block
            ):
                for listener in self._variable_listeners:
                    listener(instance, name, value)

    # -- execution -------------------------------------------------------------

    def _start_dependencies_met(self, instance: FlowInstance, step: StepDef) -> bool:
        return all(
            instance.state_of(dependency) is StepState.SUCCEEDED
            for dependency in step.start_after
        )

    def _check_permission(self, step: StepDef, user: Optional[str], roles: Set[str]) -> bool:
        if step.permissions is None:
            return True
        return bool(step.permissions & roles)

    def run(
        self,
        instance: FlowInstance,
        user: Optional[str] = None,
        roles: Optional[Set[str]] = None,
    ) -> RunSummary:
        """Execute all runnable steps in dependency order."""
        summary = RunSummary()
        roles = roles or set()
        with get_tracer().span("workflow:run", block=instance.block):
            for step_name in instance.template.topological_order():
                step = instance.template.step(step_name)
                record = instance.record(step_name)
                if record.state.terminal and record.state is not StepState.FAILED:
                    continue
                if record.state is StepState.FAILED:
                    summary.blocked.append(step_name)
                    continue
                if not self._start_dependencies_met(instance, step):
                    summary.blocked.append(step_name)
                    continue
                if not self._check_permission(step, user, roles):
                    summary.skipped_permission.append(step_name)
                    instance.emit("permission-denied", f"{step_name} for user {user!r}")
                    _log.info(
                        "permission denied: %s.%s for user %r",
                        instance.block, step_name, user,
                    )
                    get_metrics().counter("workflow.steps.permission_denied").inc()
                    continue
                state = self._execute_step(instance, step, record, user, roles, summary)
                if state is StepState.SUCCEEDED:
                    summary.succeeded.append(step_name)
                elif state is StepState.FAILED:
                    summary.failed.append(step_name)
        return summary

    def _execute_step(
        self,
        instance: FlowInstance,
        step: StepDef,
        record: StepRecord,
        user: Optional[str],
        roles: Set[str],
        summary: RunSummary,
    ) -> StepState:
        metrics = get_metrics()
        metrics.counter("workflow.steps.executed").inc()
        with get_tracer().span(
            "workflow:step", step=step.name, block=instance.block
        ) as span:
            state = self._run_step(instance, step, record, user, roles, summary)
            span.set(state=state.value)
        metrics.counter(f"workflow.steps.{state.value.lower()}").inc()
        if state is StepState.FAILED:
            _log.info(
                "step failed: %s.%s (%s)", instance.block, step.name, record.message
            )
        return state

    def _run_step(
        self,
        instance: FlowInstance,
        step: StepDef,
        record: StepRecord,
        user: Optional[str],
        roles: Set[str],
        summary: RunSummary,
    ) -> StepState:
        record.state = StepState.RUNNING
        record.started_at = self._clock()
        record.runs += 1
        summary.executed.append(step.name)

        if step.sub_flow is not None:
            child = instance.children[step.name]
            child_summary = self.run(child, user, roles)
            state = (
                StepState.SUCCEEDED
                if child_summary.ok and child.all_succeeded()
                else StepState.FAILED
            )
            record.message = (
                f"sub-flow {child.block}: {len(child_summary.succeeded)} ok, "
                f"{len(child_summary.failed)} failed"
            )
        else:
            api = StepApi(self, instance, step)
            try:
                exit_code = step.action.run(api)
            except Exception as exc:  # noqa: BLE001 - tool crashes are data
                record.exit_code = -1
                record.message = f"action raised: {exc}"
                state = StepState.FAILED
            else:
                record.exit_code = exit_code
                if step.explicit_status:
                    if api.explicit_state is None:
                        record.message = "explicit-status step never set its state"
                        state = StepState.FAILED
                    else:
                        state = api.explicit_state
                else:
                    # The default policy: zero is success.
                    state = StepState.SUCCEEDED if exit_code == 0 else StepState.FAILED
                    record.message = f"exit {exit_code}"

        # Finish dependencies: hold completion until conditions are met.
        if state is StepState.SUCCEEDED:
            for condition in step.finish_conditions:
                ok, reason = condition.check(instance)
                if not ok:
                    state = StepState.FAILED
                    record.message = f"finish condition failed: {reason}"
                    break

        record.state = state
        record.finished_at = self._clock()
        instance.emit("step", f"{step.name}:{state.value}")
        for listener in self._completion_listeners:
            listener(instance, step.name, state)
        return state

    # -- reset / rerun rules ------------------------------------------------------

    def can_reset(self, instance: FlowInstance, step_name: str) -> Tuple[bool, str]:
        """"When can I reset and rerun this step?" — only when no successor
        that consumed its result is currently running."""
        for other in instance.template.steps():
            if step_name in other.start_after:
                state = instance.state_of(other.name)
                if state is StepState.RUNNING:
                    return False, f"successor {other.name!r} is running"
        return True, "ok"

    def reset(self, instance: FlowInstance, step_name: str, cascade: bool = True) -> List[str]:
        """Reset a step (and, by default, everything downstream of it)."""
        ok, reason = self.can_reset(instance, step_name)
        if not ok:
            raise WorkflowError(f"cannot reset {step_name!r}: {reason}")
        reset_steps = [step_name]
        record = instance.record(step_name)
        record.state = StepState.PENDING
        record.exit_code = None
        record.message = ""
        if cascade:
            for other in instance.template.steps():
                if step_name in other.start_after and instance.state_of(other.name).terminal:
                    reset_steps.extend(self.reset(instance, other.name, cascade=True))
        instance.emit("reset", ",".join(reset_steps))
        return reset_steps

    def mark_needs_rerun(self, instance: FlowInstance, step_name: str) -> None:
        record = instance.record(step_name)
        if record.state is StepState.SUCCEEDED:
            record.state = StepState.NEEDS_RERUN
            instance.emit("needs-rerun", step_name)

    def rerun_stale(self, instance: FlowInstance, user: Optional[str] = None,
                    roles: Optional[Set[str]] = None) -> RunSummary:
        """Reset every NEEDS_RERUN step (cascading) and run again."""
        for record in list(instance.records.values()):
            if record.state is StepState.NEEDS_RERUN:
                record.state = StepState.SUCCEEDED  # restore so reset() cascades
                self.reset(instance, record.name, cascade=True)
        return self.run(instance, user, roles)
