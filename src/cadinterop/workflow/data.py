"""Data variables and data-maturity checks.

Section 5 ("Flexible dependency management"): "Tools are integrated such
that checks can be made on their data to determine flow state.  File
existence, date/time stamps, file contents and other means can be used to
determine data maturity...  Data variables in the workflow can serve as
proxies for one or more design data items, allowing information about the
data state and/or value to be stored as metadata separate from the design
data."
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DataSnapshot:
    """A point-in-time observation of one data item."""

    exists: bool
    mtime: Optional[float] = None
    content_hash: Optional[str] = None


def snapshot_file(path: Path, hash_contents: bool = True) -> DataSnapshot:
    """Observe a file's existence, timestamp, and content hash."""
    path = Path(path)
    if not path.exists():
        return DataSnapshot(exists=False)
    stat = path.stat()
    digest: Optional[str] = None
    if hash_contents and path.is_file():
        hasher = hashlib.sha256()
        hasher.update(path.read_bytes())
        digest = hasher.hexdigest()
    return DataSnapshot(exists=True, mtime=stat.st_mtime, content_hash=digest)


class DataVariable:
    """A metadata proxy for one or more design data items.

    Carries a value (arbitrary metadata) and the file paths it proxies;
    :meth:`observe` snapshots them, :meth:`changed_since` compares against
    a previous observation — the substrate for triggers and rerun logic.
    """

    def __init__(self, name: str, paths: Sequence[Path] = (), value: Any = None) -> None:
        self.name = name
        self.paths = [Path(p) for p in paths]
        self.value = value
        self._last: Dict[Path, DataSnapshot] = {}

    def observe(self) -> Dict[Path, DataSnapshot]:
        self._last = {path: snapshot_file(path) for path in self.paths}
        return dict(self._last)

    @property
    def last_observation(self) -> Dict[Path, DataSnapshot]:
        return dict(self._last)

    def changed_since(self, baseline: Dict[Path, DataSnapshot]) -> List[Path]:
        """Paths whose current state differs from ``baseline``."""
        changed: List[Path] = []
        for path in self.paths:
            now = snapshot_file(path)
            then = baseline.get(path, DataSnapshot(exists=False))
            if (now.exists, now.content_hash) != (then.exists, then.content_hash):
                changed.append(path)
        return changed


# ---------------------------------------------------------------------------
# Maturity predicates (usable as finish conditions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FileExists:
    """Maturity: the file must exist."""

    path: Path

    def check(self, instance: "object") -> Tuple[bool, str]:
        ok = Path(self.path).exists()
        return ok, f"{self.path} {'exists' if ok else 'missing'}"


@dataclass(frozen=True)
class NewerThan:
    """Maturity: ``path`` must be newer than ``reference``."""

    path: Path
    reference: Path

    def check(self, instance: "object") -> Tuple[bool, str]:
        path, reference = Path(self.path), Path(self.reference)
        if not path.exists():
            return False, f"{path} missing"
        if not reference.exists():
            return True, f"{reference} missing; {path} trivially newer"
        ok = path.stat().st_mtime >= reference.stat().st_mtime
        return ok, f"{path} {'newer than' if ok else 'older than'} {reference}"


@dataclass(frozen=True)
class ContentContains:
    """Maturity: the file's content must contain a marker string.

    (The paper's "file contents ... can be used to determine data
    maturity" — e.g. a log must contain "0 errors".)
    """

    path: Path
    marker: str

    def check(self, instance: "object") -> Tuple[bool, str]:
        path = Path(self.path)
        if not path.exists():
            return False, f"{path} missing"
        ok = self.marker in path.read_text()
        return ok, f"{path} {'contains' if ok else 'lacks'} {self.marker!r}"


@dataclass(frozen=True)
class VariableEquals:
    """Maturity on metadata: a data variable must hold a given value."""

    variable: str
    expected: Any

    def check(self, instance: "object") -> Tuple[bool, str]:
        actual = instance.variables.get(self.variable)
        ok = actual == self.expected
        return ok, f"{self.variable}={actual!r} (want {self.expected!r})"
