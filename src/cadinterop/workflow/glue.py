"""Integration-language standardization (paper Section 3.5).

"There is no standardization on the language used to integrate tools and
manage workflows.  TCL, Skill, Perl, and Unix shell are all in widespread
use.  Unless a company adopts and enforces a standard for an integration
language, sharing and reuse of design methodologies within that company
will be limited."

This module makes that limitation measurable: a :class:`GlueInventory`
collects the glue scripts a company's groups maintain (language detected
from shebang or extension), :func:`standardization_report` quantifies the
fragmentation and the reuse it forecloses, and :class:`LanguagePolicy`
enforces the adopted standard the paper recommends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity

#: Known integration languages and their detection signatures.
_SHEBANGS: Dict[str, str] = {
    "tclsh": "tcl",
    "wish": "tcl",
    "perl": "perl",
    "sh": "shell",
    "csh": "shell",
    "ksh": "shell",
    "bash": "shell",
    "skill": "skill",
    "python": "python",
}

_EXTENSIONS: Dict[str, str] = {
    ".tcl": "tcl",
    ".pl": "perl",
    ".sh": "shell",
    ".csh": "shell",
    ".il": "skill",
    ".ils": "skill",
    ".py": "python",
}

KNOWN_LANGUAGES: Tuple[str, ...] = ("tcl", "perl", "shell", "skill", "python")


def detect_language(name: str, content: str = "") -> Optional[str]:
    """Detect the integration language from a shebang, else the extension."""
    first_line = content.splitlines()[0].strip() if content.strip() else ""
    if first_line.startswith("#!"):
        interpreter = first_line[2:].split()[0].rsplit("/", 1)[-1]
        # '#!/usr/bin/env perl' puts the language in the argument.
        if interpreter == "env" and len(first_line.split()) > 1:
            interpreter = first_line.split()[1].rsplit("/", 1)[-1]
        for signature, language in _SHEBANGS.items():
            if interpreter.startswith(signature):
                return language
    if first_line.startswith(";") and "skill" in content.lower():
        return "skill"
    for extension, language in _EXTENSIONS.items():
        if name.endswith(extension):
            return language
    return None


@dataclass(frozen=True)
class GlueScript:
    """One piece of tool-integration glue."""

    name: str
    group: str  # the team that owns/maintains it
    language: str

    def __post_init__(self) -> None:
        if self.language not in KNOWN_LANGUAGES:
            raise ValueError(f"unknown integration language {self.language!r}")


class GlueInventory:
    """Every glue script in the company, by owning group."""

    def __init__(self) -> None:
        self._scripts: List[GlueScript] = []

    def add(self, script: GlueScript) -> GlueScript:
        self._scripts.append(script)
        return script

    def add_source(self, name: str, group: str, content: str) -> GlueScript:
        language = detect_language(name, content)
        if language is None:
            raise ValueError(f"cannot detect integration language of {name!r}")
        return self.add(GlueScript(name, group, language))

    def scripts(self) -> List[GlueScript]:
        return list(self._scripts)

    def groups(self) -> Set[str]:
        return {script.group for script in self._scripts}

    def languages_of(self, group: str) -> Set[str]:
        return {s.language for s in self._scripts if s.group == group}

    def __len__(self) -> int:
        return len(self._scripts)


@dataclass
class StandardizationReport:
    """How fragmented the integration layer is, and what it costs."""

    language_counts: Dict[str, int]
    groups: int
    #: scripts a given group cannot reuse because they are written in a
    #: language that group does not practice
    foreclosed_reuse: Dict[str, int]

    @property
    def dominant_language(self) -> Optional[str]:
        if not self.language_counts:
            return None
        return max(self.language_counts, key=lambda k: self.language_counts[k])

    @property
    def fragmentation(self) -> float:
        """1 - (share of the dominant language); 0 = fully standardized."""
        total = sum(self.language_counts.values())
        if not total:
            return 0.0
        return 1.0 - self.language_counts[self.dominant_language] / total

    @property
    def total_foreclosed(self) -> int:
        return sum(self.foreclosed_reuse.values())


def standardization_report(inventory: GlueInventory) -> StandardizationReport:
    counts: Dict[str, int] = {}
    for script in inventory.scripts():
        counts[script.language] = counts.get(script.language, 0) + 1

    foreclosed: Dict[str, int] = {}
    for group in inventory.groups():
        practiced = inventory.languages_of(group)
        foreclosed[group] = sum(
            1
            for script in inventory.scripts()
            if script.group != group and script.language not in practiced
        )
    return StandardizationReport(
        language_counts=counts,
        groups=len(inventory.groups()),
        foreclosed_reuse=foreclosed,
    )


@dataclass(frozen=True)
class LanguagePolicy:
    """The adopted company standard, with optional grandfathered languages."""

    standard: str
    grandfathered: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.standard not in KNOWN_LANGUAGES:
            raise ValueError(f"unknown language {self.standard!r}")

    def violations(self, inventory: GlueInventory, log: Optional[IssueLog] = None) -> List[GlueScript]:
        allowed = {self.standard, *self.grandfathered}
        offenders = [s for s in inventory.scripts() if s.language not in allowed]
        if log is not None:
            for script in offenders:
                log.add(
                    Severity.WARNING, Category.ENVIRONMENT, script.name,
                    f"glue script in {script.language!r}; company standard is "
                    f"{self.standard!r}",
                    remedy=f"port to {self.standard} or register as grandfathered",
                )
        return offenders
