"""Simulation environment differences: invocation dialects per simulator.

Paper Section 3.1 ("Environment"): "In addition to language, other elements
of the simulation environment have not been standardized.  If the design
environment uses multiple simulators, it is difficult to write a single
script for running the simulation, as the command line options and user
interaction mechanisms vary considerably between interpreted and compiled
code simulators."

A :class:`SimulationRequest` states *what* to simulate (sources, defines,
plusargs, run length) in tool-neutral terms; each
:class:`SimulatorInvocation` dialect lowers it to that simulator's actual
command sequence — one step for an interpreted simulator, a
compile/elaborate/run pipeline for a compiled-code one.  The
divergence (and the per-feature losses) is what makes a single shared
run-script impossible, and :func:`generate_run_scripts` emits the per-tool
scripts teams actually maintained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity


@dataclass(frozen=True)
class SimulationRequest:
    """Tool-neutral description of one simulation run."""

    sources: Tuple[str, ...]
    top: str
    defines: Tuple[Tuple[str, str], ...] = ()
    include_dirs: Tuple[str, ...] = ()
    plusargs: Tuple[str, ...] = ()
    run_until: Optional[int] = None  # time units; None = run to completion
    interactive: bool = False
    dump_waves: bool = False


class SimulatorInvocation:
    """Base: lower a request to this simulator's command lines."""

    name = "abstract"
    kind = "abstract"  # "interpreted" or "compiled"
    #: request features this dialect cannot express
    unsupported: Tuple[str, ...] = ()

    def commands(self, request: SimulationRequest, log: Optional[IssueLog] = None) -> List[str]:
        raise NotImplementedError

    def _flag_losses(self, request: SimulationRequest, log: Optional[IssueLog]) -> None:
        if log is None:
            return
        if "interactive" in self.unsupported and request.interactive:
            log.add(
                Severity.WARNING, Category.ENVIRONMENT, self.name,
                "interactive debugging is not supported by this simulator's batch flow",
                tool=self.name,
                remedy="use the vendor GUI separately",
            )
        if "plusargs" in self.unsupported and request.plusargs:
            log.add(
                Severity.WARNING, Category.ENVIRONMENT, self.name,
                f"plusargs {list(request.plusargs)} have no equivalent; behavior differs",
                tool=self.name,
                remedy="encode the options as defines and recompile",
            )


class XlLikeInvocation(SimulatorInvocation):
    """Interpreted simulator: a single command line does everything."""

    name = "xl-like"
    kind = "interpreted"

    def commands(self, request: SimulationRequest, log: Optional[IssueLog] = None) -> List[str]:
        self._flag_losses(request, log)
        parts = ["xlsim"]
        for directory in request.include_dirs:
            parts.append(f"+incdir+{directory}")
        for name, value in request.defines:
            parts.append(f"+define+{name}={value}" if value else f"+define+{name}")
        parts.extend(request.sources)
        parts.extend(request.plusargs)
        if request.run_until is not None:
            parts.append(f"+stop_at+{request.run_until}")
        parts.append("-s" if request.interactive else "-R")
        if request.dump_waves:
            parts.append("+dump")
        return [" ".join(parts)]


class TurboLikeInvocation(SimulatorInvocation):
    """Compiled-code simulator: compile, elaborate, then run."""

    name = "turbo-like"
    kind = "compiled"
    unsupported = ("interactive", "plusargs")

    def commands(self, request: SimulationRequest, log: Optional[IssueLog] = None) -> List[str]:
        self._flag_losses(request, log)
        compile_parts = ["tcompile"]
        for directory in request.include_dirs:
            compile_parts.append(f"-I {directory}")
        for name, value in request.defines:
            compile_parts.append(f"-D{name}={value}" if value else f"-D{name}")
        compile_parts.extend(request.sources)
        elaborate = f"telab {request.top} -o {request.top}.sim"
        run_parts = [f"./{request.top}.sim"]
        if request.run_until is not None:
            run_parts.append(f"--until {request.run_until}")
        if request.dump_waves:
            run_parts.append("--wave out.wv")
        return [" ".join(compile_parts), elaborate, " ".join(run_parts)]


class Pc8LikeInvocation(SimulatorInvocation):
    """PC-hosted simulator: menu-driven, batch via a control file."""

    name = "pc8-like"
    kind = "interpreted"
    unsupported = ("plusargs",)

    def commands(self, request: SimulationRequest, log: Optional[IssueLog] = None) -> List[str]:
        self._flag_losses(request, log)
        control_lines = [f"LOAD {source}" for source in request.sources]
        control_lines.append(f"TOP {request.top}")
        for name, value in request.defines:
            control_lines.append(f"SET {name} {value}")
        control_lines.append(
            f"RUN {request.run_until}" if request.run_until is not None else "RUN"
        )
        if request.dump_waves:
            control_lines.append("TRACE ALL")
        control_lines.append("QUIT")
        return [
            "echo '" + "\\n".join(control_lines) + "' > sim.ctl",
            "PCSIM.EXE @sim.ctl",
        ]


ALL_INVOCATIONS: Tuple[SimulatorInvocation, ...] = (
    XlLikeInvocation(),
    TurboLikeInvocation(),
    Pc8LikeInvocation(),
)


def single_script_possible(
    request: SimulationRequest,
    simulators: Sequence[SimulatorInvocation] = ALL_INVOCATIONS,
) -> bool:
    """Could one script drive every simulator?  (The paper: no.)

    True only if every dialect lowers the request to the *same* command
    sequence — which never happens across interpreted and compiled tools.
    """
    sequences = {tuple(sim.commands(request)) for sim in simulators}
    return len(sequences) == 1


def generate_run_scripts(
    request: SimulationRequest,
    simulators: Sequence[SimulatorInvocation] = ALL_INVOCATIONS,
    log: Optional[IssueLog] = None,
) -> Dict[str, str]:
    """One run script per simulator — the workaround teams actually used."""
    scripts: Dict[str, str] = {}
    for simulator in simulators:
        lines = ["#!/bin/sh", f"# run script for {simulator.name} ({simulator.kind})"]
        lines.extend(simulator.commands(request, log))
        scripts[simulator.name] = "\n".join(lines) + "\n"
    return scripts
