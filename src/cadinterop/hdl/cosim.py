"""Two-kernel co-simulation with explicit failure modes.

Section 3.1 ("Co-simulation"): "Making two simulation tools work together,
specially a Verilog HDL - VHDL co-simulation, is typically problematic.
Although co-simulation attempts have been made by all major CAD vendors,
most have fallen short of their targets.  Inconsistencies in the signal
value set (e.g. 0, 1, x, and z) and in the simulation cycle definition are
common sources of problems."

Both failure sources are reproducible switches on :class:`CoSimulation`:

* ``value_mode`` — ``"correct"`` converts boundary values through the
  proper 4↔9 value projections (:func:`cadinterop.hdl.logic.to4`); the
  ``"naive"`` mode uses the legacy shortcut that forces ``z``/``x``/weak
  levels to ``0``, corrupting tristate and unknown propagation.
* ``aligned`` — ``True`` iterates exchange+settle to a fixpoint inside each
  simulation time (a consistent joint cycle definition); ``False`` does a
  single exchange per time step, so cross-kernel combinational paths see
  values one exchange stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from cadinterop.hdl.ast_nodes import HDLError, Module
from cadinterop.hdl.compile import CompiledModel
from cadinterop.hdl.logic import naive_to4, to4, to9
from cadinterop.hdl.simulator import FIFO, OrderingPolicy, Simulator
from cadinterop.obs import get_lineage, get_metrics, get_tracer


@dataclass(frozen=True)
class BridgeSignal:
    """One boundary signal: source side/name -> target side/name."""

    source_side: str  # "left" or "right"
    source: str
    target: str


def _correct_convert(value: str) -> str:
    return to4(to9(value))


def _naive_convert(value: str) -> str:
    return naive_to4(to9(value))


class CoSimulation:
    """Lock-step co-simulation of two modules over a signal bridge."""

    def __init__(
        self,
        left: Union[Module, CompiledModel],
        right: Union[Module, CompiledModel],
        bridge: Sequence[BridgeSignal],
        value_mode: str = "correct",
        aligned: bool = True,
        left_policy: OrderingPolicy = FIFO,
        right_policy: OrderingPolicy = FIFO,
        max_exchange_iterations: int = 16,
        kernel: Optional[str] = None,
    ) -> None:
        if value_mode not in ("correct", "naive"):
            raise ValueError(f"unknown value mode {value_mode!r}")
        # Either side may be a pre-built CompiledModel: repeated co-sim
        # sessions over the same sides then elaborate once, not per session.
        self.left = Simulator(left, left_policy, kernel=kernel)
        self.right = Simulator(right, right_policy, kernel=kernel)
        # The kernels see one tiny run() per joint time step; the cosim span
        # below covers the whole session, so keep the per-run spans quiet.
        self.left._obs_quiet = True
        self.right._obs_quiet = True
        self.bridge = list(bridge)
        self.aligned = aligned
        self.exchanges = 0
        self.max_exchange_iterations = max_exchange_iterations
        self._convert = _correct_convert if value_mode == "correct" else _naive_convert
        for signal in self.bridge:
            if signal.source_side not in ("left", "right"):
                raise ValueError(f"bad bridge side {signal.source_side!r}")

    def _side(self, name: str) -> Simulator:
        return self.left if name == "left" else self.right

    def _other(self, name: str) -> Simulator:
        return self.right if name == "left" else self.left

    def _exchange(self) -> bool:
        """Copy boundary values across; True if anything changed."""
        self.exchanges += 1
        changed = False
        lineage = get_lineage()
        for signal in self.bridge:
            source_sim = self._side(signal.source_side)
            target_sim = self._other(signal.source_side)
            raw = source_sim.values[signal.source]
            value = self._convert(raw)
            if value != raw and lineage.enabled:
                # A boundary coercion happened: lossless projection between
                # the value sets is a transform, the naive shortcut diverging
                # from the correct projection weakens semantics.
                verb = (
                    "transformed" if value == _correct_convert(raw)
                    else "approximated"
                )
                lineage.record(
                    "signal", f"{signal.source}->{signal.target}",
                    "cosim:exchange", verb, detail=f"{raw} -> {value}",
                )
            if target_sim.values[signal.target] != value:
                target_sim.set_signal(signal.target, value)
                changed = True
        return changed

    def _next_time(self) -> Optional[int]:
        times = [
            t for t in (self.left.next_event_time(), self.right.next_event_time())
            if t is not None
        ]
        return min(times) if times else None

    def run(self, until: int) -> int:
        """Co-simulate to ``until``; returns the final time reached."""
        exchanges_before = self.exchanges
        with get_tracer().span(
            "hdl:cosim",
            left=self.left.module.name,
            right=self.right.module.name,
            until=until,
            aligned=self.aligned,
        ) as span, get_lineage().context(
            design=f"{self.left.module.name}+{self.right.module.name}"
        ):
            # Time zero settle + initial exchange.
            self.left.run(0)
            self.right.run(0)
            self._exchange_phase()

            while True:
                next_time = self._next_time()
                if next_time is None or next_time > until:
                    break
                self.left.run(next_time)
                self.right.run(next_time)
                self._exchange_phase()
            span.set(exchanges=self.exchanges - exchanges_before)
        get_metrics().counter("hdl.cosim.exchanges").inc(
            self.exchanges - exchanges_before
        )
        return until

    def _exchange_phase(self) -> None:
        if not self.aligned:
            # Misaligned cycle definition: one blind exchange, and the
            # receiving kernel does not re-settle until its next own event.
            self._exchange()
            return
        for _ in range(self.max_exchange_iterations):
            if not self._exchange():
                return
            # Let both kernels settle the consequences within this time.
            self.left.run(self.left.now)
            self.right.run(self.right.now)
        raise HDLError(
            "co-simulation exchange did not converge "
            f"within {self.max_exchange_iterations} iterations "
            "(cross-kernel combinational loop?)"
        )

    # -- results -------------------------------------------------------------

    def value(self, side: str, signal: str) -> str:
        return self._side(side).values[signal]


@dataclass
class FidelityReport:
    """Comparison of a co-simulated run against a monolithic reference."""

    compared: int = 0
    mismatches: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def fidelity(self) -> float:
        if not self.compared:
            return 1.0
        return 1.0 - len(self.mismatches) / self.compared

    @property
    def exact(self) -> bool:
        return not self.mismatches


def compare_with_reference(
    cosim: CoSimulation,
    reference: Simulator,
    signal_map: Dict[str, Tuple[str, str]],
) -> FidelityReport:
    """Compare co-sim results against a single-kernel reference simulation.

    ``signal_map`` maps reference signal name -> (side, signal) in the
    co-simulation.
    """
    report = FidelityReport()
    for reference_name, (side, signal) in sorted(signal_map.items()):
        report.compared += 1
        expected = reference.values[reference_name]
        actual = cosim.value(side, signal)
        if expected != actual:
            report.mismatches.append((reference_name, expected, actual))
    return report
