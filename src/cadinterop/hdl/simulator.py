"""Event-driven simulation kernel with a pluggable event-ordering policy.

Section 3.1: "simulation results depend on the scheduling algorithm the
simulator uses to order and process events.  Different Verilog simulators
can legitimately disagree on the outcome of the same simulation, because
the simulation cycle and processing order for simultaneous events are not
completely defined by the language."

That under-specification is made explicit here: the kernel takes an
:class:`OrderingPolicy` deciding which of the simultaneously-activated
processes runs next.  Race-free models produce identical results under
every policy; racy models legitimately diverge — which is exactly how
:mod:`cadinterop.hdl.races` detects races.

Semantics implemented (standard-conformant core):

* 4-value scalars, ``x`` initial value;
* blocking assignments take effect immediately within a process;
* nonblocking assignments are deferred to the NBA phase of the time step;
* continuous assigns and gates re-evaluate when any input changes, with
  inertial delay (a pending update is superseded by re-evaluation);
* multiple drivers on a net resolve per the 4-value resolution function;
* ``initial`` blocks support ``#delay``.
"""

from __future__ import annotations

import heapq
import inspect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    Binary,
    Cond,
    Const,
    ContAssign,
    Delay,
    Expr,
    GateInst,
    HDLError,
    If,
    InitialBlock,
    Module,
    Stmt,
    Unary,
    Var,
    expr_reads,
)
from cadinterop.hdl.compile import CompiledModel, compile_model
from cadinterop.hdl.logic import Logic4
from cadinterop.obs import get_metrics, get_tracer

#: Available simulation kernels: the interpreted reference oracle, and the
#: closure-compiled production path (see :mod:`cadinterop.hdl.compile`).
KERNELS = ("interp", "compiled")
DEFAULT_KERNEL = "compiled"


# ---------------------------------------------------------------------------
# Ordering policies
# ---------------------------------------------------------------------------


def _accepts_ordinal(select: Callable[..., int]) -> bool:
    """Does ``select`` take a second positional (activation ordinal) arg?"""
    try:
        signature = inspect.signature(select)
    except (TypeError, ValueError):  # builtins without introspection
        return False
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind == parameter.VAR_POSITIONAL:
            return True
        if parameter.kind in (
            parameter.POSITIONAL_ONLY,
            parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 2


@dataclass(frozen=True)
class OrderingPolicy:
    """Chooses which ready process activation runs next.

    ``select`` receives the list of ready activation keys (ints, in arrival
    order) and returns the index to run.  It may take a second positional
    argument — the per-run activation ordinal — which stateful strategies
    (e.g. seeded shuffles) should use to stay deterministic across reruns.
    All policies are legal readings of the standard: the choice is
    observable only for racy models.
    """

    name: str
    select: Callable[..., int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_takes_ordinal", _accepts_ordinal(self.select))

    def choose(self, ready: Sequence[int], ordinal: int) -> int:
        if self._takes_ordinal:  # type: ignore[attr-defined]
            return self.select(ready, ordinal)
        return self.select(ready)


FIFO = OrderingPolicy("fifo", lambda ready: 0)
LIFO = OrderingPolicy("lifo", lambda ready: len(ready) - 1)

_MASK64 = (1 << 64) - 1


def _mix(seed: int, ordinal: int) -> int:
    """splitmix64-style integer mix: uniform-ish, cheap, stateless."""
    x = (seed * 0x9E3779B97F4A7C15 + ordinal + 1) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def seeded_shuffle_policy(seed: int) -> OrderingPolicy:
    """A pseudo-random but *stateless* ordering policy.

    The selection is a pure function of (seed, activation ordinal), so one
    policy object reused across ensemble runs — or a rerun with a cached
    result — reproduces the same schedule every time.  (The previous
    implementation closed over a shared ``random.Random``, so reuse gave
    different selections per run.)
    """

    def select(ready: Sequence[int], ordinal: int = 0) -> int:
        return _mix(seed, ordinal) % len(ready)

    return OrderingPolicy(f"shuffle{seed}", select)


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def evaluate(expr: Expr, values: Dict[str, str]) -> str:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return values[expr.name]
    if isinstance(expr, Unary):
        operand = evaluate(expr.operand, values)
        if expr.op == "~":
            return Logic4.not_(operand)
        return Logic4.not_("1" if operand == "1" else ("0" if operand == "0" else operand))
    if isinstance(expr, Binary):
        left = evaluate(expr.left, values)
        right = evaluate(expr.right, values)
        if expr.op in ("&", "&&"):
            return Logic4.and_(left, right)
        if expr.op in ("|", "||"):
            return Logic4.or_(left, right)
        if expr.op == "^":
            return Logic4.xor(left, right)
        if expr.op == "~^":
            return Logic4.not_(Logic4.xor(left, right))
        if expr.op == "==":
            return Logic4.eq(left, right)
        if expr.op == "!=":
            return Logic4.not_(Logic4.eq(left, right))
        if expr.op == "===":
            return Logic4.case_eq(left, right)
        if expr.op == "!==":
            return Logic4.not_(Logic4.case_eq(left, right))
        raise HDLError(f"unhandled operator {expr.op!r}")
    if isinstance(expr, Cond):
        condition = evaluate(expr.condition, values)
        if condition == "1":
            return evaluate(expr.if_true, values)
        if condition in ("0", "x", "z") and condition != "1":
            if condition == "0":
                return evaluate(expr.if_false, values)
            # x/z selector: merge both arms (Verilog-style pessimism).
            a = evaluate(expr.if_true, values)
            b = evaluate(expr.if_false, values)
            return a if a == b else "x"
    raise HDLError(f"cannot evaluate {expr!r}")


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------


class _Process:
    """Base class for schedulable processes."""

    index: int  # source order, assigned by the simulator

    def run(self, sim: "Simulator") -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def sensitivity(self) -> Set[str]:  # pragma: no cover - interface
        return set()

    def wants_trigger(self, signal: str, old: str, new: str) -> bool:
        return signal in self.sensitivity()


class _ContAssignProcess(_Process):
    def __init__(self, assign: ContAssign, driver_id: int) -> None:
        self.assign = assign
        self.driver_id = driver_id
        self._sensitivity = expr_reads(assign.expr)

    def sensitivity(self) -> Set[str]:
        return self._sensitivity

    def run(self, sim: "Simulator") -> None:
        value = evaluate(self.assign.expr, sim.values)
        sim.drive(self.driver_id, self.assign.target, value, self.assign.delay)


_GATE_EVAL: Dict[str, Callable[[List[str]], str]] = {
    "and": lambda ins: _fold(Logic4.and_, ins),
    "or": lambda ins: _fold(Logic4.or_, ins),
    "nand": lambda ins: Logic4.not_(_fold(Logic4.and_, ins)),
    "nor": lambda ins: Logic4.not_(_fold(Logic4.or_, ins)),
    "xor": lambda ins: _fold(Logic4.xor, ins),
    "xnor": lambda ins: Logic4.not_(_fold(Logic4.xor, ins)),
    "not": lambda ins: Logic4.not_(ins[0]),
    "buf": lambda ins: "x" if ins[0] in "xz" else ins[0],
}


def _fold(fn: Callable[[str, str], str], values: List[str]) -> str:
    result = values[0]
    for value in values[1:]:
        result = fn(result, value)
    return result


class _GateProcess(_Process):
    def __init__(self, gate: GateInst, driver_id: int) -> None:
        self.gate = gate
        self.driver_id = driver_id
        self._sensitivity = set(gate.inputs)

    def sensitivity(self) -> Set[str]:
        return self._sensitivity

    def run(self, sim: "Simulator") -> None:
        ins = [sim.values[name] for name in self.gate.inputs]
        if self.gate.gate == "bufif1":
            value = ("x" if ins[0] in "xz" else ins[0]) if ins[1] == "1" else "z"
            if ins[1] in "xz":
                value = "x"
        elif self.gate.gate == "bufif0":
            value = ("x" if ins[0] in "xz" else ins[0]) if ins[1] == "0" else "z"
            if ins[1] in "xz":
                value = "x"
        else:
            value = _GATE_EVAL[self.gate.gate](ins)
        sim.drive(self.driver_id, self.gate.output, value, self.gate.delay)


class _AlwaysProcess(_Process):
    def __init__(self, block: AlwaysBlock) -> None:
        self.block = block
        self._level = block.effective_sensitivity() if not block.sensitivity.is_edge_triggered() else set()
        self._edges = [
            (item.signal, item.edge)
            for item in block.sensitivity.items
            if item.edge != "level"
        ]
        self._all = self._level | {signal for signal, _edge in self._edges}

    def sensitivity(self) -> Set[str]:
        return self._all

    def wants_trigger(self, signal: str, old: str, new: str) -> bool:
        if signal in self._level:
            return True
        for edge_signal, edge in self._edges:
            if edge_signal != signal:
                continue
            if edge == "posedge" and new == "1" and old != "1":
                return True
            if edge == "negedge" and new == "0" and old != "0":
                return True
        return False

    def run(self, sim: "Simulator") -> None:
        sim.execute_body(self.block.body)


class _InitialProcess(_Process):
    def __init__(self, block: InitialBlock) -> None:
        self.block = block

    def sensitivity(self) -> Set[str]:
        return set()

    def run(self, sim: "Simulator") -> None:
        sim.start_initial(self.block.body)


# ---------------------------------------------------------------------------
# The simulator
# ---------------------------------------------------------------------------


@dataclass(order=True)
class _TimedEvent:
    time: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Simulate one (flat) module under a given event-ordering policy.

    ``model`` is either a :class:`Module` or a pre-built
    :class:`CompiledModel`.  ``kernel`` selects the execution strategy for
    a ``Module``: ``"compiled"`` (the default) lowers it through
    :func:`compile_model` first; ``"interp"`` keeps the recursive AST
    interpreter — the reference oracle the compiled kernel is verified
    against.  Passing a ``CompiledModel`` skips elaboration entirely: the
    model is immutable and shared, only per-run state is built, which is
    what makes policy ensembles compile-once/run-many.
    """

    def __init__(
        self,
        model: Union[Module, CompiledModel],
        policy: OrderingPolicy = FIFO,
        trace_signals: Optional[Sequence[str]] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if isinstance(model, CompiledModel):
            if kernel == "interp":
                raise HDLError(
                    "a CompiledModel cannot run on the interpreted kernel; "
                    "pass the Module instead"
                )
            compiled: Optional[CompiledModel] = model
            module = model.module
        else:
            module = model
            kernel = DEFAULT_KERNEL if kernel is None else kernel
            if kernel not in KERNELS:
                raise ValueError(
                    f"unknown kernel {kernel!r}; expected one of {KERNELS}"
                )
            compiled = compile_model(module) if kernel == "compiled" else None
        self.kernel = "interp" if compiled is None else "compiled"
        with get_tracer().span(
            "hdl:elaborate", module=module.name, policy=policy.name,
            kernel=self.kernel,
        ) as span:
            if compiled is None:
                self._elaborate(module, policy, trace_signals)
            else:
                self._bind(compiled, policy, trace_signals)
            span.set(processes=len(self._processes), nets=len(module.nets))

    def _init_state(
        self,
        module: Module,
        policy: OrderingPolicy,
        trace_signals: Optional[Sequence[str]],
    ) -> None:
        """Per-run mutable state, common to both kernels."""
        self.module = module
        self.policy = policy
        self.now = 0
        #: Cumulative observability tallies (cheap ints, always maintained).
        self.events_executed = 0
        self.activations = 0
        #: Set by enclosing layers (e.g. co-simulation) that make many tiny
        #: ``run()`` calls: suppresses the per-run span to keep traces sane.
        self._obs_quiet = False
        self.values: Dict[str, str] = {name: "x" for name in module.nets}
        self.waveforms: Dict[str, List[Tuple[int, str]]] = {
            name: [] for name in (trace_signals if trace_signals is not None else module.nets)
        }

        self._heap: List[_TimedEvent] = []
        self._sequence = 0
        self._ready: List = []
        self._ready_set: Set[int] = set()
        self._nba: List[Tuple[str, str]] = []

        # Driver bookkeeping for resolution on multiply-driven nets.
        self._driver_values: Dict[int, str] = {}
        self._drivers_of: Dict[str, Sequence[int]] = {}
        self._pending_updates: Dict[int, _TimedEvent] = {}

        #: Compiled-kernel trigger index; ``None`` selects the interpreted
        #: all-process wants_trigger scan in :meth:`set_signal`.
        self._triggers = None

    def _bind(
        self,
        compiled: CompiledModel,
        policy: OrderingPolicy,
        trace_signals: Optional[Sequence[str]],
    ) -> None:
        """Attach fresh run state to a shared, immutable compiled model."""
        self._init_state(compiled.module, policy, trace_signals)
        self._compiled = compiled
        self._processes: List = list(compiled.processes)
        self._triggers = compiled.triggers
        self._drivers_of = compiled.drivers_of  # static; never mutated
        self._driver_values = {i: "z" for i in range(compiled.driver_count)}
        for process in compiled.startup:
            self._activate(process)

    def _elaborate(
        self,
        module: Module,
        policy: OrderingPolicy,
        trace_signals: Optional[Sequence[str]],
    ) -> None:
        module.validate()
        self._init_state(module, policy, trace_signals)
        self._compiled = None

        self._processes = []
        driver_id = 0
        for assign in module.assigns:
            process = _ContAssignProcess(assign, driver_id)
            self._register_driver(driver_id, assign.target)
            driver_id += 1
            self._add_process(process)
        for gate in module.gates:
            process = _GateProcess(gate, driver_id)
            self._register_driver(driver_id, gate.output)
            driver_id += 1
            self._add_process(process)
        for block in module.always_blocks:
            self._add_process(_AlwaysProcess(block))
        for block in module.initial_blocks:
            self._add_process(_InitialProcess(block))

        if module.instances:
            raise HDLError(
                f"module {module.name!r} has unresolved instances; flatten first"
            )

        # Everything runs once at time zero (continuous assigns settle,
        # initial blocks start).
        for process in self._processes:
            if not isinstance(process, _AlwaysProcess):
                self._activate(process)

    # -- construction helpers ------------------------------------------------

    def _add_process(self, process: _Process) -> None:
        process.index = len(self._processes)
        self._processes.append(process)

    def _register_driver(self, driver_id: int, signal: str) -> None:
        self._driver_values[driver_id] = "z"
        self._drivers_of.setdefault(signal, []).append(driver_id)

    # -- scheduling ------------------------------------------------------------

    def _activate(self, process: _Process) -> None:
        if process.index not in self._ready_set:
            self._ready.append(process)
            self._ready_set.add(process.index)

    def _schedule(self, delay: int, action: Callable[[], None]) -> _TimedEvent:
        event = _TimedEvent(self.now + delay, self._sequence, action)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    # -- signal updates ----------------------------------------------------------

    def drive(self, driver_id: int, signal: str, value: str, delay: int) -> None:
        """A continuous driver (assign/gate) produces a new value."""
        if delay <= 0:
            self._apply_drive(driver_id, signal, value)
            return
        # Inertial delay: a newer evaluation supersedes the pending one.
        pending = self._pending_updates.get(driver_id)
        if pending is not None:
            pending.cancelled = True
        event = self._schedule(delay, lambda: self._apply_drive(driver_id, signal, value))
        self._pending_updates[driver_id] = event

    def _apply_drive(self, driver_id: int, signal: str, value: str) -> None:
        self._pending_updates.pop(driver_id, None)
        self._driver_values[driver_id] = value
        contributions = [
            self._driver_values[d] for d in self._drivers_of.get(signal, [])
        ]
        resolved = Logic4.resolve_many(contributions) if contributions else value
        self.set_signal(signal, resolved)

    def set_signal(self, signal: str, value: str) -> None:
        """Update a signal value, waking sensitive processes."""
        old = self.values[signal]
        if old == value:
            return
        self.values[signal] = value
        if signal in self.waveforms:
            self.waveforms[signal].append((self.now, value))
        triggers = self._triggers
        if triggers is None:
            # Interpreted oracle: scan every process.
            for process in self._processes:
                if process.wants_trigger(signal, old, value):
                    self._activate(process)
            return
        # Compiled kernel: only the indexed processes are consulted, in the
        # same process order the scan would have visited them.
        entries = triggers.get(signal)
        if not entries:
            return
        ready_set = self._ready_set
        ready = self._ready
        for process, kinds in entries:
            for kind in kinds:
                if (
                    kind == "level"
                    or (kind == "posedge" and value == "1" and old != "1")
                    or (kind == "negedge" and value == "0" and old != "0")
                ):
                    index = process.index
                    if index not in ready_set:
                        ready.append(process)
                        ready_set.add(index)
                    break

    # -- procedural execution ------------------------------------------------------

    def execute_body(self, body: Sequence[Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, Delay):
                raise HDLError("delays inside always blocks are not supported")
            self._execute_stmt(stmt)

    def _execute_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            value = evaluate(stmt.expr, self.values)
            if stmt.nonblocking:
                self._nba.append((stmt.target, value))
            else:
                self.set_signal(stmt.target, value)
        elif isinstance(stmt, If):
            condition = evaluate(stmt.condition, self.values)
            if condition == "1":
                for inner in stmt.then_body:
                    self._execute_stmt(inner)
            elif stmt.else_body is not None:
                for inner in stmt.else_body:
                    self._execute_stmt(inner)
        else:
            raise HDLError(f"cannot execute {stmt!r}")

    def start_initial(self, body: Sequence[Stmt]) -> None:
        self._resume_initial(list(body))

    def _resume_initial(self, remaining: List[Stmt]) -> None:
        while remaining:
            stmt = remaining.pop(0)
            if isinstance(stmt, Delay):
                rest = list(remaining)
                self._schedule(stmt.amount, lambda: self._resume_initial(rest))
                return
            self._execute_stmt(stmt)

    def _resume_compiled_initial(self, steps: Sequence, position: int) -> None:
        """Run compiled initial steps from ``position``; ints are delays."""
        while position < len(steps):
            step = steps[position]
            position += 1
            if isinstance(step, int):
                self._schedule(
                    step,
                    lambda s=steps, p=position: self._resume_compiled_initial(s, p),
                )
                return
            step(self)

    # -- the event loop ---------------------------------------------------------------

    def _run_ready(self) -> None:
        while self._ready:
            ordinal = self.activations
            self.activations += 1
            choice = self.policy.choose(list(range(len(self._ready))), ordinal)
            process = self._ready.pop(choice)
            self._ready_set.discard(process.index)
            process.run(self)

    def _apply_nba(self) -> bool:
        if not self._nba:
            return False
        updates, self._nba = self._nba, []
        for signal, value in updates:
            self.set_signal(signal, value)
        return True

    def _settle(self) -> None:
        """Exhaust the current simulation time (active + NBA phases)."""
        while True:
            self._run_ready()
            if not self._apply_nba() and not self._ready:
                break

    def run(self, until: int = 1_000_000, max_activations: int = 1_000_000) -> int:
        """Run until ``until`` or event exhaustion; returns the end time.

        ``max_activations`` bounds zero-delay oscillation (e.g. a ring of
        inverters with no delay) and raises :class:`HDLError` when hit.
        """
        tracer = get_tracer()
        if not tracer.enabled or self._obs_quiet:
            return self._run(until, max_activations)
        events_before = self.events_executed
        activations_before = self.activations
        with tracer.span(
            "hdl:sim", module=self.module.name, until=until, kernel=self.kernel
        ) as span:
            end = self._run(until, max_activations)
            span.set(
                events=self.events_executed - events_before,
                activations=self.activations - activations_before,
                end_time=end,
            )
        metrics = get_metrics()
        metrics.counter("hdl.sim.runs").inc()
        metrics.counter("hdl.sim.events").inc(self.events_executed - events_before)
        metrics.counter("hdl.sim.activations").inc(
            self.activations - activations_before
        )
        return end

    def _run(self, until: int, max_activations: int) -> int:
        budget = [max_activations]
        original_run_ready = self._run_ready

        def bounded_run_ready() -> None:
            while self._ready:
                budget[0] -= 1
                ordinal = self.activations
                self.activations += 1
                if budget[0] < 0:
                    raise HDLError(
                        f"activation budget exhausted at t={self.now} "
                        "(zero-delay oscillation?)"
                    )
                choice = self.policy.choose(list(range(len(self._ready))), ordinal)
                process = self._ready.pop(choice)
                self._ready_set.discard(process.index)
                process.run(self)

        def compiled_run_ready() -> None:
            # The compiled kernel's lean activation loop: no key-list
            # allocation (the policy sees an equivalent range), the
            # one-ready case — the overwhelmingly common one — skips the
            # policy entirely (every legal policy must pick index 0 there),
            # and the budget/ordinal counters live in locals, written back
            # on exit.  The ordinal advances exactly as in the interpreter
            # loop, so stateless shuffle policies see the same stream.
            ready = self._ready
            ready_set = self._ready_set
            policy = self.policy
            select = policy.select
            takes_ordinal = policy._takes_ordinal
            remaining = budget[0]
            ordinal = self.activations
            try:
                while ready:
                    remaining -= 1
                    if remaining < 0:
                        # The interpreter loop counts the doomed activation
                        # before raising; keep the counters identical.
                        ordinal += 1
                        raise HDLError(
                            f"activation budget exhausted at t={self.now} "
                            "(zero-delay oscillation?)"
                        )
                    count = len(ready)
                    if count == 1:
                        choice = 0
                    elif takes_ordinal:
                        choice = select(range(count), ordinal)
                    else:
                        choice = select(range(count))
                    ordinal += 1
                    process = ready.pop(choice)
                    ready_set.discard(process.index)
                    process.run(self)
            finally:
                budget[0] = remaining
                self.activations = ordinal

        bounded = (
            compiled_run_ready if self._triggers is not None else bounded_run_ready
        )
        self._run_ready = bounded  # type: ignore[method-assign]
        try:
            self._settle()
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if event.time > until:
                    heapq.heappush(self._heap, event)
                    break
                self.now = event.time
                self.events_executed += 1
                event.action()
                # Drain same-time events before settling.
                while self._heap and self._heap[0].time == self.now:
                    follow = heapq.heappop(self._heap)
                    if not follow.cancelled:
                        self.events_executed += 1
                        follow.action()
                self._settle()
        finally:
            self._run_ready = original_run_ready  # type: ignore[method-assign]
        self.now = max(self.now, min(until, self.now if not self._heap else self.now))
        return self.now

    def next_event_time(self) -> Optional[int]:
        """Time of the next pending (uncancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # -- results -----------------------------------------------------------------------

    def value(self, signal: str) -> str:
        return self.values[signal]

    def waveform(self, signal: str) -> List[Tuple[int, str]]:
        return list(self.waveforms[signal])


def simulate(
    module: Union[Module, CompiledModel],
    policy: OrderingPolicy = FIFO,
    until: int = 1_000_000,
    trace: Optional[Sequence[str]] = None,
    kernel: Optional[str] = None,
) -> Simulator:
    """Convenience: build a simulator, run it, return it."""
    sim = Simulator(module, policy, trace_signals=trace, kernel=kernel)
    sim.run(until)
    return sim
