"""Identifier rules across HDL tools (paper Section 3.3).

Every naming hazard the paper enumerates is modelled:

* **Name length** — "several PC based simulators consider only the first
  eight characters as significant", aliasing ``cntr_reset1``/``cntr_reset2``
  onto ``cntr_res``.  :func:`find_truncation_aliases` detects the hazard;
  tool profiles carry a ``significant_chars`` field.
* **Escaped identifiers** — Verilog names beginning with ``\\`` and ending
  at whitespace; some tools mis-infer meaning from characters like ``[]``
  (bus bit) or ``*`` (active low) inside them.
* **Keywords** — "in" and "out" are legal Verilog names but VHDL keywords;
  :func:`keyword_clashes` finds them, :mod:`cadinterop.hdl.translate` fixes
  them.
* **Hierarchy removal** — flattening joins path names with a separator; the
  reversible map lives in :mod:`cadinterop.hdl.flatten` on top of
  :class:`cadinterop.common.namemap.NameMap`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

VERILOG_KEYWORDS: FrozenSet[str] = frozenset(
    """always and assign begin buf bufif0 bufif1 case casex casez cmos deassign
    default defparam disable edge else end endcase endfunction endmodule
    endprimitive endspecify endtable endtask event for force forever fork
    function highz0 highz1 if initial inout input integer join large
    macromodule medium module nand negedge nmos nor not notif0 notif1 or
    output parameter pmos posedge primitive pull0 pull1 pulldown pullup
    rcmos real realtime reg release repeat rnmos rpmos rtran rtranif0
    rtranif1 scalared small specify specparam strong0 strong1 supply0
    supply1 table task time tran tranif0 tranif1 tri tri0 tri1 triand
    trior trireg vectored wait wand weak0 weak1 while wire wor xnor xor
    """.split()
)

VHDL_KEYWORDS: FrozenSet[str] = frozenset(
    """abs access after alias all and architecture array assert attribute
    begin block body buffer bus case component configuration constant
    disconnect downto else elsif end entity exit file for function generate
    generic group guarded if impure in inertial inout is label library
    linkage literal loop map mod nand new next nor not null of on open or
    others out package port postponed procedure process pure range record
    register reject rem report return rol ror select severity signal shared
    sla sll sra srl subtype then to transport type unaffected units until
    use variable wait when while with xnor xor
    """.split()
)

_VERILOG_SIMPLE_ID = re.compile(r"^[A-Za-z_][A-Za-z_0-9$]*$")
_VHDL_ID = re.compile(r"^[A-Za-z][A-Za-z_0-9]*$")


def is_legal_verilog_identifier(name: str) -> bool:
    """Simple (non-escaped) Verilog identifier legality."""
    return bool(_VERILOG_SIMPLE_ID.match(name)) and name not in VERILOG_KEYWORDS


def is_legal_vhdl_identifier(name: str) -> bool:
    """VHDL basic identifier: no leading/trailing/double underscore, no $."""
    if not _VHDL_ID.match(name):
        return False
    if name.lower() in VHDL_KEYWORDS:
        return False
    if name.endswith("_") or "__" in name:
        return False
    return True


def keyword_clashes(names: Iterable[str], target_keywords: FrozenSet[str] = VHDL_KEYWORDS) -> List[str]:
    """Names legal in the source language but reserved in the target.

    The paper's example: ``in`` and ``out`` are valid Verilog signal names
    and VHDL keywords.
    """
    return [name for name in names if name.lower() in target_keywords]


# ---------------------------------------------------------------------------
# Escaped identifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EscapedName:
    """A Verilog escaped identifier: ``\\`` + body, terminated by whitespace."""

    body: str

    @property
    def source_text(self) -> str:
        return "\\" + self.body + " "


def parse_escaped(text: str) -> Tuple[EscapedName, str]:
    """Parse an escaped identifier at the start of ``text``.

    Returns the name and the remaining text.  The terminating whitespace is
    required — tools that forget it run the next token into the name, one
    of the confusions the paper reports.
    """
    if not text.startswith("\\"):
        raise ValueError("escaped identifier must start with backslash")
    for index in range(1, len(text)):
        if text[index].isspace():
            body = text[1:index]
            if not body:
                raise ValueError("empty escaped identifier")
            return EscapedName(body), text[index + 1 :]
    raise ValueError("escaped identifier not terminated by whitespace")


def naive_meaning_inference(name: str) -> Optional[str]:
    """The over-eager interpretation some analysis tools apply.

    "Some analysis tools always assume that the use of [] implies a bit on
    a bus, or a * implies an active low signal.  Such specific
    interpretations are not valid across all tools."  Returns the bogus
    inference a naive tool would make, or None.
    """
    if "[" in name and "]" in name:
        return "bus-bit"
    if "*" in name:
        return "active-low"
    return None


# ---------------------------------------------------------------------------
# Truncation aliasing
# ---------------------------------------------------------------------------


def find_truncation_aliases(names: Iterable[str], significant: int = 8) -> Dict[str, List[str]]:
    """Groups of names identical in their first ``significant`` characters.

    Returns prefix -> sorted list of colliding names (groups of two or
    more only).  This is the exact hazard of the paper's PC simulators.
    """
    groups: Dict[str, List[str]] = {}
    for name in names:
        groups.setdefault(name[:significant], []).append(name)
    return {
        prefix: sorted(members)
        for prefix, members in groups.items()
        if len(members) > 1
    }


def safe_under_truncation(names: Iterable[str], significant: int = 8) -> bool:
    return not find_truncation_aliases(names, significant)


@dataclass(frozen=True)
class NamingConvention:
    """A project naming convention, checkable before the project starts.

    The paper: "Before beginning a project, a user should study the naming
    conventions used by the tools he will use, and adopt a naming
    convention which will minimize problems such as those listed above."
    """

    max_length: int = 8
    target_keyword_sets: Tuple[FrozenSet[str], ...] = (VERILOG_KEYWORDS, VHDL_KEYWORDS)
    forbid_dollar: bool = True
    forbid_escaped: bool = True

    def violations(self, names: Iterable[str]) -> List[Tuple[str, str]]:
        """(name, reason) pairs for every convention violation."""
        result: List[Tuple[str, str]] = []
        seen: List[str] = []
        for name in names:
            seen.append(name)
            if len(name) > self.max_length:
                result.append((name, f"longer than {self.max_length} significant characters"))
            for keywords in self.target_keyword_sets:
                if name.lower() in keywords:
                    result.append((name, "reserved keyword in a target language"))
                    break
            if self.forbid_dollar and "$" in name:
                result.append((name, "contains '$' (not portable to VHDL)"))
            if self.forbid_escaped and name.startswith("\\"):
                result.append((name, "escaped identifier (tool interpretation varies)"))
        for prefix, members in find_truncation_aliases(seen, self.max_length).items():
            result.append((", ".join(members), f"alias to {prefix!r} after truncation"))
        return result
