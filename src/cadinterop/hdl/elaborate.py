"""Hierarchy elaboration: resolve module instances into an instance tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from cadinterop.hdl.ast_nodes import DesignUnit, HDLError, Module, ModuleInst


@dataclass
class InstanceNode:
    """One node of the elaborated instance tree."""

    path: Tuple[str, ...]
    module: Module
    children: List["InstanceNode"] = field(default_factory=list)
    #: formal port name -> signal name in the *parent* module's namespace
    bindings: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else "<top>"

    @property
    def dotted_path(self) -> str:
        return ".".join(self.path)

    def walk(self) -> Iterator["InstanceNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def elaborate(unit: DesignUnit, top: Optional[str] = None) -> InstanceNode:
    """Build the instance tree from ``top`` (defaults to the unit's top).

    Checks, at each instance: the target module exists, every connected
    formal port exists, and no recursion occurs.
    """
    top_name = top or unit.top
    if top_name is None:
        raise HDLError("no top module specified")
    top_module = unit.module(top_name)
    return _elaborate_node(unit, top_module, (), {}, [top_name])


def _elaborate_node(
    unit: DesignUnit,
    module: Module,
    path: Tuple[str, ...],
    bindings: Dict[str, str],
    stack: List[str],
) -> InstanceNode:
    node = InstanceNode(path=path, module=module, bindings=dict(bindings))
    for inst in module.instances:
        if inst.module_name in stack:
            raise HDLError(
                f"recursive instantiation of {inst.module_name!r} via {'/'.join(stack)}"
            )
        child_module = unit.module(inst.module_name)
        formal_ports = set(child_module.port_names())
        unknown = set(inst.connections) - formal_ports
        if unknown:
            raise HDLError(
                f"instance {inst.name!r}: no such port(s) {sorted(unknown)} on "
                f"module {inst.module_name!r}"
            )
        child = _elaborate_node(
            unit,
            child_module,
            path + (inst.name,),
            inst.connections,
            stack + [inst.module_name],
        )
        node.children.append(child)
    return node


def instance_count(root: InstanceNode) -> int:
    return sum(1 for _ in root.walk())


def hierarchy_depth(root: InstanceNode) -> int:
    if not root.children:
        return 1
    return 1 + max(hierarchy_depth(child) for child in root.children)
