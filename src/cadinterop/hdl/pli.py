"""A PLI-style extension interface with per-platform build profiles.

Section 3.4 ("Extension languages"): "Verilog simulators provide a PLI
(programming language interface), which allows the user to link custom C
language modules to the simulator.  Compiling and linking these modules
into a Verilog simulation requires the user to be familiar with the
compiler for his computing platform, and with the linking procedure for his
simulator."

Here the "C modules" are Python callables, but the *interoperability
surface* is modelled faithfully: each platform has a compiler/flags/link
convention, each simulator has a linking procedure (static relink vs
dynamic load), and registering a user task validates the combination — the
mismatches users actually hit (wrong link mode, missing compiler, ABI
flags) become checkable diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity


@dataclass(frozen=True)
class PlatformProfile:
    """One compute platform's C toolchain conventions."""

    name: str
    compiler: str
    compile_flags: Tuple[str, ...]
    shared_library_flag: str
    object_suffix: str = ".o"
    shared_suffix: str = ".so"


SUNOS_LIKE = PlatformProfile(
    "sunos-like", "cc", ("-O", "-KPIC"), "-G", shared_suffix=".so"
)
HPUX_LIKE = PlatformProfile(
    "hpux-like", "c89", ("-O", "+z"), "-b", shared_suffix=".sl"
)
LINUX_LIKE = PlatformProfile(
    "linux-like", "gcc", ("-O2", "-fPIC"), "-shared", shared_suffix=".so"
)

ALL_PLATFORMS: Tuple[PlatformProfile, ...] = (SUNOS_LIKE, HPUX_LIKE, LINUX_LIKE)


@dataclass(frozen=True)
class SimulatorLinkSpec:
    """How one simulator takes user PLI code."""

    simulator: str
    link_mode: str  # "static-relink" or "dynamic-load"
    veriuser_table: bool  # needs a registration table compiled in

    MODES = ("static-relink", "dynamic-load")

    def __post_init__(self) -> None:
        if self.link_mode not in self.MODES:
            raise ValueError(f"unknown link mode {self.link_mode!r}")


XL_LINK = SimulatorLinkSpec("xl-like", "static-relink", veriuser_table=True)
TURBO_LINK = SimulatorLinkSpec("turbo-like", "dynamic-load", veriuser_table=False)


@dataclass
class PliModule:
    """A user extension: system tasks implemented by callables."""

    name: str
    tasks: Dict[str, Callable[..., Any]] = field(default_factory=dict)
    #: requirements the build must satisfy
    requires_dynamic_load: bool = False
    source_platform: Optional[str] = None  # platform whose flags it was built with

    def add_task(self, task_name: str, fn: Callable[..., Any]) -> None:
        if not task_name.startswith("$"):
            raise ValueError("PLI task names start with '$'")
        if task_name in self.tasks:
            raise ValueError(f"duplicate task {task_name!r}")
        self.tasks[task_name] = fn


@dataclass
class BuildResult:
    """Outcome of 'compiling and linking' a PLI module for a target."""

    ok: bool
    command_lines: List[str] = field(default_factory=list)
    log: IssueLog = field(default_factory=IssueLog)


def build_pli(
    module: PliModule,
    platform: PlatformProfile,
    link: SimulatorLinkSpec,
) -> BuildResult:
    """Validate and describe the build of a PLI module for one target.

    Produces the command lines a user would run, plus diagnostics for the
    classic cross-platform failures.
    """
    result = BuildResult(ok=True)
    compile_cmd = (
        f"{platform.compiler} {' '.join(platform.compile_flags)} "
        f"-c {module.name}.c -o {module.name}{platform.object_suffix}"
    )
    result.command_lines.append(compile_cmd)

    if module.source_platform and module.source_platform != platform.name:
        result.ok = False
        result.log.add(
            Severity.ERROR, Category.PLATFORM, module.name,
            f"object built with {module.source_platform!r} flags cannot link on "
            f"{platform.name!r}",
            remedy="recompile from source with the target platform's compiler",
        )

    if link.link_mode == "dynamic-load":
        result.command_lines.append(
            f"{platform.compiler} {platform.shared_library_flag} "
            f"{module.name}{platform.object_suffix} "
            f"-o {module.name}{platform.shared_suffix}"
        )
    else:
        if module.requires_dynamic_load:
            result.ok = False
            result.log.add(
                Severity.ERROR, Category.TOOL_CONTROL, module.name,
                f"module requires dynamic loading but {link.simulator} uses "
                "static relinking",
                remedy="restructure the module or switch simulators",
            )
        result.command_lines.append(
            f"{link.simulator}-relink {module.name}{platform.object_suffix} "
            + ("veriuser.c" if link.veriuser_table else "")
        )
    return result


class PliRegistry:
    """Runtime task registry: what the simulator would see after linking."""

    def __init__(self) -> None:
        self._tasks: Dict[str, Callable[..., Any]] = {}
        self._origin: Dict[str, str] = {}

    def load(self, module: PliModule, build: BuildResult) -> None:
        if not build.ok:
            raise RuntimeError(f"cannot load {module.name!r}: build failed")
        for task_name, fn in module.tasks.items():
            if task_name in self._tasks:
                raise RuntimeError(
                    f"task {task_name!r} already provided by {self._origin[task_name]!r}"
                )
            self._tasks[task_name] = fn
            self._origin[task_name] = module.name

    def call(self, task_name: str, *args: Any) -> Any:
        try:
            fn = self._tasks[task_name]
        except KeyError:
            raise RuntimeError(f"unknown system task {task_name!r}") from None
        return fn(*args)

    def tasks(self) -> List[str]:
        return sorted(self._tasks)
