"""The HDL intermediate representation.

A deliberately small Verilog-like language, rich enough to express every
Section 3 failure mode: scalar 4-value signals, continuous assigns with
delay, ``always`` blocks with (possibly incomplete) sensitivity lists,
blocking and nonblocking assignment, ``initial`` stimulus with delays, gate
primitives, and hierarchical module instances.

Vectors are intentionally out of scope — every interoperability mechanism
the paper discusses (event ordering, sensitivity lists, naming, subsets,
timing checks) manifests on scalars, and scalar-only keeps the simulator
kernel small enough to parameterize aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from cadinterop.hdl.logic import Logic4


class HDLError(Exception):
    """Structural error in an HDL description."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A 4-value literal (``1'b0``, ``1'b1``, ``1'bx``, ``1'bz``)."""

    value: str

    def __post_init__(self) -> None:
        Logic4.validate(self.value)


@dataclass(frozen=True)
class Var:
    """A signal reference."""

    name: str


@dataclass(frozen=True)
class Unary:
    op: str  # "~" or "!"
    operand: "Expr"

    OPS = ("~", "!")

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise HDLError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"

    OPS = ("&", "|", "^", "~^", "==", "!=", "===", "!==", "&&", "||")

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise HDLError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class Cond:
    """The ternary ``cond ? a : b``."""

    condition: "Expr"
    if_true: "Expr"
    if_false: "Expr"


Expr = Union[Const, Var, Unary, Binary, Cond]


@lru_cache(maxsize=4096)
def _expr_reads_frozen(expr: Expr) -> FrozenSet[str]:
    """Memoized read-set (expression nodes are frozen, hence hashable).

    Sensitivity queries recompute read-sets per trigger check on the hot
    simulation path; the cache makes repeats O(hash) instead of O(tree).
    """
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Unary):
        return _expr_reads_frozen(expr.operand)
    if isinstance(expr, Binary):
        return _expr_reads_frozen(expr.left) | _expr_reads_frozen(expr.right)
    if isinstance(expr, Cond):
        return (
            _expr_reads_frozen(expr.condition)
            | _expr_reads_frozen(expr.if_true)
            | _expr_reads_frozen(expr.if_false)
        )
    raise HDLError(f"not an expression: {expr!r}")


def expr_reads(expr: Expr) -> Set[str]:
    """All signal names an expression reads (fresh, caller-mutable set)."""
    return set(_expr_reads_frozen(expr))


def rename_expr(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Return ``expr`` with variables renamed through ``mapping``."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, Unary):
        return Unary(expr.op, rename_expr(expr.operand, mapping))
    if isinstance(expr, Binary):
        return Binary(expr.op, rename_expr(expr.left, mapping), rename_expr(expr.right, mapping))
    if isinstance(expr, Cond):
        return Cond(
            rename_expr(expr.condition, mapping),
            rename_expr(expr.if_true, mapping),
            rename_expr(expr.if_false, mapping),
        )
    raise HDLError(f"not an expression: {expr!r}")


# ---------------------------------------------------------------------------
# Statements (inside always / initial)
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """Procedural assignment; ``nonblocking`` selects ``<=`` semantics."""

    target: str
    expr: Expr
    nonblocking: bool = False


@dataclass
class If:
    condition: Expr
    then_body: List["Stmt"]
    else_body: Optional[List["Stmt"]] = None


@dataclass
class Delay:
    """``#n`` inside an initial block (not allowed in always blocks here)."""

    amount: int

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise HDLError("delay must be positive")


Stmt = Union[Assign, If, Delay]


def stmt_reads(stmt: Stmt) -> Set[str]:
    if isinstance(stmt, Assign):
        return expr_reads(stmt.expr)
    if isinstance(stmt, If):
        reads = expr_reads(stmt.condition)
        for inner in stmt.then_body:
            reads |= stmt_reads(inner)
        for inner in stmt.else_body or []:
            reads |= stmt_reads(inner)
        return reads
    if isinstance(stmt, Delay):
        return set()
    raise HDLError(f"not a statement: {stmt!r}")


def stmt_writes(stmt: Stmt) -> Set[str]:
    if isinstance(stmt, Assign):
        return {stmt.target}
    if isinstance(stmt, If):
        writes: Set[str] = set()
        for inner in stmt.then_body:
            writes |= stmt_writes(inner)
        for inner in stmt.else_body or []:
            writes |= stmt_writes(inner)
        return writes
    if isinstance(stmt, Delay):
        return set()
    raise HDLError(f"not a statement: {stmt!r}")


def body_reads(body: Sequence[Stmt]) -> Set[str]:
    reads: Set[str] = set()
    for stmt in body:
        reads |= stmt_reads(stmt)
    return reads


def body_writes(body: Sequence[Stmt]) -> Set[str]:
    writes: Set[str] = set()
    for stmt in body:
        writes |= stmt_writes(stmt)
    return writes


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SensItem:
    """One sensitivity-list entry: level, posedge, or negedge of a signal."""

    signal: str
    edge: str = "level"

    EDGES = ("level", "posedge", "negedge")

    def __post_init__(self) -> None:
        if self.edge not in self.EDGES:
            raise HDLError(f"bad edge kind {self.edge!r}")


@dataclass
class Sensitivity:
    """An always block's trigger condition.

    ``star`` means ``@(*)`` — sensitive to everything the body reads.
    """

    items: List[SensItem] = field(default_factory=list)
    star: bool = False

    def signals(self) -> Set[str]:
        return {item.signal for item in self.items}

    def is_edge_triggered(self) -> bool:
        return any(item.edge != "level" for item in self.items)


@dataclass
class AlwaysBlock:
    sensitivity: Sensitivity
    body: List[Stmt]

    def reads(self) -> Set[str]:
        return body_reads(self.body)

    def writes(self) -> Set[str]:
        return body_writes(self.body)

    def effective_sensitivity(self) -> Set[str]:
        """Signals that actually trigger this block in simulation."""
        if self.sensitivity.star:
            return self.reads()
        return self.sensitivity.signals()


@dataclass
class InitialBlock:
    body: List[Stmt]


@dataclass
class ContAssign:
    """``assign #d target = expr;``"""

    target: str
    expr: Expr
    delay: int = 0


@dataclass
class GateInst:
    """A gate primitive instance: ``and g1 (y, a, b);``"""

    name: str
    gate: str
    output: str
    inputs: List[str]
    delay: int = 0

    GATES = ("and", "or", "nand", "nor", "xor", "xnor", "not", "buf", "bufif0", "bufif1")

    def __post_init__(self) -> None:
        if self.gate not in self.GATES:
            raise HDLError(f"unknown gate primitive {self.gate!r}")
        minimum = 1 if self.gate in ("not", "buf") else 2
        if self.gate in ("bufif0", "bufif1"):
            minimum = 2
        if len(self.inputs) < minimum:
            raise HDLError(f"gate {self.gate!r} needs at least {minimum} inputs")


@dataclass
class ModuleInst:
    """A hierarchical instance with named port connections."""

    name: str
    module_name: str
    connections: Dict[str, str]  # formal port -> actual signal


@dataclass
class PortDecl:
    name: str
    direction: str  # input / output / inout

    DIRECTIONS = ("input", "output", "inout")

    def __post_init__(self) -> None:
        if self.direction not in self.DIRECTIONS:
            raise HDLError(f"bad port direction {self.direction!r}")


@dataclass
class NetDecl:
    name: str
    kind: str = "wire"  # wire / reg

    KINDS = ("wire", "reg")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise HDLError(f"bad net kind {self.kind!r}")


class Module:
    """One HDL module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: List[PortDecl] = []
        self.nets: Dict[str, NetDecl] = {}
        self.assigns: List[ContAssign] = []
        self.always_blocks: List[AlwaysBlock] = []
        self.initial_blocks: List[InitialBlock] = []
        self.gates: List[GateInst] = []
        self.instances: List[ModuleInst] = []

    # -- construction helpers ------------------------------------------------

    def add_port(self, name: str, direction: str) -> PortDecl:
        if any(p.name == name for p in self.ports):
            raise HDLError(f"duplicate port {name!r} in module {self.name!r}")
        port = PortDecl(name, direction)
        self.ports.append(port)
        if name not in self.nets:
            self.nets[name] = NetDecl(name, "wire")
        return port

    def add_net(self, name: str, kind: str = "wire") -> NetDecl:
        existing = self.nets.get(name)
        if existing is not None:
            if existing.kind == "wire" and kind == "reg":
                # input a; reg a; style double declaration upgrades the
                # kind; an implicit wire reference never downgrades a reg.
                self.nets[name] = NetDecl(name, kind)
            return self.nets[name]
        decl = NetDecl(name, kind)
        self.nets[name] = decl
        return decl

    def add_assign(self, target: str, expr: Expr, delay: int = 0) -> ContAssign:
        item = ContAssign(target, expr, delay)
        self.assigns.append(item)
        return item

    def add_always(self, sensitivity: Sensitivity, body: List[Stmt]) -> AlwaysBlock:
        block = AlwaysBlock(sensitivity, body)
        self.always_blocks.append(block)
        return block

    def add_initial(self, body: List[Stmt]) -> InitialBlock:
        block = InitialBlock(body)
        self.initial_blocks.append(block)
        return block

    def add_gate(self, gate: GateInst) -> GateInst:
        self.gates.append(gate)
        return gate

    def add_instance(self, inst: ModuleInst) -> ModuleInst:
        if any(existing.name == inst.name for existing in self.instances):
            raise HDLError(f"duplicate instance {inst.name!r} in module {self.name!r}")
        self.instances.append(inst)
        return inst

    # -- queries ---------------------------------------------------------------

    def port(self, name: str) -> PortDecl:
        for port in self.ports:
            if port.name == name:
                return port
        raise HDLError(f"module {self.name!r} has no port {name!r}")

    def port_names(self) -> List[str]:
        return [p.name for p in self.ports]

    def signal_names(self) -> List[str]:
        return list(self.nets)

    def drivers_of(self, signal: str) -> List[object]:
        """Every construct that drives ``signal`` (for multi-driver checks)."""
        drivers: List[object] = []
        for assign in self.assigns:
            if assign.target == signal:
                drivers.append(assign)
        for gate in self.gates:
            if gate.output == signal:
                drivers.append(gate)
        for block in self.always_blocks:
            if signal in block.writes():
                drivers.append(block)
        return drivers

    def validate(self) -> None:
        """Raise on structural inconsistencies (undeclared signals etc.)."""
        declared = set(self.nets)

        def check(names: Set[str], where: str) -> None:
            unknown = names - declared
            if unknown:
                raise HDLError(
                    f"module {self.name!r}: undeclared signal(s) {sorted(unknown)} in {where}"
                )

        for assign in self.assigns:
            check({assign.target} | expr_reads(assign.expr), "continuous assign")
        for block in self.always_blocks:
            check(block.reads() | block.writes() | block.sensitivity.signals(), "always block")
        for block in self.initial_blocks:
            check(body_reads(block.body) | body_writes(block.body), "initial block")
        for gate in self.gates:
            check({gate.output} | set(gate.inputs), f"gate {gate.name!r}")
        for inst in self.instances:
            check(set(inst.connections.values()), f"instance {inst.name!r}")


class DesignUnit:
    """A set of modules with one top (the compilation unit)."""

    def __init__(self, top: Optional[str] = None) -> None:
        self.modules: Dict[str, Module] = {}
        self.top = top

    def add(self, module: Module, top: bool = False) -> Module:
        if module.name in self.modules:
            raise HDLError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        if top or self.top is None:
            self.top = module.name
        return module

    def module(self, name: str) -> Module:
        try:
            return self.modules[name]
        except KeyError:
            raise HDLError(f"no module named {name!r}") from None

    @property
    def top_module(self) -> Module:
        if self.top is None:
            raise HDLError("design unit has no top module")
        return self.module(self.top)
