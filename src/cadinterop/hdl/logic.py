"""Multi-valued logic systems and the value-set mappings between them.

Section 3.1 of the paper names "inconsistencies in the signal value set
(e.g. 0, 1, x, and z)" as a common source of co-simulation failures.  Two
concrete systems are implemented:

* :class:`Logic4` — the Verilog-style four-value set ``0 1 x z``;
* :class:`Logic9` — a std_logic-style nine-value set
  ``U X 0 1 Z W L H -`` with the IEEE-1164 resolution table.

Conversion between them is inherently lossy (nine values cannot round-trip
through four); :func:`to4`/:func:`to9` implement the *correct* projections,
and :func:`naive_to4` the shortcut real bridges got wrong (mapping both
``Z`` and weak values to ``0``), so the co-simulation experiments can show
the failure and the fix.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


# -- reference (branching) operator definitions ----------------------------
#
# These are the semantic source of truth: small branching functions that
# read like the language definition.  The public :class:`Logic4` operators
# are table-driven — the tables below are built from these once at import —
# so the hot simulation path pays dict lookups instead of branches, while
# the reference implementations stay available as an equivalence oracle
# (see ``REFERENCE_OPS`` and tests/hdl/test_logic_tables.py).


def _ref_not(a: str) -> str:
    if a == "0":
        return "1"
    if a == "1":
        return "0"
    return "x"


def _ref_and(a: str, b: str) -> str:
    if a == "0" or b == "0":
        return "0"
    if a == "1" and b == "1":
        return "1"
    return "x"


def _ref_or(a: str, b: str) -> str:
    if a == "1" or b == "1":
        return "1"
    if a == "0" and b == "0":
        return "0"
    return "x"


def _ref_xor(a: str, b: str) -> str:
    if a in "xz" or b in "xz":
        return "x"
    return "1" if a != b else "0"


def _ref_eq(a: str, b: str) -> str:
    if a in "xz" or b in "xz":
        return "x"
    return "1" if a == b else "0"


def _ref_case_eq(a: str, b: str) -> str:
    return "1" if a == b else "0"


def _ref_resolve(a: str, b: str) -> str:
    if a == "z":
        return b
    if b == "z":
        return a
    if a == b:
        return a
    return "x"


def _ref_buf(a: str) -> str:
    return "x" if a in "xz" else a


_V4 = ("0", "1", "x", "z")


def _unary_table(fn) -> Dict[str, str]:
    return {a: fn(a) for a in _V4}


def _binary_table(fn) -> Dict[str, Dict[str, str]]:
    return {a: {b: fn(a, b) for b in _V4} for a in _V4}


#: Precomputed lookup tables (built once at import from the reference
#: functions above).  ``TABLE[a][b]`` — two dict hits, zero branches —
#: raising ``KeyError`` on anything outside the 4-value set.
NOT_TABLE: Dict[str, str] = _unary_table(_ref_not)
BUF_TABLE: Dict[str, str] = _unary_table(_ref_buf)
AND_TABLE: Dict[str, Dict[str, str]] = _binary_table(_ref_and)
OR_TABLE: Dict[str, Dict[str, str]] = _binary_table(_ref_or)
XOR_TABLE: Dict[str, Dict[str, str]] = _binary_table(_ref_xor)
EQ_TABLE: Dict[str, Dict[str, str]] = _binary_table(_ref_eq)
CASE_EQ_TABLE: Dict[str, Dict[str, str]] = _binary_table(_ref_case_eq)
RESOLVE_TABLE: Dict[str, Dict[str, str]] = _binary_table(_ref_resolve)

#: Reference (branching) implementations, keyed by the Logic4 method they
#: back — the oracle for the exhaustive table-equivalence tests.
REFERENCE_OPS = {
    "not_": _ref_not,
    "and_": _ref_and,
    "or_": _ref_or,
    "xor": _ref_xor,
    "eq": _ref_eq,
    "case_eq": _ref_case_eq,
    "resolve": _ref_resolve,
}


class Logic4:
    """The four-value logic system: constants and operators.

    Values are single-character strings for cheap hashing and printing.
    Operators are table lookups; out-of-set values raise ``KeyError``
    (use :meth:`validate` for a descriptive error).
    """

    ZERO = "0"
    ONE = "1"
    X = "x"
    Z = "z"
    VALUES = _V4

    @staticmethod
    def validate(value: str) -> str:
        if value not in Logic4.VALUES:
            raise ValueError(f"not a 4-value logic level: {value!r}")
        return value

    # -- operators (table-driven) -------------------------------------------

    @staticmethod
    def not_(a: str) -> str:
        return NOT_TABLE[a]

    @staticmethod
    def and_(a: str, b: str) -> str:
        return AND_TABLE[a][b]

    @staticmethod
    def or_(a: str, b: str) -> str:
        return OR_TABLE[a][b]

    @staticmethod
    def xor(a: str, b: str) -> str:
        return XOR_TABLE[a][b]

    @staticmethod
    def eq(a: str, b: str) -> str:
        """Logical equality (``==``): unknown if either side is x/z."""
        return EQ_TABLE[a][b]

    @staticmethod
    def case_eq(a: str, b: str) -> str:
        """Case equality (``===``): x and z compare literally."""
        return CASE_EQ_TABLE[a][b]

    @staticmethod
    def is_true(a: str) -> bool:
        return a == "1"

    @staticmethod
    def resolve(a: str, b: str) -> str:
        """Two drivers on one net: z yields, conflict makes x."""
        return RESOLVE_TABLE[a][b]

    @staticmethod
    def resolve_many(values: Iterable[str]) -> str:
        result = "z"
        table = RESOLVE_TABLE
        for value in values:
            result = table[result][value]
        return result


class Logic9:
    """A std_logic-style nine-value system with IEEE-1164 resolution."""

    VALUES = ("U", "X", "0", "1", "Z", "W", "L", "H", "-")

    #: IEEE 1164 resolution table, indexed by VALUES order.
    _RESOLUTION = [
        # U    X    0    1    Z    W    L    H    -
        ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
        ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
        ["U", "X", "0", "X", "0", "0", "0", "0", "X"],  # 0
        ["U", "X", "X", "1", "1", "1", "1", "1", "X"],  # 1
        ["U", "X", "0", "1", "Z", "W", "L", "H", "X"],  # Z
        ["U", "X", "0", "1", "W", "W", "W", "W", "X"],  # W
        ["U", "X", "0", "1", "L", "W", "L", "W", "X"],  # L
        ["U", "X", "0", "1", "H", "W", "W", "H", "X"],  # H
        ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
    ]

    _INDEX = {value: index for index, value in enumerate(VALUES)}

    @staticmethod
    def validate(value: str) -> str:
        if value not in Logic9.VALUES:
            raise ValueError(f"not a 9-value logic level: {value!r}")
        return value

    @classmethod
    def resolve(cls, a: str, b: str) -> str:
        return cls._RESOLUTION[cls._INDEX[a]][cls._INDEX[b]]

    @classmethod
    def resolve_many(cls, values: Iterable[str]) -> str:
        result = "Z"
        for value in values:
            result = cls.resolve(result, value)
        return result

    @staticmethod
    def to_binary(value: str) -> str:
        """Collapse to 0/1/x for logic evaluation (X01 subtype view)."""
        if value in ("0", "L"):
            return "0"
        if value in ("1", "H"):
            return "1"
        return "x"


#: Correct 9 -> 4 projection: weak levels keep their driven sense, true
#: high-impedance stays z, everything uninitialized/unknown becomes x.
_TO4: Dict[str, str] = {
    "U": "x", "X": "x", "0": "0", "1": "1",
    "Z": "z", "W": "x", "L": "0", "H": "1", "-": "x",
}

#: Correct 4 -> 9 embedding.
_TO9: Dict[str, str] = {"0": "0", "1": "1", "x": "X", "z": "Z"}

#: The historically buggy projection: everything not strongly driven is
#: forced to 0 — the kind of shortcut the paper says made co-simulation
#: "fall short of its targets".
_NAIVE_TO4: Dict[str, str] = {
    "U": "0", "X": "0", "0": "0", "1": "1",
    "Z": "0", "W": "0", "L": "0", "H": "1", "-": "0",
}


def to4(value: str) -> str:
    """Project a 9-value level onto the 4-value set (correct mapping)."""
    Logic9.validate(value)
    return _TO4[value]


def to9(value: str) -> str:
    """Embed a 4-value level into the 9-value set."""
    Logic4.validate(value)
    return _TO9[value]


def naive_to4(value: str) -> str:
    """The broken legacy projection (demonstrates co-sim failure modes)."""
    Logic9.validate(value)
    return _NAIVE_TO4[value]


def roundtrip_fidelity() -> Tuple[int, int]:
    """(preserved, total) count of 9-value levels whose *binary sense*
    survives 9->4->9 under the correct mapping.

    The binary sense of a level is ``Logic9.to_binary``; U/X/W/- have no
    sense and are trivially preserved by mapping to X.
    """
    preserved = 0
    for value in Logic9.VALUES:
        back = to9(to4(value))
        if Logic9.to_binary(back) == Logic9.to_binary(value):
            preserved += 1
    return preserved, len(Logic9.VALUES)
