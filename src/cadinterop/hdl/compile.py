"""Closure compilation of HDL models: compile once, simulate many times.

The interpreter in :mod:`cadinterop.hdl.simulator` walks the AST with
isinstance-dispatch on every process activation — fine as a reference
semantics, wasteful as the inner loop of an ensemble.  Race detection
(:func:`cadinterop.hdl.races.detect_races`) and co-simulation run the
*same model* under many :class:`OrderingPolicy` variants; re-elaborating
and re-interpreting per run repeats work whose result cannot change.

This module splits *model* from *run*, echoing the tool-model abstraction
of the interoperability literature: :func:`compile_model` lowers a
:class:`Module` to an immutable :class:`CompiledModel` —

* one Python closure per continuous assign, gate, always body, and
  initial step (expressions become nested closures over the precomputed
  :mod:`cadinterop.hdl.logic` lookup tables, so an activation is closure
  calls and dict hits, no AST in sight);
* a sensitivity *trigger index* (signal -> processes that care, with the
  edge kind), replacing the interpreter's scan over every process on
  every signal change;
* a driver map for multi-driver net resolution.

A ``CompiledModel`` holds no simulation state and is safely shared: every
``Simulator(model, policy)`` spawned from it gets fresh values, queues,
and waveforms.  Correctness is anchored by differential tests — compiled
and interpreted kernels must produce identical waveforms under every
ordering policy (tests/hdl/test_kernel_differential.py).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    Binary,
    Cond,
    Const,
    ContAssign,
    Delay,
    Expr,
    GateInst,
    HDLError,
    If,
    InitialBlock,
    Module,
    Stmt,
    Unary,
    Var,
    expr_reads,
)
from cadinterop.hdl.logic import (
    AND_TABLE,
    BUF_TABLE,
    CASE_EQ_TABLE,
    EQ_TABLE,
    NOT_TABLE,
    OR_TABLE,
    XOR_TABLE,
)
from cadinterop.obs import get_metrics, get_tracer

#: An expression closure: values-dict in, 4-value level out.
ExprFn = Callable[[Dict[str, str]], str]
#: A statement closure: acts on the running simulator.
StmtFn = Callable[[object], None]
#: One step of an initial body: a statement closure or a delay amount.
InitialStep = Union[StmtFn, int]


def _negate_table(table: Dict[str, Dict[str, str]]) -> Dict[str, Dict[str, str]]:
    return {
        a: {b: NOT_TABLE[value] for b, value in row.items()}
        for a, row in table.items()
    }


#: Composed tables so negated operators stay a single lookup per operand
#: pair (``a ~^ b`` is one hit in the XNOR table, not XOR-then-NOT).
_XNOR_TABLE = _negate_table(XOR_TABLE)
_NEQ_TABLE = _negate_table(EQ_TABLE)
_CASE_NEQ_TABLE = _negate_table(CASE_EQ_TABLE)

_BINARY_TABLES: Dict[str, Dict[str, Dict[str, str]]] = {
    "&": AND_TABLE,
    "&&": AND_TABLE,
    "|": OR_TABLE,
    "||": OR_TABLE,
    "^": XOR_TABLE,
    "~^": _XNOR_TABLE,
    "==": EQ_TABLE,
    "!=": _NEQ_TABLE,
    "===": CASE_EQ_TABLE,
    "!==": _CASE_NEQ_TABLE,
}


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def compile_expr(expr: Expr) -> ExprFn:
    """Lower an expression tree to a closure over the value map.

    Semantics match :func:`cadinterop.hdl.simulator.evaluate` exactly
    (the interpreter remains the oracle; see the differential tests).
    """
    if isinstance(expr, Const):
        value = expr.value

        return lambda values: value
    if isinstance(expr, Var):
        name = expr.name

        return lambda values: values[name]
    if isinstance(expr, Unary):
        # Both ``~`` and ``!`` reduce to scalar inversion on 4-value levels.
        table = NOT_TABLE
        if isinstance(expr.operand, Var):
            # Leaf specialization: fold the variable read into this closure
            # instead of paying a child-lambda frame per activation.
            name = expr.operand.name
            return lambda values: table[values[name]]
        operand = compile_expr(expr.operand)

        return lambda values: table[operand(values)]
    if isinstance(expr, Binary):
        table = _BINARY_TABLES.get(expr.op)
        if table is None:
            raise HDLError(f"unhandled operator {expr.op!r}")
        left_var = isinstance(expr.left, Var)
        right_var = isinstance(expr.right, Var)
        if left_var and right_var:
            # ``a OP b`` — the overwhelmingly common shape — becomes one
            # closure with two inline dict reads and a double table hit.
            ln, rn = expr.left.name, expr.right.name
            return lambda values: table[values[ln]][values[rn]]
        if left_var:
            ln = expr.left.name
            right = compile_expr(expr.right)
            return lambda values: table[values[ln]][right(values)]
        if right_var:
            rn = expr.right.name
            left = compile_expr(expr.left)
            return lambda values: table[left(values)][values[rn]]
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)

        return lambda values: table[left(values)][right(values)]
    if isinstance(expr, Cond):
        condition = compile_expr(expr.condition)
        if_true = compile_expr(expr.if_true)
        if_false = compile_expr(expr.if_false)

        def cond_fn(values: Dict[str, str]) -> str:
            selector = condition(values)
            if selector == "1":
                return if_true(values)
            if selector == "0":
                return if_false(values)
            # x/z selector: merge both arms (Verilog-style pessimism).
            a = if_true(values)
            b = if_false(values)
            return a if a == b else "x"

        return cond_fn
    raise HDLError(f"cannot compile {expr!r}")


# ---------------------------------------------------------------------------
# Statement compilation
# ---------------------------------------------------------------------------


def compile_stmt(stmt: Stmt) -> StmtFn:
    """Lower one procedural statement (no delays) to a closure."""
    if isinstance(stmt, Assign):
        expr = compile_expr(stmt.expr)
        target = stmt.target
        if stmt.nonblocking:

            def run_nba(sim) -> None:
                sim._nba.append((target, expr(sim.values)))

            return run_nba

        def run_blocking(sim) -> None:
            sim.set_signal(target, expr(sim.values))

        return run_blocking
    if isinstance(stmt, If):
        condition = compile_expr(stmt.condition)
        then_body = tuple(compile_stmt(inner) for inner in stmt.then_body)
        else_body = (
            tuple(compile_stmt(inner) for inner in stmt.else_body)
            if stmt.else_body is not None
            else None
        )

        def run_if(sim) -> None:
            if condition(sim.values) == "1":
                for fn in then_body:
                    fn(sim)
            elif else_body is not None:
                for fn in else_body:
                    fn(sim)

        return run_if
    raise HDLError(f"cannot compile {stmt!r}")


def compile_always_body(body: Sequence[Stmt]) -> StmtFn:
    """Compile an always body; delays are rejected here, at compile time
    (the interpreter rejects them at first activation instead)."""
    for stmt in body:
        if isinstance(stmt, Delay):
            raise HDLError("delays inside always blocks are not supported")
    steps = tuple(compile_stmt(stmt) for stmt in body)

    def run(sim) -> None:
        for fn in steps:
            fn(sim)

    return run


def compile_initial_body(body: Sequence[Stmt]) -> Tuple[InitialStep, ...]:
    """Compile an initial body to a step list: closures and delay amounts."""
    steps: List[InitialStep] = []
    for stmt in body:
        if isinstance(stmt, Delay):
            steps.append(stmt.amount)
        else:
            steps.append(compile_stmt(stmt))
    return tuple(steps)


# ---------------------------------------------------------------------------
# Gate compilation
# ---------------------------------------------------------------------------

_GATE_TABLES = {
    "and": (AND_TABLE, False),
    "nand": (AND_TABLE, True),
    "or": (OR_TABLE, False),
    "nor": (OR_TABLE, True),
    "xor": (XOR_TABLE, False),
    "xnor": (XOR_TABLE, True),
}
_NAND_TABLE = _negate_table(AND_TABLE)
_NOR_TABLE = _negate_table(OR_TABLE)


def compile_gate_eval(gate: GateInst) -> ExprFn:
    """Lower a gate primitive to a closure evaluating its output level."""
    inputs = tuple(gate.inputs)
    kind = gate.gate
    if kind in ("bufif0", "bufif1"):
        data, control = inputs[0], inputs[1]
        active = "1" if kind == "bufif1" else "0"

        def tristate(values: Dict[str, str]) -> str:
            enable = values[control]
            if enable == "x" or enable == "z":
                return "x"
            if enable != active:
                return "z"
            return BUF_TABLE[values[data]]

        return tristate
    if kind == "not":
        operand = inputs[0]
        return lambda values: NOT_TABLE[values[operand]]
    if kind == "buf":
        operand = inputs[0]
        return lambda values: BUF_TABLE[values[operand]]

    base, invert = _GATE_TABLES[kind]
    if len(inputs) == 2:
        # The common case gets a single (pre-composed) table lookup.
        first, second = inputs
        table = {"and": _NAND_TABLE, "or": _NOR_TABLE, "xor": _XNOR_TABLE}[
            {"nand": "and", "nor": "or", "xnor": "xor"}.get(kind, kind)
        ] if invert else base
        return lambda values: table[values[first]][values[second]]

    def folded(values: Dict[str, str]) -> str:
        result = values[inputs[0]]
        for name in inputs[1:]:
            result = base[result][values[name]]
        return NOT_TABLE[result] if invert else result

    return folded


# ---------------------------------------------------------------------------
# Compiled processes and the model
# ---------------------------------------------------------------------------


class CompiledProcess:
    """One schedulable unit: an index, a kind tag, and a run closure.

    Immutable after construction and stateless — all simulation state
    lives on the :class:`Simulator` the closure receives — so one process
    object is safely shared by any number of concurrent runs.
    """

    __slots__ = ("index", "kind", "run")

    def __init__(self, index: int, kind: str, run: StmtFn) -> None:
        self.index = index
        self.kind = kind  # "assign" | "gate" | "always" | "initial"
        self.run = run


#: signal -> ((process, trigger kinds), ...) in process-definition order.
#: Kinds are "level" / "posedge" / "negedge"; a process appears once per
#: signal with every kind it registered for.
TriggerIndex = Dict[str, Tuple[Tuple[CompiledProcess, Tuple[str, ...]], ...]]


class CompiledModel:
    """The immutable compile-once artifact of one flat module.

    Holds compiled processes, the sensitivity trigger index, and the
    driver map — everything a run needs that cannot change between runs.
    Instantiate runs with ``Simulator(model, policy)``; the ensemble
    machinery (``detect_races``) builds one of these per module and fans
    out policies over it.
    """

    __slots__ = ("module", "processes", "triggers", "drivers_of",
                 "driver_count", "startup")

    def __init__(
        self,
        module: Module,
        processes: Tuple[CompiledProcess, ...],
        triggers: TriggerIndex,
        drivers_of: Dict[str, Tuple[int, ...]],
        driver_count: int,
        startup: Tuple[CompiledProcess, ...],
    ) -> None:
        self.module = module
        self.processes = processes
        self.triggers = triggers
        self.drivers_of = drivers_of
        self.driver_count = driver_count
        self.startup = startup


#: Total compile_model() invocations — lets tests assert that ensemble
#: runs elaborate once instead of once per personality.
_compile_calls = 0


def compile_calls() -> int:
    return _compile_calls


def compile_model(module: Module) -> CompiledModel:
    """Validate and lower ``module`` to a shareable :class:`CompiledModel`."""
    global _compile_calls
    with get_tracer().span("hdl:compile", module=module.name) as span:
        model = _compile(module)
        span.set(
            processes=len(model.processes),
            nets=len(module.nets),
            drivers=model.driver_count,
        )
    get_metrics().counter("hdl.compile.models").inc()
    _compile_calls += 1
    return model


def _compile(module: Module) -> CompiledModel:
    module.validate()
    if module.instances:
        raise HDLError(
            f"module {module.name!r} has unresolved instances; flatten first"
        )

    processes: List[CompiledProcess] = []
    # signal -> process index -> kinds (insertion-ordered on both levels,
    # so triggering preserves the interpreter's process-scan order).
    sensitivity: Dict[str, Dict[int, List[str]]] = {}
    drivers_of: Dict[str, List[int]] = {}
    driver_id = 0

    # First pass: lay out driver ids so the closures below know which
    # targets are single-driver (their resolution is the identity, so a
    # zero-delay update can go straight to set_signal).
    for assign in module.assigns:
        drivers_of.setdefault(assign.target, []).append(driver_id)
        driver_id += 1
    for gate in module.gates:
        drivers_of.setdefault(gate.output, []).append(driver_id)
        driver_id += 1
    driver_count = driver_id
    single_driver = {s for s, ids in drivers_of.items() if len(ids) == 1}

    def register(signal: str, index: int, kind: str) -> None:
        kinds = sensitivity.setdefault(signal, {}).setdefault(index, [])
        if kind not in kinds:
            kinds.append(kind)

    driver_id = 0
    for assign in module.assigns:
        index = len(processes)
        expr = compile_expr(assign.expr)
        target, delay, this_driver = assign.target, assign.delay, driver_id
        if delay <= 0 and target in single_driver:

            def run_assign(sim, _e=expr, _t=target) -> None:
                sim.set_signal(_t, _e(sim.values))

        else:

            def run_assign(sim, _e=expr, _t=target, _d=delay, _i=this_driver) -> None:
                sim.drive(_i, _t, _e(sim.values), _d)

        processes.append(CompiledProcess(index, "assign", run_assign))
        driver_id += 1
        for name in sorted(expr_reads(assign.expr)):
            register(name, index, "level")

    for gate in module.gates:
        index = len(processes)
        evaluate_gate = compile_gate_eval(gate)
        output, delay, this_driver = gate.output, gate.delay, driver_id
        if delay <= 0 and output in single_driver:

            def run_gate(sim, _e=evaluate_gate, _t=output) -> None:
                sim.set_signal(_t, _e(sim.values))

        else:

            def run_gate(sim, _e=evaluate_gate, _t=output, _d=delay, _i=this_driver) -> None:
                sim.drive(_i, _t, _e(sim.values), _d)

        processes.append(CompiledProcess(index, "gate", run_gate))
        driver_id += 1
        for name in gate.inputs:
            register(name, index, "level")

    for block in module.always_blocks:
        index = len(processes)
        processes.append(
            CompiledProcess(index, "always", compile_always_body(block.body))
        )
        if block.sensitivity.is_edge_triggered():
            # Mirrors the interpreter: an edge-triggered list ignores any
            # stray level items.
            for item in block.sensitivity.items:
                if item.edge != "level":
                    register(item.signal, index, item.edge)
        else:
            for name in sorted(block.effective_sensitivity()):
                register(name, index, "level")

    for block in module.initial_blocks:
        index = len(processes)
        steps = compile_initial_body(block.body)

        def run_initial(sim, _steps=steps) -> None:
            sim._resume_compiled_initial(_steps, 0)

        processes.append(CompiledProcess(index, "initial", run_initial))

    triggers: TriggerIndex = {
        signal: tuple(
            (processes[index], tuple(kinds))
            for index, kinds in sorted(per_signal.items())
        )
        for signal, per_signal in sensitivity.items()
    }
    startup = tuple(p for p in processes if p.kind != "always")
    return CompiledModel(
        module=module,
        processes=tuple(processes),
        triggers=triggers,
        drivers_of={s: tuple(ids) for s, ids in drivers_of.items()},
        driver_count=driver_count,
        startup=startup,
    )
