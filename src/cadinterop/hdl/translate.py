"""Verilog -> VHDL-style identifier translation with script-impact report.

Section 3.3 ("Keywords"): "'in' and 'out' are valid Verilog HDL identifiers
... that are reserved keywords in VHDL.  Even if a translation tool can
rename Verilog identifiers so that VHDL syntax errors are avoided, the
identifier names will no longer match between models, and simulation
analysis scripts may need to be modified."

:func:`plan_renames` computes a safe, collision-free rename for every
identifier that is illegal on the VHDL side (keywords, ``$``, trailing or
doubled underscores); :func:`apply_renames` rewrites a module; and
:func:`script_impact` lists which lines of the user's analysis scripts
reference renamed identifiers — the knock-on cost the paper warns about.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.namemap import NameMap
from cadinterop.hdl.ast_nodes import Module
from cadinterop.hdl.names import is_legal_vhdl_identifier
from cadinterop.hdl.personalities import rename_module_signals


def vhdl_safe_transform(name: str) -> str:
    """Preferred VHDL-legal form of a Verilog identifier."""
    safe = name.replace("$", "_d_")
    safe = re.sub(r"_+", "_", safe)
    safe = safe.strip("_") or "sig"
    if not safe[0].isalpha():
        safe = "s_" + safe
    if not is_legal_vhdl_identifier(safe):
        safe = safe + "_sig"
    return safe


@dataclass
class TranslationPlan:
    """The rename decisions for one module."""

    renames: Dict[str, str] = field(default_factory=dict)
    name_map: NameMap = field(default_factory=NameMap)

    @property
    def renamed_count(self) -> int:
        return len(self.renames)


def plan_renames(names: Iterable[str], log: Optional[IssueLog] = None) -> TranslationPlan:
    """Decide a VHDL-safe name for every identifier; identity where legal."""
    plan = TranslationPlan(name_map=NameMap(vhdl_safe_transform))
    for name in names:
        if is_legal_vhdl_identifier(name):
            plan.name_map.force(name, name, reason="already legal")
            continue
        new_name = plan.name_map.map(name, reason="illegal in VHDL")
        plan.renames[name] = new_name
        if log is not None:
            log.add(
                Severity.NOTE, Category.NAME_MAPPING, name,
                f"renamed to {new_name!r} for VHDL legality",
                remedy="update simulation analysis scripts referencing the old name",
            )
    return plan


def apply_renames(module: Module, plan: TranslationPlan) -> Module:
    """Rewrite a module's signals per the plan."""
    return rename_module_signals(module, dict(plan.renames))


def translate_module(module: Module, log: Optional[IssueLog] = None) -> Tuple[Module, TranslationPlan]:
    """Plan and apply VHDL-safe renames for one module."""
    plan = plan_renames(module.signal_names(), log)
    return apply_renames(module, plan), plan


_WORD = re.compile(r"[A-Za-z_$][A-Za-z_0-9$]*")


@dataclass
class ScriptImpact:
    """Which analysis-script lines break when identifiers are renamed."""

    affected: List[Tuple[int, str, str]] = field(default_factory=list)  # (line#, old name, line text)

    @property
    def broken_lines(self) -> int:
        return len({line for line, _n, _t in self.affected})


def script_impact(script_text: str, plan: TranslationPlan) -> ScriptImpact:
    """Scan an analysis script for references to renamed identifiers."""
    impact = ScriptImpact()
    for line_number, line in enumerate(script_text.splitlines(), start=1):
        for word in _WORD.findall(line):
            if word in plan.renames:
                impact.affected.append((line_number, word, line.strip()))
    return impact


def rewrite_script(script_text: str, plan: TranslationPlan) -> str:
    """Mechanically update a script for the renames (best-effort)."""

    def replace(match: "re.Match[str]") -> str:
        word = match.group(0)
        return plan.renames.get(word, word)

    return _WORD.sub(replace, script_text)
