"""Simulator personalities: named bundles of tool-specific behavior.

A *personality* stands in for one commercial simulator: its event-ordering
choice (legal but observable on racy models), how many identifier
characters it honors (the PC-simulator eight-character bug), and whether it
understands escaped identifiers.  Running one model through several
personalities is the library's stand-in for the paper's multi-simulator
product evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.namemap import NameMap, truncating_transform
from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    ContAssign,
    GateInst,
    HDLError,
    Module,
    SensItem,
    Sensitivity,
    rename_expr,
)
from cadinterop.hdl.compile import CompiledModel, compile_model
from cadinterop.hdl.flatten import _rename_body
from cadinterop.hdl.simulator import (
    DEFAULT_KERNEL,
    FIFO,
    LIFO,
    OrderingPolicy,
    Simulator,
    seeded_shuffle_policy,
)


@dataclass(frozen=True)
class SimulatorPersonality:
    """One tool's observable behavioral fingerprint."""

    name: str
    policy: OrderingPolicy
    significant_chars: Optional[int] = None  # None = unlimited
    supports_escaped_identifiers: bool = True

    def prepare(self, module: Module, log: Optional[IssueLog] = None) -> Module:
        """Apply the personality's name handling to a module.

        A limited-significance personality silently truncates names; if two
        distinct signals collide, the tool *aliases* them (the paper's
        failure) — modelled here as a hard error plus a diagnostic, because
        the aliased simulation would be garbage.
        """
        if self.significant_chars is None:
            return module
        truncate = truncating_transform(self.significant_chars)
        mapping: Dict[str, str] = {}
        taken: Dict[str, str] = {}
        for name in module.nets:
            short = truncate(name)
            if short in taken and taken[short] != name:
                if log is not None:
                    log.add(
                        Severity.ERROR, Category.NAME_MAPPING, name,
                        f"aliases {taken[short]!r} after {self.significant_chars}-char "
                        f"truncation to {short!r}",
                        tool=self.name,
                        remedy="adopt a naming convention unique in the first "
                        f"{self.significant_chars} characters",
                    )
                raise NameAliasError(
                    f"{self.name}: {name!r} and {taken[short]!r} alias to {short!r}"
                )
            taken[short] = name
            mapping[name] = short
        return rename_module_signals(module, mapping)


class NameAliasError(HDLError):
    """Two signals became indistinguishable under a tool's name rules."""


def rename_module_signals(module: Module, mapping: Dict[str, str]) -> Module:
    """Deep-copy ``module`` with every signal renamed through ``mapping``."""
    renamed = Module(module.name)
    for port in module.ports:
        renamed.add_port(mapping.get(port.name, port.name), port.direction)
    for name, decl in module.nets.items():
        renamed.add_net(mapping.get(name, name), decl.kind)
    for assign in module.assigns:
        renamed.add_assign(
            mapping.get(assign.target, assign.target),
            rename_expr(assign.expr, mapping),
            assign.delay,
        )
    for gate in module.gates:
        renamed.add_gate(
            GateInst(
                gate.name,
                gate.gate,
                mapping.get(gate.output, gate.output),
                [mapping.get(pin, pin) for pin in gate.inputs],
                gate.delay,
            )
        )
    for block in module.always_blocks:
        sensitivity = Sensitivity(
            items=[
                SensItem(mapping.get(item.signal, item.signal), item.edge)
                for item in block.sensitivity.items
            ],
            star=block.sensitivity.star,
        )
        renamed.add_always(sensitivity, _rename_body(block.body, mapping))
    for block in module.initial_blocks:
        renamed.add_initial(_rename_body(block.body, mapping))
    return renamed


#: The reference workstation simulator: source-order (FIFO) scheduling.
XL_LIKE = SimulatorPersonality("xl-like", FIFO)

#: A competing workstation simulator with the opposite (equally legal)
#: simultaneous-event order.
TURBO_LIKE = SimulatorPersonality("turbo-like", LIFO)

#: A PC-hosted simulator honoring only eight identifier characters.
PC8_LIKE = SimulatorPersonality(
    "pc8-like", FIFO, significant_chars=8, supports_escaped_identifiers=False
)

DEFAULT_ENSEMBLE: Tuple[SimulatorPersonality, ...] = (
    XL_LIKE,
    TURBO_LIKE,
    SimulatorPersonality("shuffleA", seeded_shuffle_policy(11)),
    SimulatorPersonality("shuffleB", seeded_shuffle_policy(97)),
)


def run_personality(
    module: Module,
    personality: SimulatorPersonality,
    until: int = 1_000_000,
    trace: Optional[Sequence[str]] = None,
    log: Optional[IssueLog] = None,
    kernel: str = DEFAULT_KERNEL,
    compiled: Optional[CompiledModel] = None,
) -> Simulator:
    """Prepare a module for a personality and simulate it.

    Pass ``compiled`` (a :class:`CompiledModel` of ``module``) to make
    ensemble sweeps compile-once/run-many: it is reused whenever the
    personality's name handling leaves the module untouched.  A
    personality that rewrites names (e.g. eight-character truncation)
    simulates a different module and compiles its own.
    """
    prepared = personality.prepare(module, log)
    if kernel == "compiled":
        if compiled is not None and prepared is module:
            model: Union[Module, CompiledModel] = compiled
        else:
            model = compile_model(prepared)
        sim = Simulator(model, personality.policy, trace_signals=trace)
    else:
        sim = Simulator(
            prepared, personality.policy, trace_signals=trace, kernel=kernel
        )
    sim.run(until)
    return sim
