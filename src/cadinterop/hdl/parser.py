"""Parser for the Verilog-like subset into the HDL IR.

Accepts the constructs :mod:`cadinterop.hdl.ast_nodes` models::

    module top (a, b, y);
      input a, b;
      output y;
      wire w;
      reg r;
      assign #2 w = a & b;
      always @(a or b) begin
        r = a | b;
        if (r) r = ~b; else r = b;
      end
      always @(posedge clk) q <= d;
      initial begin a = 1'b0; #5 a = 1'b1; end
      and g1 (w2, a, b);
      child u1 (.p(a), .q(w));
    endmodule

Escaped identifiers (``\\name ``) are accepted and stored with their body
as the signal name, so the naming experiments can roundtrip them.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    Binary,
    Cond,
    Const,
    ContAssign,
    Delay,
    DesignUnit,
    Expr,
    GateInst,
    HDLError,
    If,
    InitialBlock,
    Module,
    ModuleInst,
    SensItem,
    Sensitivity,
    Stmt,
    Unary,
    Var,
)


class ParseError(HDLError):
    """Syntax error with position information."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<line_comment>//[^\n]*)
    | (?P<block_comment>/\*.*?\*/)
    | (?P<literal>1'b[01xz])
    | (?P<number>\d+)
    | (?P<escaped>\\[^\s]+\s)
    | (?P<id>[A-Za-z_][A-Za-z_0-9$]*)
    | (?P<op><=|==+|!==|!=|&&|\|\||~\^|[~!&|^()=;,#@.?:*])
    """,
    re.VERBOSE | re.DOTALL,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group(kind)
        line += text.count("\n")
        pos = match.end()
        if kind in ("ws", "line_comment", "block_comment"):
            continue
        if kind == "escaped":
            # Strip leading backslash and trailing whitespace terminator.
            tokens.append(_Token("id", text[1:].rstrip(), line))
            continue
        tokens.append(_Token(kind, text, line))
    return tokens


_GATES = set(GateInst.GATES)
_KEYWORD_IDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "if", "else",
    "posedge", "negedge", "or",
}


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last_line = self._tokens[-1].line if self._tokens else 1
            raise ParseError("unexpected end of input", last_line)
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, got {token.text!r}", token.line)
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._pos += 1
            return True
        return False

    def _expect_id(self) -> str:
        token = self._next()
        if token.kind != "id":
            raise ParseError(f"expected identifier, got {token.text!r}", token.line)
        return token.text

    def _expect_number(self) -> int:
        token = self._next()
        if token.kind != "number":
            raise ParseError(f"expected number, got {token.text!r}", token.line)
        return int(token.text)

    # -- entry points -------------------------------------------------------

    def parse_design(self) -> DesignUnit:
        unit = DesignUnit()
        while self._peek() is not None:
            unit.add(self.parse_module())
        if not unit.modules:
            raise ParseError("no modules in source", 1)
        return unit

    def parse_module(self) -> Module:
        self._expect("module")
        module = Module(self._expect_id())
        header_ports: List[str] = []
        if self._accept("("):
            if not self._accept(")"):
                while True:
                    header_ports.append(self._expect_id())
                    if self._accept(")"):
                        break
                    self._expect(",")
        self._expect(";")
        while not self._accept("endmodule"):
            self._parse_item(module)
        declared_ports = set(module.port_names())
        missing = [p for p in header_ports if p not in declared_ports]
        if missing:
            raise HDLError(
                f"module {module.name!r}: header ports {missing} never given a direction"
            )
        module.validate()
        return module

    # -- items ---------------------------------------------------------------

    def _parse_item(self, module: Module) -> None:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of module", self._tokens[-1].line)
        word = token.text
        if word in ("input", "output", "inout"):
            self._next()
            for name in self._id_list():
                module.add_port(name, word)
            self._expect(";")
        elif word in ("wire", "reg"):
            self._next()
            for name in self._id_list():
                module.add_net(name, word)
            self._expect(";")
        elif word == "assign":
            self._next()
            delay = 0
            if self._accept("#"):
                delay = self._expect_number()
            target = self._expect_id()
            self._expect("=")
            expr = self._parse_expr()
            self._expect(";")
            module.add_net(target)
            module.add_assign(target, expr, delay)
        elif word == "always":
            self._next()
            self._expect("@")
            sensitivity = self._parse_sensitivity()
            body = self._parse_stmt()
            module.add_always(sensitivity, body)
        elif word == "initial":
            self._next()
            module.add_initial(self._parse_stmt())
        elif word in _GATES:
            self._next()
            delay = 0
            if self._accept("#"):
                delay = self._expect_number()
            name = self._expect_id()
            self._expect("(")
            terminals = self._id_list()
            self._expect(")")
            self._expect(";")
            if len(terminals) < 2:
                raise HDLError(f"gate {name!r} needs an output and inputs")
            for terminal in terminals:
                module.add_net(terminal)
            module.add_gate(GateInst(name, word, terminals[0], terminals[1:], delay))
        elif token.kind == "id" and word not in _KEYWORD_IDS:
            # Module instance: <module> <name> ( .port(signal), ... );
            self._next()
            inst_name = self._expect_id()
            self._expect("(")
            connections: Dict[str, str] = {}
            if not self._accept(")"):
                while True:
                    self._expect(".")
                    formal = self._expect_id()
                    self._expect("(")
                    actual = self._expect_id()
                    self._expect(")")
                    if formal in connections:
                        raise ParseError(f"port {formal!r} connected twice", token.line)
                    connections[formal] = actual
                    if self._accept(")"):
                        break
                    self._expect(",")
            self._expect(";")
            for actual in connections.values():
                module.add_net(actual)
            module.add_instance(ModuleInst(inst_name, word, connections))
        else:
            raise ParseError(f"unexpected token {word!r} in module body", token.line)

    def _id_list(self) -> List[str]:
        names = [self._expect_id()]
        while self._accept(","):
            names.append(self._expect_id())
        return names

    def _parse_sensitivity(self) -> Sensitivity:
        self._expect("(")
        if self._accept("*"):
            self._expect(")")
            return Sensitivity(star=True)
        items: List[SensItem] = []
        while True:
            edge = "level"
            token = self._peek()
            if token is not None and token.text in ("posedge", "negedge"):
                edge = self._next().text
            items.append(SensItem(self._expect_id(), edge))
            if self._accept(")"):
                break
            if not (self._accept("or") or self._accept(",")):
                bad = self._peek()
                raise ParseError(
                    f"expected 'or', ',' or ')' in sensitivity list, got "
                    f"{bad.text if bad else 'EOF'!r}",
                    bad.line if bad else 0,
                )
        return Sensitivity(items=items)

    # -- statements ------------------------------------------------------------

    def _parse_stmt(self) -> List[Stmt]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in statement", self._tokens[-1].line)
        if token.text == "begin":
            self._next()
            body: List[Stmt] = []
            while not self._accept("end"):
                body.extend(self._parse_stmt())
            return body
        if token.text == "if":
            self._next()
            self._expect("(")
            condition = self._parse_expr()
            self._expect(")")
            then_body = self._parse_stmt()
            else_body: Optional[List[Stmt]] = None
            if self._accept("else"):
                else_body = self._parse_stmt()
            return [If(condition, then_body, else_body)]
        if token.text == "#":
            self._next()
            amount = self._expect_number()
            rest: List[Stmt] = []
            nxt = self._peek()
            if nxt is not None and nxt.text != "end":
                rest = self._parse_stmt()
            return [Delay(amount)] + rest
        if token.kind == "id":
            target = self._expect_id()
            op = self._next()
            if op.text == "=":
                nonblocking = False
            elif op.text == "<=":
                nonblocking = True
            else:
                raise ParseError(f"expected '=' or '<=', got {op.text!r}", op.line)
            expr = self._parse_expr()
            self._expect(";")
            return [Assign(target, expr, nonblocking=nonblocking)]
        raise ParseError(f"unexpected token {token.text!r} in statement", token.line)

    # -- expressions (precedence climbing) ---------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        condition = self._parse_or()
        if self._accept("?"):
            if_true = self._parse_ternary()
            self._expect(":")
            if_false = self._parse_ternary()
            return Cond(condition, if_true, if_false)
        return condition

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept("||"):
            left = Binary("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_bitor()
        while self._accept("&&"):
            left = Binary("&&", left, self._parse_bitor())
        return left

    def _parse_bitor(self) -> Expr:
        left = self._parse_bitxor()
        while self._accept("|"):
            left = Binary("|", left, self._parse_bitxor())
        return left

    def _parse_bitxor(self) -> Expr:
        left = self._parse_bitand()
        while True:
            if self._accept("^"):
                left = Binary("^", left, self._parse_bitand())
            elif self._accept("~^"):
                left = Binary("~^", left, self._parse_bitand())
            else:
                return left

    def _parse_bitand(self) -> Expr:
        left = self._parse_equality()
        while self._accept("&"):
            left = Binary("&", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is not None and token.text in ("==", "!=", "===", "!=="):
                op = self._next().text
                left = Binary(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept("~"):
            return Unary("~", self._parse_unary())
        if self._accept("!"):
            return Unary("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._next()
        if token.text == "(":
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if token.kind == "literal":
            return Const(token.text[-1])
        if token.kind == "number":
            if token.text in ("0", "1"):
                return Const(token.text)
            raise ParseError(f"only 0/1/1'bx/1'bz literals supported, got {token.text!r}", token.line)
        if token.kind == "id":
            return Var(token.text)
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line)


def parse(source: str) -> DesignUnit:
    """Parse source text into a design unit (first module becomes top)."""
    return Parser(source).parse_design()


def parse_module(source: str) -> Module:
    """Parse a single module."""
    unit = parse(source)
    if len(unit.modules) != 1:
        raise HDLError(f"expected one module, found {len(unit.modules)}")
    return unit.top_module
