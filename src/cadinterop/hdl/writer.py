"""Emit the HDL IR back to parseable source text.

The inverse of :mod:`cadinterop.hdl.parser`: any :class:`Module` or
:class:`DesignUnit` can be rendered to text that re-parses to an equivalent
IR.  This closes the persistence loop for the HDL substrate — tools in this
library can exchange designs through files, the way Section 3's tools did,
with a tested `parse(write(m)) == m` guarantee.
"""

from __future__ import annotations

import re
from typing import List

from cadinterop.hdl.ast_nodes import (
    Assign,
    Binary,
    Cond,
    Const,
    Delay,
    DesignUnit,
    Expr,
    HDLError,
    If,
    Module,
    Stmt,
    Unary,
)

#: Operator precedence tiers matching the parser's climbing order (lower
#: binds looser).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
}

_SIMPLE_ID = re.compile(r"^[A-Za-z_][A-Za-z_0-9$]*$")


def _identifier(name: str) -> str:
    """Render an identifier, escaping it if not a simple name."""
    if _SIMPLE_ID.match(name):
        return name
    return "\\" + name + " "


def write_expr(expr: Expr, parent_precedence: int = 0) -> str:
    if isinstance(expr, Const):
        return f"1'b{expr.value}"
    from cadinterop.hdl.ast_nodes import Var

    if isinstance(expr, Var):
        return _identifier(expr.name)
    if isinstance(expr, Unary):
        inner = write_expr(expr.operand, 7)
        return f"{expr.op}{inner}"
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        left = write_expr(expr.left, precedence)
        right = write_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, Cond):
        text = (
            f"{write_expr(expr.condition, 1)} ? "
            f"{write_expr(expr.if_true)} : {write_expr(expr.if_false)}"
        )
        if parent_precedence > 0:
            return f"({text})"
        return text
    raise HDLError(f"cannot write expression {expr!r}")


def _write_stmt(stmt: Stmt, indent: str) -> List[str]:
    if isinstance(stmt, Assign):
        op = "<=" if stmt.nonblocking else "="
        return [f"{indent}{_identifier(stmt.target)} {op} {write_expr(stmt.expr)};"]
    if isinstance(stmt, If):
        lines = [f"{indent}if ({write_expr(stmt.condition)}) begin"]
        for inner in stmt.then_body:
            lines.extend(_write_stmt(inner, indent + "  "))
        lines.append(f"{indent}end")
        if stmt.else_body is not None:
            lines.append(f"{indent}else begin")
            for inner in stmt.else_body:
                lines.extend(_write_stmt(inner, indent + "  "))
            lines.append(f"{indent}end")
        return lines
    if isinstance(stmt, Delay):
        return [f"{indent}#{stmt.amount}"]
    raise HDLError(f"cannot write statement {stmt!r}")


def _write_body(body: List[Stmt], indent: str) -> List[str]:
    lines: List[str] = []
    pending_delay: str = ""
    for stmt in body:
        rendered = _write_stmt(stmt, indent)
        if isinstance(stmt, Delay):
            pending_delay = rendered[0].strip()
            continue
        if pending_delay:
            rendered[0] = f"{indent}{pending_delay} " + rendered[0].strip()
            pending_delay = ""
        lines.extend(rendered)
    if pending_delay:
        # Trailing delay with no statement: attach a harmless no-op is not
        # possible; emit as a bare delay before 'end' (parser accepts it).
        lines.append(f"{indent}{pending_delay}")
    return lines


def write_module(module: Module) -> str:
    lines: List[str] = []
    ports = ", ".join(_identifier(p.name) for p in module.ports)
    lines.append(f"module {module.name} ({ports});")
    for port in module.ports:
        lines.append(f"  {port.direction} {_identifier(port.name)};")
    port_names = set(module.port_names())
    for name, decl in module.nets.items():
        if name in port_names and decl.kind == "wire":
            continue
        lines.append(f"  {decl.kind} {_identifier(name)};")
    for assign in module.assigns:
        delay = f"#{assign.delay} " if assign.delay else ""
        lines.append(
            f"  assign {delay}{_identifier(assign.target)} = {write_expr(assign.expr)};"
        )
    for gate in module.gates:
        delay = f"#{gate.delay} " if gate.delay else ""
        terminals = ", ".join(
            _identifier(t) for t in [gate.output, *gate.inputs]
        )
        lines.append(f"  {gate.gate} {delay}{_identifier(gate.name)} ({terminals});")
    for block in module.always_blocks:
        if block.sensitivity.star:
            trigger = "*"
        else:
            trigger = " or ".join(
                (f"{item.edge} " if item.edge != "level" else "") + _identifier(item.signal)
                for item in block.sensitivity.items
            )
        lines.append(f"  always @({trigger}) begin")
        lines.extend(_write_body(block.body, "    "))
        lines.append("  end")
    for block in module.initial_blocks:
        lines.append("  initial begin")
        lines.extend(_write_body(block.body, "    "))
        lines.append("  end")
    for inst in module.instances:
        connections = ", ".join(
            f".{formal}({_identifier(actual)})"
            for formal, actual in inst.connections.items()
        )
        lines.append(f"  {inst.module_name} {inst.name} ({connections});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_design(unit: DesignUnit) -> str:
    """Write a whole design unit, top module last (parser takes first as
    top, so callers should set ``unit.top`` after re-parsing)."""
    return "\n".join(write_module(module) for module in unit.modules.values())
