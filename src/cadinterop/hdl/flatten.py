"""Design flattening with a reversible name map (paper Section 3.3).

"Certain HDL based tools work only on a flat design description...  When
such a tool imports a hierarchical design, it must flatten the design.  New
names get derived in some systematic way, such as joining the names in a
hierarchical path using an underscore.  However, the design process is
often iterative, and if a problem is found in the flat representation, the
user must map back to the name used in hierarchical representation."

:func:`flatten` performs exactly that systematic derivation — underscore
joining by default — and returns, alongside the flat module, a
:class:`~cadinterop.common.namemap.NameMap` from hierarchical dotted paths
to flat names.  The map is collision-aware: ``top.u1.w`` and a top-level
signal literally named ``u1_w`` would collide under naive joining; the map
uniquifies and *remembers*, so :func:`unflatten_name` always recovers the
true hierarchical path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from cadinterop.common.namemap import NameMap
from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    ContAssign,
    Delay,
    DesignUnit,
    GateInst,
    HDLError,
    If,
    InitialBlock,
    Module,
    SensItem,
    Sensitivity,
    Stmt,
    rename_expr,
)
from cadinterop.hdl.elaborate import InstanceNode, elaborate


def _separator_transform(separator: str):
    def transform(dotted: str) -> str:
        return dotted.replace(".", separator)

    return transform


def flatten(
    unit: DesignUnit,
    top: Optional[str] = None,
    separator: str = "_",
) -> Tuple[Module, NameMap]:
    """Flatten ``unit`` into a single module plus the reversible name map.

    Top-level signals keep their own names (mapped identity); signals in an
    instance ``u1`` become ``u1<sep><name>`` unless that collides, in which
    case they are uniquified and the decision is recorded in the map.
    """
    root = elaborate(unit, top)
    flat = Module(root.module.name + separator + "flat")
    name_map = NameMap(_separator_transform(separator))

    # Top-level ports stay ports of the flat module.
    for port in root.module.ports:
        flat.add_port(port.name, port.direction)

    _flatten_node(root, flat, name_map, separator, parent_local=None)
    flat.validate()
    return flat, name_map


def _flatten_node(
    node: InstanceNode,
    flat: Module,
    name_map: NameMap,
    separator: str,
    parent_local: Optional[Dict[str, str]],
) -> None:
    prefix = ".".join(node.path)

    # Build this node's local-signal renaming.
    local: Dict[str, str] = {}
    for signal, decl in node.module.nets.items():
        if not node.path:
            flat_name = name_map.map(signal)
        elif signal in node.bindings:
            # Connected port: alias to the parent's flattened net — the
            # port and the actual are one electrical node.
            parent_signal = node.bindings[signal]
            if parent_local is None or parent_signal not in parent_local:
                raise HDLError(
                    f"instance {prefix!r}: parent signal {parent_signal!r} unknown"
                )
            flat_name = parent_local[parent_signal]
        else:
            flat_name = name_map.map(f"{prefix}.{signal}", reason="hierarchy removal")
        local[signal] = flat_name
        if flat_name not in flat.nets:
            flat.add_net(flat_name, decl.kind)
        elif decl.kind == "reg":
            flat.add_net(flat_name, "reg")

    # Copy behavior with renamed signals.
    for assign in node.module.assigns:
        flat.add_assign(local[assign.target], rename_expr(assign.expr, local), assign.delay)
    for gate in node.module.gates:
        gate_name = (prefix + separator + gate.name) if prefix else gate.name
        flat.add_gate(
            GateInst(
                gate_name,
                gate.gate,
                local[gate.output],
                [local[pin] for pin in gate.inputs],
                gate.delay,
            )
        )
    for block in node.module.always_blocks:
        sensitivity = Sensitivity(
            items=[SensItem(local[i.signal], i.edge) for i in block.sensitivity.items],
            star=block.sensitivity.star,
        )
        flat.add_always(sensitivity, _rename_body(block.body, local))
    for block in node.module.initial_blocks:
        flat.add_initial(_rename_body(block.body, local))

    for child in node.children:
        _flatten_node(child, flat, name_map, separator, parent_local=local)


def _rename_body(body: List[Stmt], mapping: Dict[str, str]) -> List[Stmt]:
    renamed: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Assign):
            renamed.append(
                Assign(
                    mapping.get(stmt.target, stmt.target),
                    rename_expr(stmt.expr, mapping),
                    stmt.nonblocking,
                )
            )
        elif isinstance(stmt, If):
            renamed.append(
                If(
                    rename_expr(stmt.condition, mapping),
                    _rename_body(stmt.then_body, mapping),
                    _rename_body(stmt.else_body, mapping) if stmt.else_body else None,
                )
            )
        elif isinstance(stmt, Delay):
            renamed.append(Delay(stmt.amount))
        else:
            raise HDLError(f"cannot flatten statement {stmt!r}")
    return renamed


def unflatten_name(name_map: NameMap, flat_name: str) -> str:
    """Recover the hierarchical (dotted) name from a flat name.

    This is the paper's iterate-and-map-back need: a problem found in the
    flat representation must be reported against the hierarchical name.
    """
    return name_map.unmap(flat_name)
