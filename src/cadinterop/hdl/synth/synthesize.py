"""Simple synthesis: RTL to a gate-level netlist.

Combinational cones (continuous assigns and level-sensitive always blocks)
become gate primitives; edge-triggered blocks remain as minimal flip-flop
processes fed by synthesized cones; incomplete assignment paths infer
latches (kept as level-sensitive feedback processes and reported).

Crucially for the paper's Section 3.2 example, synthesis reads a
level-sensitive block under the *full* sensitivity of its body — so the
synthesized netlist of ``always @(a or b) out = a & b & c;`` responds to
``c``, while RTL simulation of the original does not.  The resulting
netlist is itself a simulatable :class:`~cadinterop.hdl.ast_nodes.Module`,
so that divergence is directly observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    Binary,
    Cond,
    Const,
    Expr,
    GateInst,
    HDLError,
    If,
    Module,
    SensItem,
    Sensitivity,
    Stmt,
    Unary,
    Var,
    expr_reads,
)
from cadinterop.hdl.synth.subset import SubsetProfile


class SynthesisError(HDLError):
    """The module cannot be synthesized by this implementation."""


@dataclass
class SynthesisResult:
    """A gate netlist plus inference accounting."""

    netlist: Module
    gate_count: int = 0
    ff_count: int = 0
    latch_count: int = 0
    log: IssueLog = field(default_factory=IssueLog)


class _NetlistBuilder:
    """Emits gates and temporary wires into the output module."""

    def __init__(self, netlist: Module) -> None:
        self.netlist = netlist
        self._temp = 0
        self._gate = 0

    def wire(self) -> str:
        self._temp += 1
        name = f"synth$t{self._temp}"
        self.netlist.add_net(name, "wire")
        return name

    def gate(self, kind: str, output: str, inputs: List[str]) -> None:
        self._gate += 1
        self.netlist.add_gate(GateInst(f"synth$g{self._gate}", kind, output, inputs))

    @property
    def gate_count(self) -> int:
        return self._gate

    def emit_expr(self, expr: Expr, constants: Dict[str, str]) -> str:
        """Lower an expression tree to gates; returns the result wire."""
        if isinstance(expr, Const):
            if expr.value not in ("0", "1"):
                raise SynthesisError(f"cannot synthesize literal 1'b{expr.value}")
            name = constants.get(expr.value)
            if name is None:
                # Constants become tied wires driven by a buf of themselves
                # via an assign-free idiom: use a buf from a tied net.
                name = f"synth$const{expr.value}"
                if name not in self.netlist.nets:
                    self.netlist.add_net(name, "wire")
                    self.netlist.add_assign(name, Const(expr.value))
                constants[expr.value] = name
            return name
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, Unary):
            operand = self.emit_expr(expr.operand, constants)
            out = self.wire()
            self.gate("not", out, [operand])
            return out
        if isinstance(expr, Binary):
            left = self.emit_expr(expr.left, constants)
            right = self.emit_expr(expr.right, constants)
            out = self.wire()
            if expr.op in ("&", "&&"):
                self.gate("and", out, [left, right])
            elif expr.op in ("|", "||"):
                self.gate("or", out, [left, right])
            elif expr.op == "^":
                self.gate("xor", out, [left, right])
            elif expr.op == "~^":
                self.gate("xnor", out, [left, right])
            elif expr.op in ("==", "==="):
                self.gate("xnor", out, [left, right])
            elif expr.op in ("!=", "!=="):
                self.gate("xor", out, [left, right])
            else:
                raise SynthesisError(f"cannot synthesize operator {expr.op!r}")
            return out
        if isinstance(expr, Cond):
            condition = self.emit_expr(expr.condition, constants)
            if_true = self.emit_expr(expr.if_true, constants)
            if_false = self.emit_expr(expr.if_false, constants)
            ncond = self.wire()
            self.gate("not", ncond, [condition])
            arm_true = self.wire()
            self.gate("and", arm_true, [condition, if_true])
            arm_false = self.wire()
            self.gate("and", arm_false, [ncond, if_false])
            out = self.wire()
            self.gate("or", out, [arm_true, arm_false])
            return out
        raise SynthesisError(f"cannot synthesize expression {expr!r}")


def _symbolic_exec(body: Sequence[Stmt], env: Dict[str, Expr]) -> Dict[str, Expr]:
    """Sequentially interpret a comb body into per-signal expressions."""
    current = dict(env)
    for stmt in body:
        if isinstance(stmt, Assign):
            if stmt.nonblocking:
                raise SynthesisError("nonblocking assign in combinational block")
            current[stmt.target] = _substitute(stmt.expr, current)
        elif isinstance(stmt, If):
            condition = _substitute(stmt.condition, current)
            then_env = _symbolic_exec(stmt.then_body, current)
            else_env = _symbolic_exec(stmt.else_body or [], current)
            merged = dict(current)
            for target in set(then_env) | set(else_env):
                then_value = then_env.get(target, current.get(target, Var(target)))
                else_value = else_env.get(target, current.get(target, Var(target)))
                if then_value is else_value:
                    merged[target] = then_value
                else:
                    merged[target] = Cond(condition, then_value, else_value)
            current = merged
        else:
            raise SynthesisError(f"cannot synthesize statement {stmt!r}")
    return current


def _substitute(expr: Expr, env: Dict[str, Expr]) -> Expr:
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return env.get(expr.name, expr)
    if isinstance(expr, Unary):
        return Unary(expr.op, _substitute(expr.operand, env))
    if isinstance(expr, Binary):
        return Binary(expr.op, _substitute(expr.left, env), _substitute(expr.right, env))
    if isinstance(expr, Cond):
        return Cond(
            _substitute(expr.condition, env),
            _substitute(expr.if_true, env),
            _substitute(expr.if_false, env),
        )
    raise SynthesisError(f"cannot substitute into {expr!r}")


def _expr_self_reads(expr: Expr, target: str) -> bool:
    return target in expr_reads(expr)


def synthesize(module: Module, profile: Optional[SubsetProfile] = None) -> SynthesisResult:
    """Synthesize ``module`` into a gate netlist.

    ``initial`` blocks are carried over verbatim (they are testbench
    stimulus, not hardware); hierarchy must be flattened first.
    """
    if module.instances:
        raise SynthesisError("flatten hierarchy before synthesis")
    if profile is not None:
        violations = profile.violations(module)
        if violations:
            raise SynthesisError(
                f"{profile.name} rejects module {module.name!r}: {violations}"
            )

    netlist = Module(module.name + "_syn")
    result = SynthesisResult(netlist=netlist)
    builder = _NetlistBuilder(netlist)
    constants: Dict[str, str] = {}

    for port in module.ports:
        netlist.add_port(port.name, port.direction)
    for name, decl in module.nets.items():
        netlist.add_net(name, decl.kind)

    for assign in module.assigns:
        wire = builder.emit_expr(assign.expr, constants)
        builder.gate("buf", assign.target, [wire])

    for gate in module.gates:
        netlist.add_gate(
            GateInst("synth$" + gate.name, gate.gate, gate.output, list(gate.inputs), 0)
        )
        builder._gate += 1

    for index, block in enumerate(module.always_blocks):
        if block.sensitivity.is_edge_triggered():
            _synthesize_ff_block(block, builder, constants, result)
            continue
        env = _symbolic_exec(block.body, {})
        for target in sorted(block.writes()):
            expr = env[target]
            if _expr_self_reads(expr, target):
                # Latch inference: keep a level-sensitive feedback process.
                result.latch_count += 1
                result.log.add(
                    Severity.WARNING, Category.SEMANTICS,
                    f"{module.name}.always[{index}].{target}",
                    "latch inferred (not all paths assign the target)",
                    remedy="add an else branch or default assignment",
                )
                cone_inputs = sorted(expr_reads(expr) - {target})
                netlist.add_always(
                    Sensitivity(items=[SensItem(s) for s in cone_inputs]),
                    [Assign(target, expr)],
                )
            else:
                wire = builder.emit_expr(expr, constants)
                builder.gate("buf", target, [wire])

    for block in module.initial_blocks:
        netlist.add_initial(list(block.body))

    result.gate_count = builder.gate_count
    netlist.validate()
    return result


def _synthesize_ff_block(
    block: AlwaysBlock,
    builder: _NetlistBuilder,
    constants: Dict[str, str],
    result: SynthesisResult,
) -> None:
    """Edge block: synthesize the input cones, keep a minimal FF process."""
    env = _symbolic_exec_ff(block.body)
    netlist = builder.netlist
    ff_body: List[Stmt] = []
    for target, expr in sorted(env.items()):
        cone_wire = builder.emit_expr(expr, constants)
        ff_body.append(Assign(target, Var(cone_wire), nonblocking=True))
        result.ff_count += 1
    netlist.add_always(
        Sensitivity(items=[SensItem(i.signal, i.edge) for i in block.sensitivity.items]),
        ff_body,
    )


def _symbolic_exec_ff(body: Sequence[Stmt]) -> Dict[str, Expr]:
    """Sequential blocks: nonblocking targets get their cone expressions."""
    env: Dict[str, Expr] = {}
    for stmt in body:
        if isinstance(stmt, Assign):
            env[stmt.target] = stmt.expr
        elif isinstance(stmt, If):
            condition = stmt.condition
            then_env = _symbolic_exec_ff(stmt.then_body)
            else_env = _symbolic_exec_ff(stmt.else_body or [])
            for target in set(then_env) | set(else_env):
                then_value = then_env.get(target, env.get(target, Var(target)))
                else_value = else_env.get(target, env.get(target, Var(target)))
                env[target] = Cond(condition, then_value, else_value)
        else:
            raise SynthesisError(f"cannot synthesize {stmt!r} in sequential block")
    return env
