"""Sensitivity-list analysis: the simulation/synthesis semantic gap.

Section 3.2 ("Modeling style")::

    always @(a or b)
      out = a & b & c;

"You would expect the signal out to be modified when a or b changes.
However, the synthesis software interprets your model as if out was
sensitive to signals a, b and c."

:func:`analyze` finds every incomplete sensitivity list (and latch
inference hazard); :func:`synthesis_interpretation` builds the module the
synthesizer *actually* implements (full sensitivity); and
:func:`simulation_synthesis_mismatch` demonstrates the gap by simulating
both under identical stimulus and diffing the observed signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Assign,
    If,
    Module,
    SensItem,
    Sensitivity,
    Stmt,
)
from cadinterop.hdl.personalities import rename_module_signals
from cadinterop.hdl.simulator import FIFO, Simulator


@dataclass
class SensitivityFinding:
    """One always block with a simulation/synthesis interpretation gap."""

    block_index: int
    missing: Set[str] = field(default_factory=set)
    extra: Set[str] = field(default_factory=set)
    latch_targets: Set[str] = field(default_factory=set)

    @property
    def has_issue(self) -> bool:
        return bool(self.missing or self.latch_targets)


def _paths_assign(target: str, body: Sequence[Stmt]) -> bool:
    """True if every execution path through ``body`` assigns ``target``."""
    assigned = False
    for stmt in body:
        if isinstance(stmt, Assign):
            if stmt.target == target:
                assigned = True
        elif isinstance(stmt, If):
            then_assigns = _paths_assign(target, stmt.then_body)
            else_assigns = _paths_assign(target, stmt.else_body or [])
            if then_assigns and else_assigns:
                assigned = True
    return assigned


def analyze_block(block: AlwaysBlock, index: int = 0) -> SensitivityFinding:
    """Analyze one always block for sensitivity gaps and latch inference."""
    finding = SensitivityFinding(block_index=index)
    if block.sensitivity.is_edge_triggered():
        return finding  # sequential logic: list is the clock spec, not a gap
    reads = block.reads()
    declared = block.effective_sensitivity()
    if not block.sensitivity.star:
        finding.missing = reads - declared
        finding.extra = declared - reads
    for target in block.writes():
        if not _paths_assign(target, block.body):
            finding.latch_targets.add(target)
    return finding


def analyze(module: Module, log: Optional[IssueLog] = None) -> List[SensitivityFinding]:
    """All findings for a module, with diagnostics."""
    findings: List[SensitivityFinding] = []
    for index, block in enumerate(module.always_blocks):
        finding = analyze_block(block, index)
        findings.append(finding)
        if log is None:
            continue
        if finding.missing:
            log.add(
                Severity.WARNING, Category.SEMANTICS,
                f"{module.name}.always[{index}]",
                f"sensitivity list missing {sorted(finding.missing)}; simulation "
                "and synthesis will disagree",
                remedy="add the missing signals or use @(*)",
            )
        if finding.latch_targets:
            log.add(
                Severity.WARNING, Category.SEMANTICS,
                f"{module.name}.always[{index}]",
                f"not all paths assign {sorted(finding.latch_targets)}; synthesis "
                "infers latches ('may not be acceptable to your latch-based "
                "architecture!')",
                remedy="assign in every branch or add a default",
            )
    return findings


def synthesis_interpretation(module: Module) -> Module:
    """The module as a synthesizer reads it: full sensitivity on comb blocks.

    Returns a copy in which every level-sensitive always block is made
    sensitive to everything its body reads.
    """
    # Identity rename gives us a deep copy with the same structure.
    copy = rename_module_signals(module, {})
    for block in copy.always_blocks:
        if block.sensitivity.is_edge_triggered():
            continue
        block.sensitivity = Sensitivity(
            items=[SensItem(signal) for signal in sorted(block.reads())]
        )
    return copy


@dataclass
class MismatchReport:
    """Simulation-vs-synthesis divergence on observed signals."""

    diverging: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def mismatch(self) -> bool:
        return bool(self.diverging)


def simulation_synthesis_mismatch(
    module: Module,
    observed: Sequence[str],
    until: int = 1_000_000,
) -> MismatchReport:
    """Simulate the model as written vs as synthesis reads it; diff results.

    The stimulus is whatever ``initial`` blocks the module carries, so the
    comparison is apples-to-apples.
    """
    as_written = Simulator(rename_module_signals(module, {}), FIFO)
    as_written.run(until)
    as_synthesized = Simulator(synthesis_interpretation(module), FIFO)
    as_synthesized.run(until)
    report = MismatchReport()
    for signal in observed:
        written_value = as_written.values[signal]
        synthesized_value = as_synthesized.values[signal]
        if written_value != synthesized_value:
            report.diverging[signal] = (written_value, synthesized_value)
    return report
