"""Synthesizable-subset profiles and their intersection (paper Section 3.2).

"For each HDL and synthesis tool, there exists a subset of the HDL that the
synthesis tool can accept.  However, for a given HDL, there is no
standardization of the synthesizable subset across synthesis vendors...
Consequently, if a model will be transported between synthesis tools, it
should be written using only those HDL constructs contained in the
intersection of the vendors' subsets."

A :class:`SubsetProfile` is a vendor's accepted feature set over the
language-feature tags :func:`extract_features` derives from a module.
:func:`intersection` computes the paper's portability rule mechanically,
and :func:`portability_report` tells a user exactly which vendor rejects
which construct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from cadinterop.hdl.ast_nodes import (
    Assign,
    Binary,
    Cond,
    Const,
    Expr,
    If,
    Module,
    Stmt,
    Unary,
)

#: Every feature tag the extractor can produce.
ALL_FEATURES: FrozenSet[str] = frozenset(
    {
        "continuous-assign",
        "assign-delay",
        "gate-primitive",
        "gate-delay",
        "always-level",
        "always-star",
        "always-edge",
        "mixed-edge-level",
        "nonblocking-assign",
        "blocking-assign",
        "blocking-in-edge-block",
        "if-statement",
        "ternary",
        "case-equality",
        "tristate-z",
        "unknown-x",
        "initial-block",
        "multiple-drivers",
        "hierarchy",
    }
)


def _expr_features(expr: Expr, features: Set[str]) -> None:
    if isinstance(expr, Const):
        if expr.value == "z":
            features.add("tristate-z")
        elif expr.value == "x":
            features.add("unknown-x")
    elif isinstance(expr, Unary):
        _expr_features(expr.operand, features)
    elif isinstance(expr, Binary):
        if expr.op in ("===", "!=="):
            features.add("case-equality")
        _expr_features(expr.left, features)
        _expr_features(expr.right, features)
    elif isinstance(expr, Cond):
        features.add("ternary")
        _expr_features(expr.condition, features)
        _expr_features(expr.if_true, features)
        _expr_features(expr.if_false, features)


def _stmt_features(stmt: Stmt, features: Set[str], in_edge_block: bool) -> None:
    if isinstance(stmt, Assign):
        if stmt.nonblocking:
            features.add("nonblocking-assign")
        else:
            features.add("blocking-assign")
            if in_edge_block:
                features.add("blocking-in-edge-block")
        _expr_features(stmt.expr, features)
    elif isinstance(stmt, If):
        features.add("if-statement")
        _expr_features(stmt.condition, features)
        for inner in stmt.then_body:
            _stmt_features(inner, features, in_edge_block)
        for inner in stmt.else_body or []:
            _stmt_features(inner, features, in_edge_block)


def extract_features(module: Module) -> Set[str]:
    """The set of language features a module uses."""
    features: Set[str] = set()
    for assign in module.assigns:
        features.add("continuous-assign")
        if assign.delay:
            features.add("assign-delay")
        _expr_features(assign.expr, features)
    for gate in module.gates:
        features.add("gate-primitive")
        if gate.delay:
            features.add("gate-delay")
        if gate.gate in ("bufif0", "bufif1"):
            features.add("tristate-z")
    for block in module.always_blocks:
        edges = block.sensitivity.is_edge_triggered()
        levels = any(i.edge == "level" for i in block.sensitivity.items)
        if block.sensitivity.star:
            features.add("always-star")
        elif edges and levels:
            features.add("mixed-edge-level")
            features.add("always-edge")
        elif edges:
            features.add("always-edge")
        else:
            features.add("always-level")
        for stmt in block.body:
            _stmt_features(stmt, features, in_edge_block=edges)
    if module.initial_blocks:
        features.add("initial-block")
    for signal in module.nets:
        if len(module.drivers_of(signal)) > 1:
            features.add("multiple-drivers")
            break
    if module.instances:
        features.add("hierarchy")
    return features


@dataclass(frozen=True)
class SubsetProfile:
    """One synthesis vendor's accepted feature set."""

    name: str
    accepted: FrozenSet[str]
    notes: str = ""

    def __post_init__(self) -> None:
        unknown = self.accepted - ALL_FEATURES
        if unknown:
            raise ValueError(f"unknown feature tags: {sorted(unknown)}")

    def violations(self, module: Module) -> List[str]:
        """Features the module uses that this vendor rejects."""
        return sorted(extract_features(module) - self.accepted)

    def accepts(self, module: Module) -> bool:
        return not self.violations(module)


_COMMON = frozenset(
    {
        "continuous-assign",
        "gate-primitive",
        "always-edge",
        "nonblocking-assign",
        "blocking-assign",
        "if-statement",
        "ternary",
        "hierarchy",
    }
)

#: Vendor A: permissive RTL tool — accepts star sensitivity and level
#: blocks, tolerates blocking assigns in sequential blocks.
SYNTH_A = SubsetProfile(
    "synthA",
    _COMMON | frozenset({"always-star", "always-level", "blocking-in-edge-block"}),
    notes="permissive RTL subset; no tristate, no delays",
)

#: Vendor B: strict subset — rejects @(*), demands explicit lists, but
#: supports tristate primitives.
SYNTH_B = SubsetProfile(
    "synthB",
    _COMMON | frozenset({"always-level", "tristate-z", "gate-delay"}),
    notes="strict lists; tristate supported",
)

#: Vendor C: gate-oriented tool — no level-sensitive always at all.
SYNTH_C = SubsetProfile(
    "synthC",
    _COMMON | frozenset({"always-star", "tristate-z", "multiple-drivers"}),
    notes="comb logic must be @(*) or structural",
)

DEFAULT_VENDORS: Tuple[SubsetProfile, ...] = (SYNTH_A, SYNTH_B, SYNTH_C)


def intersection(profiles: Sequence[SubsetProfile]) -> FrozenSet[str]:
    """The portable feature set: constructs every vendor accepts."""
    if not profiles:
        raise ValueError("need at least one profile")
    result = profiles[0].accepted
    for profile in profiles[1:]:
        result = result & profile.accepted
    return result


@dataclass
class PortabilityReport:
    """Which vendors accept a module, and what blocks the rest."""

    module_name: str
    features: Set[str]
    per_vendor: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def portable(self) -> bool:
        return all(not violations for violations in self.per_vendor.values())

    @property
    def accepted_by(self) -> List[str]:
        return sorted(v for v, violations in self.per_vendor.items() if not violations)

    def blocking_features(self) -> Set[str]:
        blocking: Set[str] = set()
        for violations in self.per_vendor.values():
            blocking.update(violations)
        return blocking


def portability_report(
    module: Module, profiles: Sequence[SubsetProfile] = DEFAULT_VENDORS
) -> PortabilityReport:
    report = PortabilityReport(module.name, extract_features(module))
    for profile in profiles:
        report.per_vendor[profile.name] = profile.violations(module)
    return report


def written_in_intersection(
    module: Module, profiles: Sequence[SubsetProfile] = DEFAULT_VENDORS
) -> bool:
    """The paper's portability rule as a predicate."""
    return extract_features(module) <= intersection(profiles)
