"""Synthesis constraint files: three vendor dialects and migration.

Section 3.2 ("Environment"): "synthesis tools also differ in the
specification or contents of design constraint files, technology libraries,
report generation, and runtime control mechanisms...  These differences
make it nearly impossible to migrate a design synthesis description from
one synthesizer to another without significant effort."

The neutral model is :class:`ConstraintSet`; three vendor dialects
serialize different (overlapping but unequal) subsets of it, so migrating
constraints between tools loses exactly the features the target cannot
express — and :func:`migrate_constraints` reports every loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity


@dataclass
class ConstraintSet:
    """Vendor-neutral synthesis constraints."""

    clock_period: Optional[float] = None  # ns
    clock_port: Optional[str] = None
    input_delays: Dict[str, float] = field(default_factory=dict)
    output_delays: Dict[str, float] = field(default_factory=dict)
    max_fanout: Optional[int] = None
    max_transition: Optional[float] = None
    dont_touch: List[str] = field(default_factory=list)
    multicycle_paths: Dict[str, int] = field(default_factory=dict)  # endpoint -> cycles

    def feature_names(self) -> List[str]:
        used: List[str] = []
        if self.clock_period is not None:
            used.append("clock")
        if self.input_delays:
            used.append("input_delay")
        if self.output_delays:
            used.append("output_delay")
        if self.max_fanout is not None:
            used.append("max_fanout")
        if self.max_transition is not None:
            used.append("max_transition")
        if self.dont_touch:
            used.append("dont_touch")
        if self.multicycle_paths:
            used.append("multicycle")
        return used


class ConstraintDialect:
    """Base: which features a vendor's file format can express."""

    name = "abstract"
    supported = frozenset()

    def dump(self, constraints: ConstraintSet) -> str:  # pragma: no cover
        raise NotImplementedError

    def load(self, text: str) -> ConstraintSet:  # pragma: no cover
        raise NotImplementedError

    def unsupported(self, constraints: ConstraintSet) -> List[str]:
        return [f for f in constraints.feature_names() if f not in self.supported]


class DialectSdcLike(ConstraintDialect):
    """Tcl-command style: the richest of the three."""

    name = "sdc-like"
    supported = frozenset(
        {"clock", "input_delay", "output_delay", "max_fanout", "max_transition",
         "dont_touch", "multicycle"}
    )

    def dump(self, c: ConstraintSet) -> str:
        lines: List[str] = []
        if c.clock_period is not None:
            lines.append(f"create_clock -period {c.clock_period} [get_ports {c.clock_port}]")
        for port, delay in sorted(c.input_delays.items()):
            lines.append(f"set_input_delay {delay} [get_ports {port}]")
        for port, delay in sorted(c.output_delays.items()):
            lines.append(f"set_output_delay {delay} [get_ports {port}]")
        if c.max_fanout is not None:
            lines.append(f"set_max_fanout {c.max_fanout} [current_design]")
        if c.max_transition is not None:
            lines.append(f"set_max_transition {c.max_transition} [current_design]")
        for cell in c.dont_touch:
            lines.append(f"set_dont_touch [get_cells {cell}]")
        for endpoint, cycles in sorted(c.multicycle_paths.items()):
            lines.append(f"set_multicycle_path {cycles} -to [get_pins {endpoint}]")
        return "\n".join(lines) + "\n"

    def load(self, text: str) -> ConstraintSet:
        c = ConstraintSet()
        for line in text.splitlines():
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "create_clock":
                c.clock_period = float(parts[2])
                c.clock_port = parts[4].rstrip("]")
            elif parts[0] == "set_input_delay":
                c.input_delays[parts[3].rstrip("]")] = float(parts[1])
            elif parts[0] == "set_output_delay":
                c.output_delays[parts[3].rstrip("]")] = float(parts[1])
            elif parts[0] == "set_max_fanout":
                c.max_fanout = int(parts[1])
            elif parts[0] == "set_max_transition":
                c.max_transition = float(parts[1])
            elif parts[0] == "set_dont_touch":
                c.dont_touch.append(parts[2].rstrip("]"))
            elif parts[0] == "set_multicycle_path":
                c.multicycle_paths[parts[4].rstrip("]")] = int(parts[1])
        return c


class DialectIniLike(ConstraintDialect):
    """Key=value style: no multicycle, no dont_touch."""

    name = "ini-like"
    supported = frozenset({"clock", "input_delay", "output_delay", "max_fanout"})

    def dump(self, c: ConstraintSet) -> str:
        lines = ["[timing]"]
        if c.clock_period is not None:
            lines.append(f"clock = {c.clock_port} {c.clock_period}")
        for port, delay in sorted(c.input_delays.items()):
            lines.append(f"indelay.{port} = {delay}")
        for port, delay in sorted(c.output_delays.items()):
            lines.append(f"outdelay.{port} = {delay}")
        if c.max_fanout is not None:
            lines.append(f"maxfanout = {c.max_fanout}")
        return "\n".join(lines) + "\n"

    def load(self, text: str) -> ConstraintSet:
        c = ConstraintSet()
        for line in text.splitlines():
            if "=" not in line:
                continue
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if key == "clock":
                port, period = value.split()
                c.clock_port, c.clock_period = port, float(period)
            elif key.startswith("indelay."):
                c.input_delays[key[len("indelay.") :]] = float(value)
            elif key.startswith("outdelay."):
                c.output_delays[key[len("outdelay.") :]] = float(value)
            elif key == "maxfanout":
                c.max_fanout = int(value)
        return c


class DialectCsvLike(ConstraintDialect):
    """Tabular style: clock and IO delays only."""

    name = "csv-like"
    supported = frozenset({"clock", "input_delay", "output_delay"})

    def dump(self, c: ConstraintSet) -> str:
        rows = ["kind,name,value"]
        if c.clock_period is not None:
            rows.append(f"clock,{c.clock_port},{c.clock_period}")
        for port, delay in sorted(c.input_delays.items()):
            rows.append(f"indelay,{port},{delay}")
        for port, delay in sorted(c.output_delays.items()):
            rows.append(f"outdelay,{port},{delay}")
        return "\n".join(rows) + "\n"

    def load(self, text: str) -> ConstraintSet:
        c = ConstraintSet()
        for line in text.splitlines()[1:]:
            if not line.strip():
                continue
            kind, name, value = line.split(",")
            if kind == "clock":
                c.clock_port, c.clock_period = name, float(value)
            elif kind == "indelay":
                c.input_delays[name] = float(value)
            elif kind == "outdelay":
                c.output_delays[name] = float(value)
        return c


ALL_DIALECTS: Tuple[ConstraintDialect, ...] = (
    DialectSdcLike(),
    DialectIniLike(),
    DialectCsvLike(),
)


def migrate_constraints(
    constraints: ConstraintSet,
    source: ConstraintDialect,
    target: ConstraintDialect,
    log: Optional[IssueLog] = None,
) -> Tuple[ConstraintSet, List[str]]:
    """Round constraints through the target dialect, reporting what is lost."""
    lost = target.unsupported(constraints)
    if log is not None:
        for feature in lost:
            log.add(
                Severity.WARNING, Category.DATA_LOSS, feature,
                f"constraint feature not expressible in {target.name}",
                tool=target.name,
                remedy="re-enter the constraint manually in the target tool",
            )
    migrated = target.load(target.dump(constraints))
    return migrated, lost
