"""Synthesis interoperability: subsets, sensitivity semantics, netlisting,
constraint dialects (paper Section 3.2)."""

from cadinterop.hdl.synth.constraints import (
    ALL_DIALECTS,
    ConstraintDialect,
    ConstraintSet,
    DialectCsvLike,
    DialectIniLike,
    DialectSdcLike,
    migrate_constraints,
)
from cadinterop.hdl.synth.sensitivity import (
    MismatchReport,
    SensitivityFinding,
    analyze,
    analyze_block,
    simulation_synthesis_mismatch,
    synthesis_interpretation,
)
from cadinterop.hdl.synth.subset import (
    ALL_FEATURES,
    DEFAULT_VENDORS,
    PortabilityReport,
    SubsetProfile,
    SYNTH_A,
    SYNTH_B,
    SYNTH_C,
    extract_features,
    intersection,
    portability_report,
    written_in_intersection,
)
from cadinterop.hdl.synth.synthesize import (
    SynthesisError,
    SynthesisResult,
    synthesize,
)

__all__ = [
    "ALL_DIALECTS",
    "ALL_FEATURES",
    "ConstraintDialect",
    "ConstraintSet",
    "DEFAULT_VENDORS",
    "DialectCsvLike",
    "DialectIniLike",
    "DialectSdcLike",
    "MismatchReport",
    "PortabilityReport",
    "SYNTH_A",
    "SYNTH_B",
    "SYNTH_C",
    "SensitivityFinding",
    "SubsetProfile",
    "SynthesisError",
    "SynthesisResult",
    "analyze",
    "analyze_block",
    "extract_features",
    "intersection",
    "migrate_constraints",
    "portability_report",
    "simulation_synthesis_mismatch",
    "synthesis_interpretation",
    "synthesize",
    "written_in_intersection",
]
