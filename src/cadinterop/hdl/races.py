"""Race detection by personality-ensemble simulation (paper Section 3.1).

"Typically, if different simulators give different results when simulating
the same model, there is a race condition in the model being simulated, and
the potential for a bug in the real hardware.  However, determining whether
a discrepancy between the simulations is due to a model race condition or
to a simulator bug can be troublesome."

:func:`detect_races` runs one model under an ensemble of scheduling
personalities and compares final values and waveforms of the observed
signals.  Divergence across *legal* orderings is, by construction, a model
race — the kernel itself is shared, so a simulator bug is ruled out.  The
report pinpoints which signals diverge and under which personality pair,
turning the paper's "troublesome" determination into a mechanical one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.hdl.ast_nodes import Module
from cadinterop.hdl.compile import compile_model
from cadinterop.hdl.personalities import (
    DEFAULT_ENSEMBLE,
    SimulatorPersonality,
    run_personality,
)
from cadinterop.hdl.simulator import DEFAULT_KERNEL, KERNELS


@dataclass
class SignalDivergence:
    """One signal that ends (or evolves) differently across personalities."""

    signal: str
    final_values: Dict[str, str]  # personality name -> final value
    waveform_mismatch: bool

    @property
    def outcomes(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.final_values.values())))


@dataclass
class RaceReport:
    """Result of an ensemble run."""

    module_name: str
    personalities: List[str]
    divergences: List[SignalDivergence] = field(default_factory=list)
    log: IssueLog = field(default_factory=IssueLog)

    @property
    def has_race(self) -> bool:
        return bool(self.divergences)

    @property
    def racy_signals(self) -> List[str]:
        return [d.signal for d in self.divergences]

    def summary(self) -> str:
        if not self.has_race:
            return (
                f"{self.module_name}: no divergence across "
                f"{len(self.personalities)} personalities (race-free)"
            )
        return (
            f"{self.module_name}: RACE — {len(self.divergences)} signal(s) diverge "
            f"across personalities: {', '.join(self.racy_signals)}"
        )


def detect_races(
    module: Module,
    observed: Optional[Sequence[str]] = None,
    personalities: Sequence[SimulatorPersonality] = DEFAULT_ENSEMBLE,
    until: int = 1_000_000,
    kernel: str = DEFAULT_KERNEL,
) -> RaceReport:
    """Simulate under every personality and compare observed signals.

    ``observed`` defaults to every declared signal.  Both final values and
    full waveforms are compared: a transient glitch that converges is still
    a divergence (some downstream tool may sample mid-glitch).

    On the (default) compiled kernel the module is lowered to a
    :class:`~cadinterop.hdl.compile.CompiledModel` exactly once and every
    personality run is a cheap ``Simulator(model, policy)`` spawn;
    ``kernel="interp"`` keeps the reference interpreter for differential
    checks.
    """
    if len(personalities) < 2:
        raise ValueError("need at least two personalities to compare")
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    signals = list(observed) if observed is not None else list(module.nets)
    report = RaceReport(module.name, [p.name for p in personalities])

    compiled = compile_model(module) if kernel == "compiled" else None
    finals: Dict[str, Dict[str, str]] = {s: {} for s in signals}
    waves: Dict[str, Dict[str, List[Tuple[int, str]]]] = {s: {} for s in signals}
    for personality in personalities:
        sim = run_personality(
            module, personality, until=until, trace=signals,
            kernel=kernel, compiled=compiled,
        )
        for signal in signals:
            finals[signal][personality.name] = sim.value(signal)
            waves[signal][personality.name] = sim.waveform(signal)

    for signal in signals:
        final_set = set(finals[signal].values())
        wave_set = {tuple(w) for w in waves[signal].values()}
        if len(final_set) > 1 or len(wave_set) > 1:
            divergence = SignalDivergence(
                signal=signal,
                final_values=dict(finals[signal]),
                waveform_mismatch=len(wave_set) > 1,
            )
            report.divergences.append(divergence)
            report.log.add(
                Severity.ERROR, Category.SEMANTICS, signal,
                f"simulation outcome depends on event ordering: "
                f"{finals[signal]}",
                remedy="model race condition — rewrite with nonblocking "
                "assignments or explicit ordering; potential bug in the real hardware",
            )
    if not report.divergences:
        report.log.add(
            Severity.INFO, Category.SEMANTICS, module.name,
            f"deterministic across {len(personalities)} legal event orderings",
        )
    return report
