"""Timing checks with backward-compatibility version semantics.

Section 3.1 ("Backward compatibility"): "Simulator timing models can change
as new versions are released, causing simulation timing results to drift
unless backwards compatibility is specifically addressed.  For example,
Verilog-XL ... supports the '+pre_16a_path' command line option.  This
option forces simulators with version 1.6a or later to use the same timing
check behavior as was used prior to the 1.6a version."

The modelled semantic change (representative of the real 1.6a drift): how a
setup/hold window treats an event landing *exactly on* the window boundary.

* pre-1.6a behavior: boundary-equal events do **not** violate (strict
  inequality — a data edge exactly ``limit`` before the clock passes).
* 1.6a-and-later behavior: boundary-equal events **do** violate
  (non-strict inequality).

A model calibrated so data arrives exactly at the limit is therefore clean
on the old version and failing on the new one — unless ``pre_16a_path``
pins the old semantics, which is precisely what users did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

Waveform = Sequence[Tuple[int, str]]


@dataclass(frozen=True)
class SimulatorVersion:
    """A simulator release with its timing-check semantics."""

    name: str
    boundary_violates: bool  # the 1.6a change

    def effective(self, pre_16a_path: bool) -> "SimulatorVersion":
        """Apply the compatibility switch: new versions revert to old rules."""
        if pre_16a_path and self.boundary_violates:
            return SimulatorVersion(self.name + "+pre_16a_path", False)
        return self


V15B = SimulatorVersion("1.5b", boundary_violates=False)
V16A = SimulatorVersion("1.6a", boundary_violates=True)
V20 = SimulatorVersion("2.0", boundary_violates=True)

ALL_VERSIONS: Tuple[SimulatorVersion, ...] = (V15B, V16A, V20)


@dataclass(frozen=True)
class TimingCheck:
    """A $setup/$hold/$width-style check between two signals."""

    kind: str  # "setup", "hold", "width"
    data: str
    reference: str  # clock for setup/hold; ignored for width
    limit: int
    reference_edge: str = "posedge"

    KINDS = ("setup", "hold", "width")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown timing check kind {self.kind!r}")
        if self.limit <= 0:
            raise ValueError("timing limit must be positive")


@dataclass
class Violation:
    check: TimingCheck
    time: int
    observed: int
    message: str


def _edges(waveform: Waveform, edge: str) -> List[int]:
    times: List[int] = []
    previous = "x"
    for time, value in waveform:
        if edge == "posedge" and value == "1" and previous != "1":
            times.append(time)
        elif edge == "negedge" and value == "0" and previous != "0":
            times.append(time)
        elif edge == "any" and value != previous:
            times.append(time)
        previous = value
    return times


def _changes(waveform: Waveform) -> List[int]:
    return _edges(waveform, "any")


class TimingChecker:
    """Evaluates timing checks against recorded waveforms for one version."""

    def __init__(self, version: SimulatorVersion, pre_16a_path: bool = False) -> None:
        self.version = version.effective(pre_16a_path)

    def _violates(self, observed: int, limit: int) -> bool:
        if self.version.boundary_violates:
            return observed <= limit and observed >= 0
        return observed < limit and observed >= 0

    def check(
        self,
        check: TimingCheck,
        waveforms: Dict[str, Waveform],
    ) -> List[Violation]:
        data_wave = waveforms[check.data]
        violations: List[Violation] = []
        if check.kind == "width":
            times = _changes(data_wave)
            for first, second in zip(times, times[1:]):
                width = second - first
                if self._violates(width, check.limit):
                    violations.append(
                        Violation(
                            check, second, width,
                            f"pulse width {width} on {check.data!r} "
                            f"(limit {check.limit}, {self.version.name})",
                        )
                    )
            return violations

        reference_wave = waveforms[check.reference]
        clock_times = _edges(reference_wave, check.reference_edge)
        data_times = _changes(data_wave)
        for clock_time in clock_times:
            if check.kind == "setup":
                # Data changes in the window [clock - limit, clock).
                candidates = [t for t in data_times if t <= clock_time]
                if not candidates:
                    continue
                margin = clock_time - max(candidates)
                if self._violates(margin, check.limit):
                    violations.append(
                        Violation(
                            check, clock_time, margin,
                            f"setup {margin} < limit {check.limit} on {check.data!r} "
                            f"@ {check.reference!r} edge t={clock_time} "
                            f"({self.version.name})",
                        )
                    )
            else:  # hold
                candidates = [t for t in data_times if t >= clock_time]
                if not candidates:
                    continue
                margin = min(candidates) - clock_time
                if self._violates(margin, check.limit):
                    violations.append(
                        Violation(
                            check, clock_time, margin,
                            f"hold {margin} < limit {check.limit} on {check.data!r} "
                            f"@ {check.reference!r} edge t={clock_time} "
                            f"({self.version.name})",
                        )
                    )
        return violations

    def check_all(
        self,
        checks: Sequence[TimingCheck],
        waveforms: Dict[str, Waveform],
    ) -> List[Violation]:
        violations: List[Violation] = []
        for check in checks:
            violations.extend(self.check(check, waveforms))
        return violations


@dataclass
class DriftReport:
    """Timing results per simulator version, for the drift experiment."""

    per_version: Dict[str, int] = field(default_factory=dict)

    @property
    def drifts(self) -> bool:
        return len(set(self.per_version.values())) > 1


def version_drift(
    checks: Sequence[TimingCheck],
    waveforms: Dict[str, Waveform],
    versions: Sequence[SimulatorVersion] = ALL_VERSIONS,
    pre_16a_path: bool = False,
) -> DriftReport:
    """Violation counts for each version, with or without the compat flag.

    Without the flag, results drift across the 1.6a boundary; with it,
    every version reproduces the pre-1.6a counts.
    """
    report = DriftReport()
    for version in versions:
        checker = TimingChecker(version, pre_16a_path=pre_16a_path)
        report.per_version[version.name] = len(checker.check_all(checks, waveforms))
    return report
