"""Cell abstract views: what every P&R tool needs, each in its own way.

Section 4 ("Cell definition"): "All P&R tools require an abstract
view/definition of the design cells or blocks that they are to assemble.
These abstract views consist of many parts including cell/block boundaries,
site types, legal orientations, a complex (and sometimes comprehensive) set
of pin data, and routing blockages...  The parts of a pin are: a name,
location, shape, layer, and a set of connection properties.  The connection
properties include access direction, multiple connect, equivalent connect,
must connect, and connect by abutment.  Each P&R tool supports a slightly
different set of input data requirements.  For instance, some tools read
access direction as a property, while others try to determine it from the
routing blockages."

Both access-direction conventions are implemented: explicit properties on
:class:`CellPin`, and :func:`derive_access_from_blockages`, which infers
the directions a router can approach a pin from by checking which sides of
the pin shape are clear of blockage metal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from cadinterop.common.geometry import Orientation, Point, Rect

#: Router approach directions.
ACCESS_DIRECTIONS: Tuple[str, ...] = ("north", "south", "east", "west")


@dataclass(frozen=True)
class ConnectionProps:
    """The paper's five connection properties."""

    access: Optional[FrozenSet[str]] = None  # None = not specified (derive)
    multiple_connect: bool = False
    equivalent_group: Optional[str] = None  # pins in a group are interchangeable
    must_connect: bool = False
    connect_by_abutment: bool = False

    def __post_init__(self) -> None:
        if self.access is not None:
            bad = set(self.access) - set(ACCESS_DIRECTIONS)
            if bad:
                raise ValueError(f"bad access directions {sorted(bad)}")


@dataclass(frozen=True)
class PinShape:
    """One metal rectangle of a pin."""

    layer: str
    rect: Rect


@dataclass
class CellPin:
    """A pin of a cell abstract."""

    name: str
    shapes: List[PinShape]
    props: ConnectionProps = field(default_factory=ConnectionProps)
    use: str = "signal"  # signal / power / ground / clock

    USES = ("signal", "power", "ground", "clock")

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError(f"pin {self.name!r} needs at least one shape")
        if self.use not in self.USES:
            raise ValueError(f"bad pin use {self.use!r}")

    def bounding_box(self) -> Rect:
        box = self.shapes[0].rect
        for shape in self.shapes[1:]:
            box = box.union(shape.rect)
        return box


@dataclass(frozen=True)
class Blockage:
    """A routing obstruction inside the cell."""

    layer: str
    rect: Rect


@dataclass
class CellAbstract:
    """The abstract (LEF-like) view of one cell or block."""

    name: str
    width: int
    height: int
    site: str = "core"
    kind: str = "stdcell"  # stdcell / macro / pad
    legal_orientations: Tuple[Orientation, ...] = (
        Orientation.R0, Orientation.MY,
    )
    pins: List[CellPin] = field(default_factory=list)
    blockages: List[Blockage] = field(default_factory=list)

    KINDS = ("stdcell", "macro", "pad")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"bad cell kind {self.kind!r}")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("cell dimensions must be positive")
        seen: Set[str] = set()
        for pin in self.pins:
            if pin.name in seen:
                raise ValueError(f"duplicate pin {pin.name!r} on cell {self.name!r}")
            seen.add(pin.name)

    @property
    def boundary(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def pin(self, name: str) -> CellPin:
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"cell {self.name!r} has no pin {name!r}")

    def has_pin(self, name: str) -> bool:
        return any(pin.name == name for pin in self.pins)

    def pin_names(self) -> List[str]:
        return [pin.name for pin in self.pins]

    def equivalent_groups(self) -> Dict[str, List[str]]:
        groups: Dict[str, List[str]] = {}
        for pin in self.pins:
            if pin.props.equivalent_group:
                groups.setdefault(pin.props.equivalent_group, []).append(pin.name)
        return groups


def derive_access_from_blockages(cell: CellAbstract, pin_name: str, clearance: int = 2) -> FrozenSet[str]:
    """Infer access directions by probing for blockage metal around the pin.

    For each side of the pin's bounding box, a probe strip ``clearance``
    units deep is tested against same-layer blockages and the cell
    boundary; a clear strip means the router can approach from that side.
    This is the "determine it from the routing blockages" convention, and
    it is *more conservative* than an explicit property — the mismatch the
    backplane must paper over.
    """
    pin = cell.pin(pin_name)
    box = pin.bounding_box()
    layers = {shape.layer for shape in pin.shapes}
    boundary = cell.boundary

    probes = {
        "north": Rect(box.x1, box.y2, box.x2, box.y2 + clearance),
        "south": Rect(box.x1, box.y1 - clearance, box.x2, box.y1),
        "east": Rect(box.x2, box.y1, box.x2 + clearance, box.y2),
        "west": Rect(box.x1 - clearance, box.y1, box.x1, box.y2),
    }
    clear: Set[str] = set()
    for direction, probe in probes.items():
        if not boundary.contains_rect(probe):
            # Probing past the cell edge: approach is from outside, which
            # is always legal for boundary pins.
            clear.add(direction)
            continue
        blocked = any(
            blockage.layer in layers and blockage.rect.intersects(probe)
            for blockage in cell.blockages
        )
        if not blocked:
            clear.add(direction)
    return frozenset(clear)


def effective_access(cell: CellAbstract, pin_name: str, mode: str) -> FrozenSet[str]:
    """Access directions under a tool's convention.

    ``mode`` is ``"property"`` (use the explicit property, fall back to
    derivation when absent) or ``"derived"`` (always derive — the tool
    ignores the property even when present).
    """
    if mode not in ("property", "derived"):
        raise ValueError(f"bad access mode {mode!r}")
    pin = cell.pin(pin_name)
    if mode == "property" and pin.props.access is not None:
        return pin.props.access
    return derive_access_from_blockages(cell, pin_name)


class CellLibrary:
    """A named set of cell abstracts."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._cells: Dict[str, CellAbstract] = {}

    def add(self, cell: CellAbstract) -> CellAbstract:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> CellAbstract:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def cells(self) -> List[CellAbstract]:
        return list(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells
