"""Synthetic physical-design fixtures for tests, examples, and benchmarks.

Stand-ins for the designs the paper's P&R discussion assumes: a small
standard-cell library whose pins carry the full connection-property
vocabulary (including one cell whose access must be derived from
blockages), a parametric random netlist with one latency-critical bus net,
and a floorplan carrying every Section 4 intent class — aspect-ratio'd
blocks, literal and general pin constraints, keepouts, power/clock
strategies, and width/spacing/shield net rules.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from cadinterop.common.geometry import Orientation, Point, Rect
from cadinterop.pnr.cells import (
    Blockage,
    CellAbstract,
    CellLibrary,
    CellPin,
    ConnectionProps,
    PinShape,
)
from cadinterop.pnr.design import PnRDesign, PnRInstance, inst_terminal, pad_terminal
from cadinterop.pnr.floorplan import (
    Block,
    Floorplan,
    GlobalNetStrategy,
    Keepout,
    NetRule,
    PinConstraint,
)
from cadinterop.pnr.tech import Technology, generic_two_layer_tech


def build_cell_library() -> CellLibrary:
    """A four-cell library exercising every pin-data variant."""
    library = CellLibrary("stdlib")
    library.add(
        CellAbstract(
            name="inv", width=10, height=40,
            pins=[
                CellPin(
                    "A",
                    [PinShape("M1", Rect(0, 16, 4, 24))],
                    ConnectionProps(access=frozenset({"west", "north"})),
                ),
                CellPin(
                    "Y",
                    [PinShape("M1", Rect(6, 16, 10, 24))],
                    ConnectionProps(access=frozenset({"east"})),
                ),
            ],
        )
    )
    library.add(
        CellAbstract(
            name="nand2", width=20, height=40,
            pins=[
                CellPin(
                    "A",
                    [PinShape("M1", Rect(0, 24, 4, 32))],
                    ConnectionProps(
                        access=frozenset({"west"}),
                        equivalent_group="inputs",
                    ),
                ),
                CellPin(
                    "B",
                    [PinShape("M1", Rect(0, 8, 4, 16))],
                    ConnectionProps(
                        access=frozenset({"west"}),
                        equivalent_group="inputs",
                    ),
                ),
                CellPin(
                    "Y",
                    [PinShape("M1", Rect(16, 16, 20, 24))],
                    ConnectionProps(access=frozenset({"east"}), multiple_connect=True),
                ),
            ],
        )
    )
    # A cell with NO access property: tools must derive it; the blockage
    # on the north side forces derivation to differ from optimistic reads.
    library.add(
        CellAbstract(
            name="dff", width=30, height=40,
            pins=[
                CellPin("D", [PinShape("M1", Rect(0, 16, 4, 24))], ConnectionProps()),
                CellPin("CK", [PinShape("M1", Rect(12, 0, 18, 4))],
                        ConnectionProps(must_connect=True), use="clock"),
                CellPin("Q", [PinShape("M1", Rect(26, 16, 30, 24))], ConnectionProps()),
            ],
            blockages=[Blockage("M1", Rect(0, 26, 30, 38))],
        )
    )
    library.add(
        CellAbstract(
            name="filler", width=10, height=40,
            pins=[
                CellPin(
                    "VDD",
                    [PinShape("M1", Rect(0, 36, 10, 40))],
                    ConnectionProps(connect_by_abutment=True),
                    use="power",
                ),
            ],
        )
    )
    return library


def build_floorplan(die_size: int = 600) -> Floorplan:
    """A floorplan using every Section 4 intent class."""
    floorplan = Floorplan("demo", Rect(0, 0, die_size, die_size))
    ram = Block("ram0", area=160 * 160, aspect_ratio=1.0, location=Point(10, 10))
    ram.pin_constraints.append(PinConstraint("dout", "east", offset=40))
    floorplan.add_block(ram)
    floorplan.add_keepout(Keepout(Rect(10, 10, 170, 170)))  # placement keepout over the RAM
    floorplan.add_keepout(
        Keepout(Rect(die_size - 80, die_size - 80, die_size - 10, die_size - 10), layers=("M1", "M2"))
    )
    floorplan.add_strategy(
        GlobalNetStrategy("VDD", "power", "ring", layer="M1", width=4)
    )
    floorplan.add_strategy(
        GlobalNetStrategy("CLK", "clock", "spine", layer="M2", width=2, shielded=True)
    )
    floorplan.add_pin_constraint(PinConstraint("in0", "west", offset=300))
    floorplan.add_pin_constraint(PinConstraint("out0", "east"))
    # The critical bus: double width, double spacing, shielded.
    floorplan.add_net_rule(NetRule("crit", width_tracks=2, spacing_tracks=2, shield=True))
    return floorplan


def generate_design(
    library: CellLibrary,
    cells: int = 24,
    seed: int = 7,
) -> Tuple[PnRDesign, Dict[str, Point]]:
    """A random-but-reproducible netlist with a critical net named 'crit'.

    Returns the design plus die-pad positions for the router.
    """
    rng = random.Random(seed)
    design = PnRDesign(f"rand{cells}")
    kinds = ["inv", "nand2", "dff"]
    for index in range(cells):
        cell = library.cell(kinds[index % len(kinds)])
        design.add_instance(PnRInstance(f"u{index}", cell))

    instances = list(design.instances.values())
    # Chain nets: each cell's output to the next cell's first input; nand2
    # B pins fan out from a random chain net (each output pin drives
    # exactly one net, as in a real netlist).
    out_pin = {"inv": "Y", "nand2": "Y", "dff": "Q"}
    in_pin = {"inv": "A", "nand2": "A", "dff": "D"}
    chain_terminals = {
        f"n{index}": [
            inst_terminal(instances[index].name, out_pin[instances[index].cell.name]),
            inst_terminal(instances[index + 1].name, in_pin[instances[index + 1].cell.name]),
        ]
        for index in range(cells - 1)
    }
    nand_instances = [i for i in instances if i.cell.name == "nand2"]
    chain_names = sorted(chain_terminals)
    for nand in nand_instances:
        target = rng.choice(chain_names)
        already = {(k, n) for k, n, _p in chain_terminals[target]}
        if ("inst", nand.name) not in already:
            chain_terminals[target].append(inst_terminal(nand.name, "B"))
    for name, terminals in chain_terminals.items():
        design.add_net(name, terminals)
    # Clock net to every dff.
    dffs = [i for i in instances if i.cell.name == "dff"]
    if dffs:
        design.add_net(
            "CLK",
            [pad_terminal("clkpad")] + [inst_terminal(d.name, "CK") for d in dffs],
        )
    # The critical net: pad to the first and last cells (long route).
    design.add_net(
        "crit",
        [
            pad_terminal("in0"),
            inst_terminal(instances[0].name, in_pin[instances[0].cell.name]),
        ],
    )
    design.add_net(
        "critret",
        [
            inst_terminal(instances[-1].name, out_pin[instances[-1].cell.name]),
            pad_terminal("out0"),
        ],
    )

    pads = {
        "in0": Point(0, 300),
        "out0": Point(599, 300),
        "clkpad": Point(300, 599),
    }
    return design, pads


def build_bus_scenario(
    die_size: int = 400,
    victim_y: int = 200,
    aggressor_offsets: Tuple[int, ...] = (5, 25),
) -> Tuple[Floorplan, PnRDesign, Dict[str, Point]]:
    """The Section 4 interconnect-topology experiment, distilled.

    A victim bus net ``crit`` crosses the die west to east; aggressor nets
    run parallel a few tracks away.  The floorplan gives ``crit`` double
    width, double spacing, and a shield.  A tool that honors the rules
    keeps the aggressors off and grounds the field; a tool that drops them
    lets aggressors pack against the victim — the coupling difference is
    the measurable cost of the dialect gap (experiment E11).
    """
    floorplan = Floorplan("bus", Rect(0, 0, die_size, die_size))
    floorplan.add_net_rule(NetRule("crit", width_tracks=2, spacing_tracks=2, shield=True))

    design = PnRDesign("bus")
    pads: Dict[str, Point] = {}
    design.add_net("crit", [pad_terminal("vw"), pad_terminal("ve")])
    pads["vw"] = Point(0, victim_y)
    pads["ve"] = Point(die_size - 5, victim_y)
    for index, offset in enumerate(aggressor_offsets):
        name = f"aggr{index}"
        design.add_net(name, [pad_terminal(f"aw{index}"), pad_terminal(f"ae{index}")])
        pads[f"aw{index}"] = Point(0, victim_y + offset)
        pads[f"ae{index}"] = Point(die_size - 5, victim_y + offset)
    return floorplan, design, pads
