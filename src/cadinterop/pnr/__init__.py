"""IC floorplanning and place-and-route interoperability (paper Section 4).

Cell abstracts with the full pin-data vocabulary (including blockage-derived
access directions), a floorplanner with per-net topology rules, a grid
router that honors them, parasitics extraction, three P&R tool dialects
with unequal feature matrices, and the backplane that conveys neutral
intent to each — logging exactly what every tool drops.
"""

from cadinterop.pnr.backplane import FlowResult, ToolInput, convey, run_flow
from cadinterop.pnr.cells import (
    ACCESS_DIRECTIONS,
    Blockage,
    CellAbstract,
    CellLibrary,
    CellPin,
    ConnectionProps,
    PinShape,
    derive_access_from_blockages,
    effective_access,
)
from cadinterop.pnr.design import (
    PnRDesign,
    PnRInstance,
    inst_terminal,
    pad_terminal,
)
from cadinterop.pnr.dialects import (
    ALL_TOOLS,
    PnRDialect,
    TOOL_P,
    TOOL_Q,
    TOOL_R,
    feature_matrix,
    universally_supported,
)
from cadinterop.pnr.floorplan import (
    Block,
    Floorplan,
    GlobalNetStrategy,
    Keepout,
    NetRule,
    PinConstraint,
)
from cadinterop.pnr.parasitics import (
    NetParasitics,
    ParasiticReport,
    TopologyComparison,
    extract,
)
from cadinterop.pnr.placement import PlacementResult, RowPlacer, hpwl
from cadinterop.pnr.routing import GridRouter, RoutedNet, RoutingResult, SHIELD
from cadinterop.pnr.tech import Layer, Site, Technology, generic_two_layer_tech

__all__ = [
    "ACCESS_DIRECTIONS",
    "ALL_TOOLS",
    "Block",
    "Blockage",
    "CellAbstract",
    "CellLibrary",
    "CellPin",
    "ConnectionProps",
    "Floorplan",
    "FlowResult",
    "GlobalNetStrategy",
    "GridRouter",
    "Keepout",
    "Layer",
    "NetParasitics",
    "NetRule",
    "ParasiticReport",
    "PinConstraint",
    "PinShape",
    "PlacementResult",
    "PnRDesign",
    "PnRDialect",
    "PnRInstance",
    "RoutedNet",
    "RoutingResult",
    "RowPlacer",
    "SHIELD",
    "Site",
    "TOOL_P",
    "TOOL_Q",
    "TOOL_R",
    "Technology",
    "ToolInput",
    "TopologyComparison",
    "convey",
    "derive_access_from_blockages",
    "effective_access",
    "extract",
    "feature_matrix",
    "generic_two_layer_tech",
    "hpwl",
    "inst_terminal",
    "pad_terminal",
    "run_flow",
    "universally_supported",
]
