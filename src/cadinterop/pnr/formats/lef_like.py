"""LEF-like cell abstract exchange format (reader/writer).

A line-oriented synthetic stand-in for the industry's cell-abstract
exchange files.  Deliberately complete for the model in
:mod:`cadinterop.pnr.cells` — boundary, site, legal orientations, pin
shapes, access-direction properties, the four connection properties, and
blockages — so round-tripping a library through text exercises the same
code paths real flows do.
"""

from __future__ import annotations

from typing import List, Optional

from cadinterop.common.geometry import Orientation, Rect
from cadinterop.pnr.cells import (
    Blockage,
    CellAbstract,
    CellLibrary,
    CellPin,
    ConnectionProps,
    PinShape,
)


class LefFormatError(ValueError):
    """Malformed LEF-like text."""


def dump_library(library: CellLibrary) -> str:
    lines = [f"LIBRARY {library.name}"]
    for cell in library.cells():
        lines.append(
            f"CELL {cell.name} {cell.width} {cell.height} {cell.site} {cell.kind}"
        )
        lines.append("ORIENT " + " ".join(o.value for o in cell.legal_orientations))
        for pin in cell.pins:
            lines.append(f"PIN {pin.name} {pin.use}")
            for shape in pin.shapes:
                rect = shape.rect
                lines.append(f"SHAPE {shape.layer} {rect.x1} {rect.y1} {rect.x2} {rect.y2}")
            props = pin.props
            if props.access is not None:
                lines.append("ACCESS " + " ".join(sorted(props.access)))
            flags = []
            if props.multiple_connect:
                flags.append("multiple")
            if props.must_connect:
                flags.append("must")
            if props.connect_by_abutment:
                flags.append("abut")
            if flags:
                lines.append("CONN " + " ".join(flags))
            if props.equivalent_group:
                lines.append(f"EQUIV {props.equivalent_group}")
            lines.append("ENDPIN")
        for blockage in cell.blockages:
            rect = blockage.rect
            lines.append(f"BLOCK {blockage.layer} {rect.x1} {rect.y1} {rect.x2} {rect.y2}")
        lines.append("ENDCELL")
    lines.append("ENDLIBRARY")
    return "\n".join(lines) + "\n"


def load_library(text: str) -> CellLibrary:
    lines = [l.strip() for l in text.splitlines() if l.strip() and not l.startswith("#")]
    if not lines or not lines[0].startswith("LIBRARY "):
        raise LefFormatError("missing LIBRARY header")
    library = CellLibrary(lines[0].split()[1])
    index = 1
    while index < len(lines):
        line = lines[index]
        if line == "ENDLIBRARY":
            return library
        fields = line.split()
        if fields[0] != "CELL":
            raise LefFormatError(f"expected CELL, got {line!r}")
        name = fields[1]
        width, height = int(fields[2]), int(fields[3])
        site, kind = fields[4], fields[5]
        orientations: List[Orientation] = [Orientation.R0]
        pins: List[CellPin] = []
        blockages: List[Blockage] = []
        index += 1
        while index < len(lines) and lines[index] != "ENDCELL":
            fields = lines[index].split()
            keyword = fields[0]
            if keyword == "ORIENT":
                orientations = [Orientation(v) for v in fields[1:]]
                index += 1
            elif keyword == "PIN":
                pin_name, use = fields[1], fields[2]
                shapes: List[PinShape] = []
                access = None
                multiple = must = abut = False
                equivalent: Optional[str] = None
                index += 1
                while index < len(lines) and lines[index] != "ENDPIN":
                    sub = lines[index].split()
                    if sub[0] == "SHAPE":
                        shapes.append(
                            PinShape(sub[1], Rect(int(sub[2]), int(sub[3]), int(sub[4]), int(sub[5])))
                        )
                    elif sub[0] == "ACCESS":
                        access = frozenset(sub[1:])
                    elif sub[0] == "CONN":
                        multiple = "multiple" in sub
                        must = "must" in sub
                        abut = "abut" in sub
                    elif sub[0] == "EQUIV":
                        equivalent = sub[1]
                    else:
                        raise LefFormatError(f"unexpected pin record {lines[index]!r}")
                    index += 1
                if index >= len(lines):
                    raise LefFormatError("unterminated PIN")
                index += 1  # skip ENDPIN
                pins.append(
                    CellPin(
                        pin_name,
                        shapes,
                        ConnectionProps(
                            access=access,
                            multiple_connect=multiple,
                            equivalent_group=equivalent,
                            must_connect=must,
                            connect_by_abutment=abut,
                        ),
                        use=use,
                    )
                )
            elif keyword == "BLOCK":
                blockages.append(
                    Blockage(fields[1], Rect(int(fields[2]), int(fields[3]), int(fields[4]), int(fields[5])))
                )
                index += 1
            else:
                raise LefFormatError(f"unexpected cell record {lines[index]!r}")
        if index >= len(lines):
            raise LefFormatError("unterminated CELL")
        index += 1  # skip ENDCELL
        library.add(
            CellAbstract(
                name=name, width=width, height=height, site=site, kind=kind,
                legal_orientations=tuple(orientations), pins=pins, blockages=blockages,
            )
        )
    raise LefFormatError("missing ENDLIBRARY")
