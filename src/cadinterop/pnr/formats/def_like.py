"""DEF-like placed-design exchange format (reader/writer)."""

from __future__ import annotations

from typing import Dict, List

from cadinterop.common.geometry import Orientation, Point, Rect
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.design import PnRDesign, PnRInstance, Terminal


class DefFormatError(ValueError):
    """Malformed DEF-like text."""


def dump_design(design: PnRDesign, die: Rect) -> str:
    lines = [f"DESIGN {design.name}", f"DIE {die.x1} {die.y1} {die.x2} {die.y2}"]
    for instance in design.instances.values():
        if instance.placed:
            lines.append(
                f"INST {instance.name} {instance.cell.name} PLACED "
                f"{instance.location.x} {instance.location.y} {instance.orientation.value}"
            )
        else:
            lines.append(f"INST {instance.name} {instance.cell.name} UNPLACED")
    for net, terminals in design.nets.items():
        parts = [f"NET {net}"]
        for kind, name, pin in terminals:
            if kind == "inst":
                parts.append(f"( {name} {pin} )")
            else:
                parts.append(f"( PAD {name} )")
        lines.append(" ".join(parts))
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def load_design(text: str, library: CellLibrary) -> tuple:
    """Parse a DEF-like file; returns (design, die_rect)."""
    lines = [l.strip() for l in text.splitlines() if l.strip() and not l.startswith("#")]
    if not lines or not lines[0].startswith("DESIGN "):
        raise DefFormatError("missing DESIGN header")
    design = PnRDesign(lines[0].split()[1])
    die = None
    ended = False
    for line in lines[1:]:
        fields = line.split()
        keyword = fields[0]
        if keyword == "DIE":
            die = Rect(int(fields[1]), int(fields[2]), int(fields[3]), int(fields[4]))
        elif keyword == "INST":
            name, cell_name, state = fields[1], fields[2], fields[3]
            cell = library.cell(cell_name)
            if state == "PLACED":
                instance = PnRInstance(
                    name, cell,
                    location=Point(int(fields[4]), int(fields[5])),
                    orientation=Orientation(fields[6]),
                )
            elif state == "UNPLACED":
                instance = PnRInstance(name, cell)
            else:
                raise DefFormatError(f"bad placement state {state!r}")
            design.add_instance(instance)
        elif keyword == "NET":
            net_name = fields[1]
            terminals: List[Terminal] = []
            rest = fields[2:]
            index = 0
            while index < len(rest):
                if rest[index] != "(":
                    raise DefFormatError(f"bad net terminal syntax in {line!r}")
                if rest[index + 1] == "PAD":
                    terminals.append(("pad", rest[index + 2], ""))
                    index += 4
                else:
                    terminals.append(("inst", rest[index + 1], rest[index + 2]))
                    index += 4
            design.add_net(net_name, terminals)
        elif line == "END DESIGN":
            ended = True
            break
        else:
            raise DefFormatError(f"unexpected record {line!r}")
    if die is None:
        raise DefFormatError("missing DIE record")
    if not ended:
        raise DefFormatError("missing END DESIGN")
    return design, die
