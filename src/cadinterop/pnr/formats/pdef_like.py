"""PDEF-like placement-constraint exchange format.

Section 4 names PDEF as one of the few standardization efforts: "there have
been efforts to create standards such as PDEF to support some timing
related placement".  This synthetic equivalent carries exactly that scope —
placement clusters and per-net timing weights — and *nothing else*, which
is the point: a PDEF-like file cannot express the rest of the floorplan
intent, so the backplane still has work to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class PdefFormatError(ValueError):
    """Malformed PDEF-like text."""


@dataclass
class PlacementConstraints:
    """Timing-driven placement hints: clusters and net weights."""

    design: str
    clusters: Dict[str, List[str]] = field(default_factory=dict)
    net_weights: Dict[str, float] = field(default_factory=dict)

    def add_cluster(self, name: str, members: List[str]) -> None:
        if name in self.clusters:
            raise ValueError(f"duplicate cluster {name!r}")
        self.clusters[name] = list(members)

    def weight(self, net: str) -> float:
        return self.net_weights.get(net, 1.0)


def dump(constraints: PlacementConstraints) -> str:
    lines = [f"PDEF {constraints.design}"]
    for name, members in constraints.clusters.items():
        lines.append(f"CLUSTER {name}")
        for member in members:
            lines.append(f"  MEMBER {member}")
        lines.append("ENDCLUSTER")
    for net, weight in sorted(constraints.net_weights.items()):
        lines.append(f"NETWEIGHT {net} {weight}")
    lines.append("END")
    return "\n".join(lines) + "\n"


def load(text: str) -> PlacementConstraints:
    lines = [l.strip() for l in text.splitlines() if l.strip() and not l.startswith("#")]
    if not lines or not lines[0].startswith("PDEF "):
        raise PdefFormatError("missing PDEF header")
    constraints = PlacementConstraints(lines[0].split()[1])
    index = 1
    while index < len(lines):
        line = lines[index]
        fields = line.split()
        if line == "END":
            return constraints
        if fields[0] == "CLUSTER":
            name = fields[1]
            members: List[str] = []
            index += 1
            while index < len(lines) and lines[index] != "ENDCLUSTER":
                sub = lines[index].split()
                if sub[0] != "MEMBER":
                    raise PdefFormatError(f"expected MEMBER, got {lines[index]!r}")
                members.append(sub[1])
                index += 1
            if index >= len(lines):
                raise PdefFormatError("unterminated CLUSTER")
            constraints.add_cluster(name, members)
            index += 1
        elif fields[0] == "NETWEIGHT":
            constraints.net_weights[fields[1]] = float(fields[2])
            index += 1
        else:
            raise PdefFormatError(f"unexpected record {line!r}")
    raise PdefFormatError("missing END")
