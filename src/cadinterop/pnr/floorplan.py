"""Floorplanning: blocks, pin constraints, keepouts, global-net strategies.

Section 4 ("Block floorplanning"): "During floorplanning, a designer makes
decisions on block aspect ratios and size, general and literal pin
locations, and special blockages marking keep out zones.  He also defines
the general routing strategies for global signals such as power, ground and
clock.  Once the designer is satisfied with the floorplan, he must then
convey all of the appropriate information to the P&R tools."

And ("Interconnect topology"): per-net width, spacing, and shielding rules
— the constraints some tools "can not support" and the rest accept "in
inconsistent language or semantics".  The neutral representation here is
what :mod:`cadinterop.pnr.backplane` conveys to each tool dialect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from cadinterop.common.geometry import Point, Rect


@dataclass
class PinConstraint:
    """Where a block/die pin should land.

    Either a *general* constraint (an edge) or a *literal* one (an exact
    location on that edge).
    """

    name: str
    edge: str  # north / south / east / west
    offset: Optional[int] = None  # literal position along the edge, if given
    layer: Optional[str] = None

    EDGES = ("north", "south", "east", "west")

    def __post_init__(self) -> None:
        if self.edge not in self.EDGES:
            raise ValueError(f"bad edge {self.edge!r}")

    @property
    def is_literal(self) -> bool:
        return self.offset is not None


@dataclass
class Block:
    """A floorplan block with size/aspect decisions."""

    name: str
    area: int
    aspect_ratio: float = 1.0  # width / height
    location: Optional[Point] = None
    pin_constraints: List[PinConstraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError("block area must be positive")
        if self.aspect_ratio <= 0:
            raise ValueError("aspect ratio must be positive")

    @property
    def width(self) -> int:
        return max(1, round(math.sqrt(self.area * self.aspect_ratio)))

    @property
    def height(self) -> int:
        return max(1, round(self.area / self.width))

    def outline(self) -> Rect:
        if self.location is None:
            raise ValueError(f"block {self.name!r} is not placed")
        return Rect(
            self.location.x,
            self.location.y,
            self.location.x + self.width,
            self.location.y + self.height,
        )


@dataclass(frozen=True)
class Keepout:
    """A keep-out zone: no cells, and optionally no routing on layers."""

    rect: Rect
    layers: Tuple[str, ...] = ()  # empty = placement-only keepout


@dataclass(frozen=True)
class GlobalNetStrategy:
    """Routing strategy for a global signal (power/ground/clock)."""

    net: str
    kind: str  # power / ground / clock
    style: str  # ring / trunk / spine
    layer: str
    width: int
    shielded: bool = False

    KINDS = ("power", "ground", "clock")
    STYLES = ("ring", "trunk", "spine")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"bad global net kind {self.kind!r}")
        if self.style not in self.STYLES:
            raise ValueError(f"bad strategy style {self.style!r}")
        if self.width <= 0:
            raise ValueError("strategy width must be positive")


@dataclass(frozen=True)
class NetRule:
    """Per-net topology control: the Section 4 width/spacing/shield trio."""

    net: str
    width_tracks: int = 1
    spacing_tracks: int = 1
    shield: bool = False

    def __post_init__(self) -> None:
        if self.width_tracks < 1 or self.spacing_tracks < 1:
            raise ValueError("net rule tracks must be >= 1")


class Floorplan:
    """The designer's physical intent for one die."""

    def __init__(self, name: str, die: Rect) -> None:
        self.name = name
        self.die = die
        self.blocks: Dict[str, Block] = {}
        self.keepouts: List[Keepout] = []
        self.strategies: Dict[str, GlobalNetStrategy] = {}
        self.net_rules: Dict[str, NetRule] = {}
        self.pin_constraints: List[PinConstraint] = []  # die-level pins

    def add_block(self, block: Block) -> Block:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        self.blocks[block.name] = block
        return block

    def add_keepout(self, keepout: Keepout) -> Keepout:
        self.keepouts.append(keepout)
        return keepout

    def add_strategy(self, strategy: GlobalNetStrategy) -> GlobalNetStrategy:
        if strategy.net in self.strategies:
            raise ValueError(f"duplicate strategy for net {strategy.net!r}")
        self.strategies[strategy.net] = strategy
        return strategy

    def add_net_rule(self, rule: NetRule) -> NetRule:
        if rule.net in self.net_rules:
            raise ValueError(f"duplicate rule for net {rule.net!r}")
        self.net_rules[rule.net] = rule
        return rule

    def add_pin_constraint(self, constraint: PinConstraint) -> PinConstraint:
        self.pin_constraints.append(constraint)
        return constraint

    def validate(self) -> List[str]:
        """Return a list of consistency problems (empty = clean)."""
        problems: List[str] = []
        placed = [b for b in self.blocks.values() if b.location is not None]
        for block in placed:
            if not self.die.contains_rect(block.outline()):
                problems.append(f"block {block.name!r} extends past the die")
        for i, a in enumerate(placed):
            for b in placed[i + 1 :]:
                outline_a, outline_b = a.outline(), b.outline()
                if outline_a.intersects(outline_b):
                    overlap = outline_a.intersection(outline_b)
                    if overlap.area > 0:
                        problems.append(f"blocks {a.name!r} and {b.name!r} overlap")
        for keepout in self.keepouts:
            if not self.die.contains_rect(keepout.rect):
                problems.append("keepout extends past the die")
        for constraint in self.pin_constraints:
            if constraint.is_literal:
                limit = (
                    self.die.width
                    if constraint.edge in ("north", "south")
                    else self.die.height
                )
                if not 0 <= constraint.offset <= limit:
                    problems.append(
                        f"pin {constraint.name!r} offset {constraint.offset} "
                        f"outside the {constraint.edge} edge"
                    )
        return problems

    def pin_location(self, constraint: PinConstraint) -> Point:
        """Resolve a pin constraint to a die-boundary point.

        Literal constraints resolve exactly; general ones land mid-edge.
        """
        die = self.die
        if constraint.edge in ("north", "south"):
            x = die.x1 + (constraint.offset if constraint.is_literal else die.width // 2)
            y = die.y2 if constraint.edge == "north" else die.y1
        else:
            y = die.y1 + (constraint.offset if constraint.is_literal else die.height // 2)
            x = die.x2 if constraint.edge == "east" else die.x1
        return Point(x, y)
