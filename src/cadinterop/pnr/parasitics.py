"""Interconnect parasitics: area and coupling capacitance from routed nets.

Section 4 ("Interconnect topology"): "Interconnect topology has a large
impact on design performance and functional integrity...  Coupling
capacitance can causes all sorts of problems, but can be controlled by
shortening wire length, increasing spacing, or even by shielding."

Capacitance is extracted at routing-grid granularity: every occupied track
node contributes area capacitance, and each node couples to the *nearest*
foreign wire in each perpendicular direction with inverse-distance falloff
— unless a grounded shield track sits in between, which kills the coupling
entirely.  This makes the three control knobs (length, spacing, shields)
and their loss through a weak tool dialect directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from cadinterop.pnr.routing import Node, RoutingResult, SHIELD
from cadinterop.pnr.tech import Technology

#: How many tracks away coupling is still considered.
MAX_COUPLING_TRACKS = 3


@dataclass
class NetParasitics:
    """Extracted parasitics for one net."""

    net: str
    area_cap: float = 0.0
    coupling: Dict[str, float] = field(default_factory=dict)  # aggressor -> fF

    @property
    def coupling_cap(self) -> float:
        return sum(self.coupling.values())

    @property
    def total_cap(self) -> float:
        return self.area_cap + self.coupling_cap

    @property
    def worst_aggressor(self) -> Optional[Tuple[str, float]]:
        if not self.coupling:
            return None
        aggressor = max(self.coupling, key=lambda k: self.coupling[k])
        return aggressor, self.coupling[aggressor]


@dataclass
class ParasiticReport:
    """Per-net parasitics plus design-level summaries."""

    nets: Dict[str, NetParasitics] = field(default_factory=dict)

    def net(self, name: str) -> NetParasitics:
        return self.nets[name]

    @property
    def total_coupling(self) -> float:
        return sum(p.coupling_cap for p in self.nets.values())

    @property
    def total_cap(self) -> float:
        return sum(p.total_cap for p in self.nets.values())

    def coupling_of(self, net: str) -> float:
        parasitics = self.nets.get(net)
        return parasitics.coupling_cap if parasitics else 0.0


def extract(
    tech: Technology,
    routing: RoutingResult,
    occupancy: Dict[Node, str],
) -> ParasiticReport:
    """Extract parasitics for every routed net.

    ``occupancy`` is the router's final node->owner map (including shield
    markers); coupling is computed symmetrically but charged to each victim
    separately, as a delay tool would see it.
    """
    report = ParasiticReport()
    pitch = tech.pitch

    for name, routed in routing.routed.items():
        parasitics = NetParasitics(name)
        for node in routed.nodes:
            layer_name, ix, iy = node
            layer = tech.layer(layer_name)
            parasitics.area_cap += layer.area_cap * pitch
            # Probe both perpendicular directions for the nearest neighbor.
            for sign in (-1, 1):
                for distance in range(1, MAX_COUPLING_TRACKS + 1):
                    if layer.direction == "horizontal":
                        probe = (layer_name, ix, iy + sign * distance)
                    else:
                        probe = (layer_name, ix + sign * distance, iy)
                    owner = occupancy.get(probe)
                    if owner is None:
                        continue
                    if owner == name:
                        break  # own wire: no coupling contribution this side
                    if owner == SHIELD:
                        break  # grounded shield terminates the field
                    parasitics.coupling[owner] = (
                        parasitics.coupling.get(owner, 0.0)
                        + layer.coupling_at(distance) * pitch
                    )
                    break  # nearest neighbor only
        report.nets[name] = parasitics
    return report


@dataclass
class TopologyComparison:
    """The with/without-topology-control experiment result (E11)."""

    controlled_coupling: float
    uncontrolled_coupling: float
    victim: str
    controlled_victim_coupling: float
    uncontrolled_victim_coupling: float

    @property
    def victim_improvement(self) -> float:
        """Factor by which control reduced the victim's coupling."""
        if self.controlled_victim_coupling == 0.0:
            return float("inf") if self.uncontrolled_victim_coupling > 0 else 1.0
        return self.uncontrolled_victim_coupling / self.controlled_victim_coupling
