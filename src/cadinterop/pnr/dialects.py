"""P&R tool dialects: what each tool accepts, and in which convention.

Section 4: "there are no common languages, syntaxes, or semantics between
these tools...  Some tools read access direction as a property, while
others try to determine it from the routing blockages...  Connection types
are also not uniformly supported.  Some tools read connection types as a
set of literal properties on the pin, others require an external file, and
a few have no predefined support for some connection types."

Each :class:`PnRDialect` records those conventions plus the floorplan and
net-rule features it can ingest.  Three synthetic tools span the space the
paper describes; the backplane maps the neutral model onto each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

#: Floorplan feature tags a dialect may support.
FLOORPLAN_FEATURES: Tuple[str, ...] = (
    "block-aspect",
    "literal-pin-location",
    "general-pin-edge",
    "placement-keepout",
    "routing-keepout",
    "power-ring",
    "power-trunk",
    "clock-spine",
)

#: Per-net topology rule fields.
NET_RULE_FEATURES: Tuple[str, ...] = ("width", "spacing", "shield")

#: Connection-property tags.
CONNECTION_FEATURES: Tuple[str, ...] = (
    "multiple-connect",
    "equivalent-connect",
    "must-connect",
    "connect-by-abutment",
)


@dataclass(frozen=True)
class PnRDialect:
    """One P&R tool's input conventions and feature support."""

    name: str
    #: "property" = reads access direction as a pin property;
    #: "derived" = infers it from routing blockages.
    pin_access_mode: str
    #: "inline" = connection types as literal pin properties;
    #: "external-file" = a side file keyed by cell/pin;
    #: "unsupported" = no predefined support.
    connection_type_mode: str
    supported_connection_features: FrozenSet[str]
    supported_floorplan_features: FrozenSet[str]
    supported_net_rules: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.pin_access_mode not in ("property", "derived"):
            raise ValueError(f"bad access mode {self.pin_access_mode!r}")
        if self.connection_type_mode not in ("inline", "external-file", "unsupported"):
            raise ValueError(f"bad connection mode {self.connection_type_mode!r}")
        for collection, universe in (
            (self.supported_connection_features, CONNECTION_FEATURES),
            (self.supported_floorplan_features, FLOORPLAN_FEATURES),
            (self.supported_net_rules, NET_RULE_FEATURES),
        ):
            bad = set(collection) - set(universe)
            if bad:
                raise ValueError(f"unknown feature tags {sorted(bad)}")


#: Tool P: the rich tool — property-based access, inline connection types,
#: full net-rule vocabulary, most floorplan constructs.
TOOL_P = PnRDialect(
    name="toolP",
    pin_access_mode="property",
    connection_type_mode="inline",
    supported_connection_features=frozenset(CONNECTION_FEATURES),
    supported_floorplan_features=frozenset(
        {
            "block-aspect", "literal-pin-location", "general-pin-edge",
            "placement-keepout", "routing-keepout", "power-ring", "clock-spine",
        }
    ),
    supported_net_rules=frozenset({"width", "spacing", "shield"}),
)

#: Tool Q: derives access from blockages, wants an external connection
#: file, honors only net width.
TOOL_Q = PnRDialect(
    name="toolQ",
    pin_access_mode="derived",
    connection_type_mode="external-file",
    supported_connection_features=frozenset(
        {"multiple-connect", "must-connect"}
    ),
    supported_floorplan_features=frozenset(
        {"block-aspect", "general-pin-edge", "placement-keepout", "power-trunk"}
    ),
    supported_net_rules=frozenset({"width"}),
)

#: Tool R: property access but no connection-type support at all and no
#: net rules ("some tools can not support these requirements").
TOOL_R = PnRDialect(
    name="toolR",
    pin_access_mode="property",
    connection_type_mode="unsupported",
    supported_connection_features=frozenset(),
    supported_floorplan_features=frozenset(
        {"literal-pin-location", "placement-keepout", "routing-keepout", "power-ring"}
    ),
    supported_net_rules=frozenset(),
)

ALL_TOOLS: Tuple[PnRDialect, ...] = (TOOL_P, TOOL_Q, TOOL_R)


def feature_matrix(tools: Tuple[PnRDialect, ...] = ALL_TOOLS) -> Dict[str, Dict[str, bool]]:
    """feature tag -> tool -> supported; the paper's inconsistency, tabulated."""
    matrix: Dict[str, Dict[str, bool]] = {}
    for feature in FLOORPLAN_FEATURES:
        matrix[f"floorplan:{feature}"] = {
            tool.name: feature in tool.supported_floorplan_features for tool in tools
        }
    for feature in NET_RULE_FEATURES:
        matrix[f"netrule:{feature}"] = {
            tool.name: feature in tool.supported_net_rules for tool in tools
        }
    for feature in CONNECTION_FEATURES:
        matrix[f"connection:{feature}"] = {
            tool.name: feature in tool.supported_connection_features for tool in tools
        }
    return matrix


def universally_supported(tools: Tuple[PnRDialect, ...] = ALL_TOOLS) -> List[str]:
    """Features every tool understands — the paper's 'required set'."""
    return sorted(
        feature
        for feature, support in feature_matrix(tools).items()
        if all(support.values())
    )
