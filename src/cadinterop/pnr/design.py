"""The structural design a P&R flow assembles: instances, nets, pads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.geometry import Orientation, Point, Rect, Transform
from cadinterop.pnr.cells import CellAbstract


@dataclass
class PnRInstance:
    """A placeable occurrence of a cell abstract."""

    name: str
    cell: CellAbstract
    location: Optional[Point] = None
    orientation: Orientation = Orientation.R0

    @property
    def placed(self) -> bool:
        return self.location is not None

    def outline(self) -> Rect:
        if self.location is None:
            raise ValueError(f"instance {self.name!r} is not placed")
        transform = Transform(self.location, self.orientation)
        return transform.apply_rect(self.cell.boundary)

    def pin_position(self, pin_name: str) -> Point:
        """Center of the pin's bounding box in die coordinates."""
        if self.location is None:
            raise ValueError(f"instance {self.name!r} is not placed")
        box = self.cell.pin(pin_name).bounding_box()
        transform = Transform(self.location, self.orientation)
        return transform.apply_rect(box).center


#: A net terminal: ("inst", instance name, pin name) or ("pad", pad name, "").
Terminal = Tuple[str, str, str]


def inst_terminal(instance: str, pin: str) -> Terminal:
    return ("inst", instance, pin)


def pad_terminal(name: str) -> Terminal:
    return ("pad", name, "")


class PnRDesign:
    """Instances + logical nets; the input to placement and routing."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances: Dict[str, PnRInstance] = {}
        self.nets: Dict[str, List[Terminal]] = {}

    def add_instance(self, instance: PnRInstance) -> PnRInstance:
        if instance.name in self.instances:
            raise ValueError(f"duplicate instance {instance.name!r}")
        self.instances[instance.name] = instance
        return instance

    def add_net(self, name: str, terminals: Sequence[Terminal]) -> None:
        if name in self.nets:
            raise ValueError(f"duplicate net {name!r}")
        for kind, instance_name, pin_name in terminals:
            if kind == "inst":
                instance = self.instances.get(instance_name)
                if instance is None:
                    raise ValueError(f"net {name!r}: unknown instance {instance_name!r}")
                if not instance.cell.has_pin(pin_name):
                    raise ValueError(
                        f"net {name!r}: {instance.cell.name!r} has no pin {pin_name!r}"
                    )
            elif kind != "pad":
                raise ValueError(f"bad terminal kind {kind!r}")
        self.nets[name] = list(terminals)

    def instance(self, name: str) -> PnRInstance:
        try:
            return self.instances[name]
        except KeyError:
            raise KeyError(f"no instance named {name!r}") from None

    def all_placed(self) -> bool:
        return all(instance.placed for instance in self.instances.values())

    def nets_of_instance(self, instance_name: str) -> List[str]:
        return [
            net
            for net, terminals in self.nets.items()
            if any(k == "inst" and i == instance_name for k, i, _p in terminals)
        ]
