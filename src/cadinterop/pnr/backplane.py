"""The P&R backplane: convey floorplan intent to heterogeneous tools.

Section 4: "High Level Design Systems provides the designer with multiple
levels of floorplanning capabilities which can drive directly into a place
and route backplane...  HLD's P&R backplane is the best attempt to at least
map the semantics and controls from one tool to the next.  Though HLD's
P&R backplane conveys as much as possible to the various P&R tools, each
tool requires a specific set of constraints."

:func:`convey` maps the neutral floorplan + cell library onto one tool
dialect, producing a :class:`ToolInput` (the translated constraint payload)
plus an :class:`~cadinterop.common.diagnostics.IssueLog` entry for every
piece of intent the target cannot express.  :func:`run_flow` then executes
placement + routing honoring exactly what survived, so the *cost* of each
dialect's gaps is measurable (routing success, wirelength, coupling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Point
from cadinterop.obs import get_lineage, get_logger, get_tracer
from cadinterop.pnr.cells import CellLibrary, effective_access
from cadinterop.pnr.design import PnRDesign
from cadinterop.pnr.dialects import PnRDialect
from cadinterop.pnr.floorplan import Floorplan, NetRule
from cadinterop.pnr.parasitics import ParasiticReport, extract
from cadinterop.pnr.placement import PlacementResult, RowPlacer
from cadinterop.pnr.routing import GridRouter, RoutingResult
from cadinterop.pnr.tech import Technology

_log = get_logger("pnr.backplane")


@dataclass
class ToolInput:
    """The constraint payload actually delivered to one tool."""

    tool: str
    pin_access: Dict[Tuple[str, str], FrozenSet[str]] = field(default_factory=dict)
    connection_properties: Dict[Tuple[str, str], Dict[str, object]] = field(default_factory=dict)
    external_connection_file: Optional[str] = None
    floorplan_directives: List[str] = field(default_factory=list)
    net_rules: Dict[str, NetRule] = field(default_factory=dict)
    honored_rule_features: Set[str] = field(default_factory=set)
    dropped: List[str] = field(default_factory=list)


def _strategy_feature(style: str) -> str:
    return {"ring": "power-ring", "trunk": "power-trunk", "spine": "clock-spine"}[style]


def convey(
    floorplan: Floorplan,
    library: CellLibrary,
    dialect: PnRDialect,
    log: Optional[IssueLog] = None,
) -> ToolInput:
    """Translate the neutral model into one tool's input, logging losses."""
    log = log if log is not None else IssueLog()
    payload = ToolInput(tool=dialect.name)
    lineage = get_lineage()

    # --- pin access conventions -----------------------------------------
    for cell in library.cells():
        for pin in cell.pins:
            access = effective_access(cell, pin.name, dialect.pin_access_mode)
            payload.pin_access[(cell.name, pin.name)] = access
            if (
                dialect.pin_access_mode == "derived"
                and pin.props.access is not None
                and access != pin.props.access
            ):
                log.add(
                    Severity.WARNING, Category.SEMANTICS, f"{cell.name}.{pin.name}",
                    f"tool derives access {sorted(access)} from blockages, "
                    f"ignoring the declared property {sorted(pin.props.access)}",
                    tool=dialect.name,
                    remedy="adjust blockage geometry so derivation matches intent",
                )
                lineage.record(
                    "pin-access", f"{cell.name}.{pin.name}", "pnr:convey",
                    "approximated",
                    detail=f"derived {sorted(access)} != declared "
                    f"{sorted(pin.props.access)}",
                    dialect=dialect.name,
                )

    # --- connection properties --------------------------------------------
    external_lines: List[str] = []
    for cell in library.cells():
        for pin in cell.pins:
            props = pin.props
            present = {
                "multiple-connect": props.multiple_connect,
                "equivalent-connect": props.equivalent_group is not None,
                "must-connect": props.must_connect,
                "connect-by-abutment": props.connect_by_abutment,
            }
            used = {tag for tag, on in present.items() if on}
            supported = used & dialect.supported_connection_features
            for tag in sorted(used - supported):
                payload.dropped.append(f"connection:{tag}:{cell.name}.{pin.name}")
                log.add(
                    Severity.ERROR, Category.FEATURE_GAP, f"{cell.name}.{pin.name}",
                    f"connection property {tag!r} has no support in {dialect.name}",
                    tool=dialect.name,
                    remedy="enforce the property with a manual check after routing",
                )
                lineage.record(
                    "intent", f"connection:{tag}:{cell.name}.{pin.name}",
                    "pnr:convey", "dropped",
                    detail=f"no support in {dialect.name}", dialect=dialect.name,
                )
            for tag in sorted(supported):
                lineage.record(
                    "intent", f"connection:{tag}:{cell.name}.{pin.name}",
                    "pnr:convey", "preserved", dialect=dialect.name,
                )
            if not supported:
                continue
            if dialect.connection_type_mode == "inline":
                payload.connection_properties[(cell.name, pin.name)] = {
                    tag: True for tag in sorted(supported)
                }
                if props.equivalent_group and "equivalent-connect" in supported:
                    payload.connection_properties[(cell.name, pin.name)][
                        "equivalent-group"
                    ] = props.equivalent_group
            elif dialect.connection_type_mode == "external-file":
                for tag in sorted(supported):
                    external_lines.append(f"{cell.name} {pin.name} {tag}")
            else:  # unsupported mode but feature set nonempty cannot happen
                pass
    if external_lines:
        payload.external_connection_file = "\n".join(external_lines) + "\n"
        log.add(
            Severity.NOTE, Category.TOOL_CONTROL, dialect.name,
            f"{len(external_lines)} connection properties moved to an external file",
            tool=dialect.name,
        )

    # --- floorplan directives -----------------------------------------------
    def want(feature: str, directive: str, subject: str) -> None:
        if feature in dialect.supported_floorplan_features:
            payload.floorplan_directives.append(directive)
            lineage.record(
                "intent", f"floorplan:{feature}:{subject}", "pnr:convey",
                "preserved", detail=directive, dialect=dialect.name,
            )
        else:
            payload.dropped.append(f"floorplan:{feature}:{subject}")
            log.add(
                Severity.WARNING, Category.FEATURE_GAP, subject,
                f"floorplan intent {feature!r} cannot be conveyed to {dialect.name}",
                tool=dialect.name,
                remedy="re-create the constraint inside the tool by hand",
            )
            lineage.record(
                "intent", f"floorplan:{feature}:{subject}", "pnr:convey",
                "dropped", detail=f"cannot be conveyed to {dialect.name}",
                dialect=dialect.name,
            )

    for block in floorplan.blocks.values():
        want(
            "block-aspect",
            f"block {block.name} area {block.area} aspect {block.aspect_ratio}",
            block.name,
        )
        for constraint in block.pin_constraints:
            feature = "literal-pin-location" if constraint.is_literal else "general-pin-edge"
            want(feature, f"blockpin {block.name}.{constraint.name} {constraint.edge}", constraint.name)
    for constraint in floorplan.pin_constraints:
        feature = "literal-pin-location" if constraint.is_literal else "general-pin-edge"
        where = f"{constraint.offset}" if constraint.is_literal else "mid"
        want(feature, f"diepin {constraint.name} {constraint.edge} {where}", constraint.name)
    for keepout in floorplan.keepouts:
        feature = "routing-keepout" if keepout.layers else "placement-keepout"
        want(feature, f"keepout {keepout.rect.x1} {keepout.rect.y1} "
                      f"{keepout.rect.x2} {keepout.rect.y2}", "keepout")
    for strategy in floorplan.strategies.values():
        want(
            _strategy_feature(strategy.style),
            f"global {strategy.net} {strategy.style} {strategy.layer} w{strategy.width}",
            strategy.net,
        )

    # --- per-net topology rules ------------------------------------------------
    payload.honored_rule_features = set(dialect.supported_net_rules)
    for rule in floorplan.net_rules.values():
        wanted = set()
        if rule.width_tracks > 1:
            wanted.add("width")
        if rule.spacing_tracks > 1:
            wanted.add("spacing")
        if rule.shield:
            wanted.add("shield")
        kept = wanted & dialect.supported_net_rules
        payload.net_rules[rule.net] = NetRule(
            rule.net,
            width_tracks=rule.width_tracks if "width" in kept else 1,
            spacing_tracks=rule.spacing_tracks if "spacing" in kept else 1,
            shield=rule.shield and "shield" in kept,
        )
        for tag in sorted(kept):
            lineage.record(
                "intent", f"netrule:{tag}:{rule.net}", "pnr:convey",
                "preserved", dialect=dialect.name,
            )
        for tag in sorted(wanted - kept):
            payload.dropped.append(f"netrule:{tag}:{rule.net}")
            log.add(
                Severity.ERROR, Category.FEATURE_GAP, rule.net,
                f"net topology control {tag!r} dropped for {dialect.name}",
                tool=dialect.name,
                remedy="expect coupling/current-density risk on this net",
            )
            lineage.record(
                "intent", f"netrule:{tag}:{rule.net}", "pnr:convey",
                "dropped", detail=f"no support in {dialect.name}",
                dialect=dialect.name,
            )
    if payload.dropped:
        _log.debug(
            "convey to %s dropped %d intents: %s",
            dialect.name, len(payload.dropped), ", ".join(payload.dropped),
        )
    return payload


@dataclass
class FlowResult:
    """Placement + routing + parasitics under one tool's conveyed input."""

    tool: str
    placement: PlacementResult
    routing: RoutingResult
    parasitics: ParasiticReport
    conveyance_log: IssueLog
    dropped: List[str]


def run_flow(
    tech: Technology,
    floorplan: Floorplan,
    library: CellLibrary,
    design: PnRDesign,
    dialect: PnRDialect,
    pad_positions: Optional[Dict[str, Point]] = None,
    seed: int = 1,
) -> FlowResult:
    """Convey constraints to a dialect, then place and route honoring only
    what survived.  The measurable deltas between dialects are the paper's
    interoperability cost."""
    with get_tracer().span(
        "pnr:flow", design=design.name, tool=dialect.name
    ) as span:
        log = IssueLog()
        payload = convey(floorplan, library, dialect, log)

        # Fresh copies of mutable placement state per run.
        for instance in design.instances.values():
            if instance.cell.kind == "stdcell":
                instance.location = None

        placer = RowPlacer(tech, floorplan, seed=seed)
        placement = placer.place(design, pad_positions)

        router = GridRouter(tech, floorplan, pad_positions)
        routing = router.route_design(
            design, honor_rules=True, honored_features=payload.honored_rule_features
        )
        parasitics = extract(tech, routing, router.occupancy)
        span.set(dropped=len(payload.dropped))
        return FlowResult(
            tool=dialect.name,
            placement=placement,
            routing=routing,
            parasitics=parasitics,
            conveyance_log=log,
            dropped=list(payload.dropped),
        )
