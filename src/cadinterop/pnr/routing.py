"""Grid router honoring per-net width, spacing, and shielding rules.

A two-layer Lee/A* router on the technology's routing grid.  Its purpose in
this library is interoperability-shaped: it *accepts* the full Section 4
constraint vocabulary (per-net width, spacing, shields) so the backplane
experiments can compare a tool that honors those constraints against
dialects that drop them — the measurable consequence is coupling
capacitance (:mod:`cadinterop.pnr.parasitics`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.geometry import Point, Rect
from cadinterop.pnr.design import PnRDesign, Terminal
from cadinterop.pnr.floorplan import Floorplan, GlobalNetStrategy, NetRule
from cadinterop.pnr.tech import Layer, Technology

#: A routing-grid node: (layer name, column index, row index).
Node = Tuple[str, int, int]

#: Occupancy marker for shield wires.
SHIELD = "$shield"


@dataclass
class RoutedNet:
    """One net's realized geometry on the grid."""

    name: str
    nodes: Set[Node] = field(default_factory=set)
    vias: int = 0
    rule: NetRule = field(default_factory=lambda: NetRule("?"))

    @property
    def wirelength_tracks(self) -> int:
        return max(0, len({(l, x, y) for l, x, y in self.nodes}) - 1)


@dataclass
class RoutingResult:
    """All routed nets plus failures and shield accounting."""

    routed: Dict[str, RoutedNet] = field(default_factory=dict)
    failed: List[str] = field(default_factory=list)
    shield_nodes: int = 0

    @property
    def success_rate(self) -> float:
        total = len(self.routed) + len(self.failed)
        return 1.0 if total == 0 else len(self.routed) / total

    @property
    def total_wirelength(self) -> int:
        return sum(net.wirelength_tracks for net in self.routed.values())


class GridRouter:
    """Routes a placed design over a floorplan with per-net rules."""

    def __init__(
        self,
        tech: Technology,
        floorplan: Floorplan,
        pad_positions: Optional[Dict[str, Point]] = None,
    ) -> None:
        self.tech = tech
        self.floorplan = floorplan
        self.pads = pad_positions or {}
        die = floorplan.die
        self.cols = max(1, die.width // tech.pitch)
        self.rows = max(1, die.height // tech.pitch)
        self.layers = {layer.name: layer for layer in tech.routing_layers()}
        self.occupancy: Dict[Node, str] = {}
        #: clearance (in tracks) each routed net demands around its wires
        self._net_margin: Dict[str, int] = {}
        self._blocked: Set[Node] = set()
        for keepout in floorplan.keepouts:
            for layer_name in keepout.layers:
                if layer_name in self.layers:
                    self._block_rect(layer_name, keepout.rect)

    # -- grid helpers -------------------------------------------------------

    def _block_rect(self, layer_name: str, rect: Rect) -> None:
        die = self.floorplan.die
        x1 = max(0, (rect.x1 - die.x1) // self.tech.pitch)
        x2 = min(self.cols - 1, (rect.x2 - die.x1) // self.tech.pitch)
        y1 = max(0, (rect.y1 - die.y1) // self.tech.pitch)
        y2 = min(self.rows - 1, (rect.y2 - die.y1) // self.tech.pitch)
        for ix in range(x1, x2 + 1):
            for iy in range(y1, y2 + 1):
                self._blocked.add((layer_name, ix, iy))

    def snap(self, point: Point) -> Tuple[int, int]:
        die = self.floorplan.die
        ix = min(self.cols - 1, max(0, (point.x - die.x1) // self.tech.pitch))
        iy = min(self.rows - 1, max(0, (point.y - die.y1) // self.tech.pitch))
        return (ix, iy)

    def _neighbors(self, node: Node) -> List[Tuple[Node, int]]:
        layer_name, ix, iy = node
        layer = self.layers[layer_name]
        result: List[Tuple[Node, int]] = []
        if layer.direction == "horizontal":
            steps = ((ix - 1, iy), (ix + 1, iy))
        else:
            steps = ((ix, iy - 1), (ix, iy + 1))
        for nx, ny in steps:
            if 0 <= nx < self.cols and 0 <= ny < self.rows:
                result.append(((layer_name, nx, ny), 1))
        # Via to the other layers at the same (x, y); cost 2.
        for other in self.layers.values():
            if other.name != layer_name:
                result.append(((other.name, ix, iy), 2))
        return result

    #: farthest clearance any rule can demand (bounds the probe loop)
    MAX_MARGIN = 4

    def _usable(self, node: Node, net: str, margin: int) -> bool:
        if node in self._blocked:
            return False
        owner = self.occupancy.get(node)
        if owner is not None and owner != net:
            return False
        layer_name, ix, iy = node
        layer = self.layers[layer_name]
        # Clearance is symmetric: respect both this net's margin and the
        # margin any already-routed neighbor demanded for itself.
        for d in range(1, self.MAX_MARGIN + 1):
            if layer.direction == "horizontal":
                around = ((layer_name, ix, iy - d), (layer_name, ix, iy + d))
            else:
                around = ((layer_name, ix - d, iy), (layer_name, ix + d, iy))
            for neighbor in around:
                neighbor_owner = self.occupancy.get(neighbor)
                if neighbor_owner is None or neighbor_owner == net:
                    continue
                required = max(margin, self._net_margin.get(neighbor_owner, 0))
                if d <= required:
                    return False
        return True

    # -- routing --------------------------------------------------------------

    def _terminal_nodes(self, design: PnRDesign, terminal: Terminal) -> List[Node]:
        kind, name, pin = terminal
        if kind == "inst":
            position = design.instance(name).pin_position(pin)
        else:
            if name not in self.pads:
                raise KeyError(f"no pad position for {name!r}")
            position = self.pads[name]
        ix, iy = self.snap(position)
        return [(layer.name, ix, iy) for layer in self.layers.values()]

    def route_net(
        self,
        design: PnRDesign,
        net: str,
        rule: Optional[NetRule] = None,
    ) -> Optional[RoutedNet]:
        """Route one net; returns None on failure (occupancy untouched)."""
        rule = rule or self.floorplan.net_rules.get(net) or NetRule(net)
        margin = (rule.width_tracks - 1) + (rule.spacing_tracks - 1)
        terminals = design.nets[net]
        if len(terminals) < 2:
            routed = RoutedNet(net, rule=rule)
            return routed

        routed_nodes: Set[Node] = set()
        vias = 0
        # Connect each terminal to the growing tree.
        tree: Set[Node] = set(self._terminal_nodes(design, terminals[0]))
        for terminal in terminals[1:]:
            targets = set(self._terminal_nodes(design, terminal))
            path = self._astar(tree | routed_nodes, targets, net, margin)
            if path is None:
                return None
            for index, node in enumerate(path):
                routed_nodes.add(node)
                if index > 0 and path[index - 1][0] != node[0]:
                    vias += 1
            tree |= targets

        result = RoutedNet(net, nodes=routed_nodes, vias=vias, rule=rule)
        for node in routed_nodes:
            self.occupancy[node] = net
        self._net_margin[net] = margin
        return result

    def _astar(
        self,
        sources: Set[Node],
        targets: Set[Node],
        net: str,
        margin: int,
    ) -> Optional[List[Node]]:
        target_xy = {(x, y) for _l, x, y in targets}

        def heuristic(node: Node) -> int:
            _l, x, y = node
            return min(abs(x - tx) + abs(y - ty) for tx, ty in target_xy)

        open_heap: List[Tuple[int, int, Node]] = []
        best: Dict[Node, int] = {}
        parent: Dict[Node, Optional[Node]] = {}
        counter = 0
        for source in sources:
            # Sources are admitted on hard occupancy only: a pin that sits
            # inside another net's clearance zone must still be escapable
            # (typically via the other layer).
            if source in self._blocked:
                continue
            if self.occupancy.get(source, net) != net:
                continue
            best[source] = 0
            parent[source] = None
            heapq.heappush(open_heap, (heuristic(source), counter, source))
            counter += 1

        while open_heap:
            _f, _c, node = heapq.heappop(open_heap)
            cost = best[node]
            if node in targets:
                path: List[Node] = []
                current: Optional[Node] = node
                while current is not None:
                    path.append(current)
                    current = parent[current]
                return list(reversed(path))
            for neighbor, step in self._neighbors(node):
                # Terminals are always enterable by their own net; margin
                # applies to the routing fabric in between.
                if neighbor not in targets and not self._usable(neighbor, net, margin):
                    continue
                if neighbor in targets and self.occupancy.get(neighbor, net) != net:
                    continue
                new_cost = cost + step
                if new_cost < best.get(neighbor, 1 << 30):
                    best[neighbor] = new_cost
                    parent[neighbor] = node
                    heapq.heappush(
                        open_heap, (new_cost + heuristic(neighbor), counter, neighbor)
                    )
                    counter += 1
        return None

    def add_shields(self, routed: RoutedNet) -> int:
        """Lay grounded shield tracks alongside a shielded net's wires."""
        added = 0
        for layer_name, ix, iy in routed.nodes:
            layer = self.layers[layer_name]
            for offset in (-1, 1):
                if layer.direction == "horizontal":
                    node = (layer_name, ix, iy + offset)
                else:
                    node = (layer_name, ix + offset, iy)
                _l, nx, ny = node
                if not (0 <= nx < self.cols and 0 <= ny < self.rows):
                    continue
                if node in self._blocked or node in self.occupancy:
                    continue
                self.occupancy[node] = SHIELD
                added += 1
        return added

    def realize_strategy(self, strategy: "GlobalNetStrategy", inset_tracks: int = 1) -> RoutedNet:
        """Generate the geometry of a global-net routing strategy.

        The paper's floorplanner "defines the general routing strategies
        for global signals such as power, ground and clock"; this realizes
        them on the grid:

        * ``ring`` — a rectangular loop ``inset_tracks`` inside the die
          boundary on the strategy's layer;
        * ``trunk`` — a horizontal band across the die's vertical middle;
        * ``spine`` — a vertical band down the die's horizontal middle.

        ``strategy.width`` is taken in routing tracks.  A shielded
        strategy gets grounded shield tracks alongside.  Occupied nodes
        belong to the strategy's net; call before signal routing so
        signals detour around the global structures, as real flows do.
        """
        nodes: Set[Node] = set()
        width = max(1, strategy.width)
        layer = self.layers.get(strategy.layer)
        if layer is None:
            raise KeyError(f"strategy layer {strategy.layer!r} not in technology")

        def claim(node: Node) -> None:
            _l, ix, iy = node
            if 0 <= ix < self.cols and 0 <= iy < self.rows:
                if node not in self._blocked and self.occupancy.get(node, strategy.net) == strategy.net:
                    nodes.add(node)

        if strategy.style == "ring":
            for offset in range(width):
                low = inset_tracks + offset
                high_col = self.cols - 1 - inset_tracks - offset
                high_row = self.rows - 1 - inset_tracks - offset
                for ix in range(low, high_col + 1):
                    claim((strategy.layer, ix, low))
                    claim((strategy.layer, ix, high_row))
                for iy in range(low, high_row + 1):
                    claim((strategy.layer, low, iy))
                    claim((strategy.layer, high_col, iy))
        elif strategy.style == "trunk":
            middle = self.rows // 2
            for offset in range(width):
                for ix in range(self.cols):
                    claim((strategy.layer, ix, middle + offset))
        else:  # spine
            middle = self.cols // 2
            for offset in range(width):
                for iy in range(self.rows):
                    claim((strategy.layer, middle + offset, iy))

        routed = RoutedNet(strategy.net, nodes=nodes, rule=NetRule(strategy.net))
        for node in nodes:
            self.occupancy[node] = strategy.net
        self._net_margin[strategy.net] = 0
        if strategy.shielded:
            self.add_shields(routed)
        return routed

    def route_design(
        self,
        design: PnRDesign,
        honor_rules: bool = True,
        honored_features: Optional[Set[str]] = None,
    ) -> RoutingResult:
        """Route every net, optionally degrading the rule vocabulary.

        ``honored_features`` (when ``honor_rules``) restricts which rule
        fields apply — e.g. a dialect that supports width but not spacing
        passes ``{"width"}``.  This is the backplane's degradation hook.
        """
        result = RoutingResult()
        features = honored_features if honored_features is not None else {
            "width", "spacing", "shield",
        }
        # Reserve every net's primary terminal node (the pin's own layer)
        # up front so no other net can route across a pin it does not own.
        # Upper-layer nodes above a pin stay free — crossing over a foreign
        # pin on another layer is legal.
        for net, terminals in design.nets.items():
            for terminal in terminals:
                node = self._terminal_nodes(design, terminal)[0]
                if self.occupancy.get(node, net) == net:
                    self.occupancy[node] = net
        # Route rule-carrying nets first (they need the room).
        ordered = sorted(
            design.nets,
            key=lambda n: (self.floorplan.net_rules.get(n) is None, n),
        )
        for net in ordered:
            rule = self.floorplan.net_rules.get(net) or NetRule(net)
            if not honor_rules:
                effective = NetRule(net)
            else:
                effective = NetRule(
                    net,
                    width_tracks=rule.width_tracks if "width" in features else 1,
                    spacing_tracks=rule.spacing_tracks if "spacing" in features else 1,
                    shield=rule.shield and "shield" in features,
                )
            routed = self.route_net(design, net, effective)
            if routed is None:
                result.failed.append(net)
                continue
            result.routed[net] = routed
            if effective.shield:
                result.shield_nodes += self.add_shields(routed)
        return result
