"""Process technology description for the physical design substrate.

Routing layers with preferred directions, widths/spacings, and capacitance
coefficients (area and coupling), plus placement site definitions.  The
coupling coefficients are what make Section 4's interconnect-topology
experiments measurable: "Coupling capacitance can causes all sorts of
problems, but can be controlled by shortening wire length, increasing
spacing, or even by shielding."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Layer:
    """One routing layer."""

    name: str
    index: int
    direction: str  # "horizontal" or "vertical"
    min_width: int
    min_spacing: int
    #: capacitance per unit length to substrate (fF per track unit)
    area_cap: float
    #: coupling capacitance per unit parallel run at minimum spacing
    coupling_cap: float

    def __post_init__(self) -> None:
        if self.direction not in ("horizontal", "vertical"):
            raise ValueError(f"bad layer direction {self.direction!r}")
        if self.min_width <= 0 or self.min_spacing <= 0:
            raise ValueError("layer width/spacing must be positive")

    def coupling_at(self, spacing_tracks: int) -> float:
        """Coupling per unit length when two wires sit ``spacing_tracks``
        routing tracks apart (inverse-distance falloff)."""
        if spacing_tracks < 1:
            raise ValueError("spacing must be at least one track")
        return self.coupling_cap / spacing_tracks


@dataclass(frozen=True)
class Site:
    """A placement site (row) type."""

    name: str
    width: int
    height: int


@dataclass
class Technology:
    """The full technology: layers by name plus site types."""

    name: str
    layers: Dict[str, Layer] = field(default_factory=dict)
    sites: Dict[str, Site] = field(default_factory=dict)
    #: routing grid pitch in database units
    pitch: int = 10

    def add_layer(self, layer: Layer) -> Layer:
        if layer.name in self.layers:
            raise ValueError(f"duplicate layer {layer.name!r}")
        self.layers[layer.name] = layer
        return layer

    def add_site(self, site: Site) -> Site:
        if site.name in self.sites:
            raise ValueError(f"duplicate site {site.name!r}")
        self.sites[site.name] = site
        return site

    def layer(self, name: str) -> Layer:
        try:
            return self.layers[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r}") from None

    def routing_layers(self) -> List[Layer]:
        return sorted(self.layers.values(), key=lambda l: l.index)

    def layer_for_direction(self, direction: str) -> Layer:
        for layer in self.routing_layers():
            if layer.direction == direction:
                return layer
        raise KeyError(f"no layer routes {direction}")


def generic_two_layer_tech() -> Technology:
    """A representative 2-metal technology used across tests and benches."""
    # Pitch 5 keeps the pins of a 10-unit-wide cell on distinct tracks.
    tech = Technology("generic2m", pitch=5)
    tech.add_layer(
        Layer("M1", 1, "horizontal", min_width=4, min_spacing=4,
              area_cap=0.08, coupling_cap=0.12)
    )
    tech.add_layer(
        Layer("M2", 2, "vertical", min_width=4, min_spacing=4,
              area_cap=0.06, coupling_cap=0.10)
    )
    tech.add_site(Site("core", width=10, height=40))
    tech.add_site(Site("pad", width=60, height=60))
    return tech
