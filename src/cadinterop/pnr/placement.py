"""Row-based standard-cell placement with greedy HPWL improvement.

Not a competitive placer — a *sufficient* one: it legalizes instances onto
site rows, honors placement keepouts and pre-placed macros, and improves
half-perimeter wirelength with swap passes, so the routing and coupling
experiments downstream run on sane placements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.geometry import Point, Rect
from cadinterop.pnr.design import PnRDesign, PnRInstance, Terminal
from cadinterop.pnr.floorplan import Floorplan
from cadinterop.pnr.tech import Technology


@dataclass
class PlacementResult:
    """Outcome of a placement run."""

    placed: int
    hpwl: int
    rows_used: int
    swap_improvements: int


def hpwl(design: PnRDesign, pad_positions: Optional[Dict[str, Point]] = None) -> int:
    """Total half-perimeter wirelength over all nets."""
    total = 0
    pads = pad_positions or {}
    for terminals in design.nets.values():
        points: List[Point] = []
        for kind, name, pin in terminals:
            if kind == "inst":
                instance = design.instance(name)
                if instance.placed:
                    points.append(instance.pin_position(pin))
            elif name in pads:
                points.append(pads[name])
        if len(points) >= 2:
            box = Rect.bounding(points)
            total += box.width + box.height
    return total


class RowPlacer:
    """Legalize-and-improve placement into floorplan rows."""

    def __init__(
        self,
        tech: Technology,
        floorplan: Floorplan,
        site_name: str = "core",
        seed: int = 1,
    ) -> None:
        self.tech = tech
        self.floorplan = floorplan
        self.site = tech.sites[site_name]
        self.rng = random.Random(seed)

    def _slot_blocked(self, rect: Rect) -> bool:
        for keepout in self.floorplan.keepouts:
            if not keepout.layers and keepout.rect.intersects(rect):
                return True
        for block in self.floorplan.blocks.values():
            if block.location is not None and block.outline().intersects(rect):
                return True
        return False

    def _build_slots(self, widths: Sequence[int]) -> List[List[Point]]:
        """Slot origins per row, wide enough for the widest cell."""
        die = self.floorplan.die
        slot_width = max(widths) if widths else self.site.width
        # Round up to a whole number of sites.
        sites_per_slot = -(-slot_width // self.site.width)
        slot_width = sites_per_slot * self.site.width
        rows: List[List[Point]] = []
        y = die.y1
        while y + self.site.height <= die.y2:
            row: List[Point] = []
            x = die.x1
            while x + slot_width <= die.x2:
                rect = Rect(x, y, x + slot_width, y + self.site.height)
                if not self._slot_blocked(rect):
                    row.append(Point(x, y))
                x += slot_width
            rows.append(row)
            y += self.site.height
        return rows

    def place(
        self,
        design: PnRDesign,
        pad_positions: Optional[Dict[str, Point]] = None,
        swap_passes: int = 2,
    ) -> PlacementResult:
        movable = [
            instance
            for instance in design.instances.values()
            if not instance.placed and instance.cell.kind == "stdcell"
        ]
        rows = self._build_slots([i.cell.width for i in movable])
        slots = [point for row in rows for point in row]
        if len(slots) < len(movable):
            raise ValueError(
                f"floorplan has {len(slots)} slots for {len(movable)} cells"
            )

        # Initial placement: deterministic shuffle then assignment.
        order = list(movable)
        self.rng.shuffle(order)
        for instance, slot in zip(order, slots):
            instance.location = slot

        # Greedy improvement: swap pairs if HPWL improves.
        improvements = 0
        for _ in range(swap_passes):
            improved = False
            for i in range(len(order)):
                for j in range(i + 1, min(i + 8, len(order))):
                    a, b = order[i], order[j]
                    before = self._local_hpwl(design, [a, b], pad_positions)
                    a.location, b.location = b.location, a.location
                    after = self._local_hpwl(design, [a, b], pad_positions)
                    if after < before:
                        improvements += 1
                        improved = True
                    else:
                        a.location, b.location = b.location, a.location
            if not improved:
                break

        rows_used = len({instance.location.y for instance in movable}) if movable else 0
        return PlacementResult(
            placed=len(movable),
            hpwl=hpwl(design, pad_positions),
            rows_used=rows_used,
            swap_improvements=improvements,
        )

    def _local_hpwl(
        self,
        design: PnRDesign,
        instances: Sequence[PnRInstance],
        pad_positions: Optional[Dict[str, Point]],
    ) -> int:
        """HPWL over only the nets touching ``instances`` (cheap delta)."""
        names = {instance.name for instance in instances}
        pads = pad_positions or {}
        total = 0
        seen: Set[str] = set()
        for net, terminals in design.nets.items():
            if net in seen:
                continue
            if not any(k == "inst" and i in names for k, i, _p in terminals):
                continue
            seen.add(net)
            points: List[Point] = []
            for kind, name, pin in terminals:
                if kind == "inst":
                    instance = design.instance(name)
                    if instance.placed:
                        points.append(instance.pin_position(pin))
                elif name in pads:
                    points.append(pads[name])
            if len(points) >= 2:
                box = Rect.bounding(points)
                total += box.width + box.height
        return total
