"""Synthetic design corpus modelled on the paper's Exar case study.

The paper's schematic section is grounded in a real migration: existing
Viewlogic schematics, qualified Cadence component libraries, analog
properties, buses, globals, and multi-page implicit connections.  That
proprietary design data is unavailable, so this module builds a synthetic
equivalent exercising every one of those features (see DESIGN.md's
substitution table):

* :func:`build_vl_libraries` / :func:`build_cd_libraries` — source and
  target primitive libraries with *different* pin names and geometries.
* :func:`build_sample_schematic` — a two-page mixed-signal cell with
  condensed bus references, a postfix-indicator net, implicit cross-page
  connection, a global ground, and a combined analog ``wl`` property that
  must be split by an a/L callback.
* :func:`build_sample_plan` — the complete migration plan for it.
* :func:`generate_chain_schematic` — parametric generator for corpus-scale
  benchmarks (inverter chains with buses across pages).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from cadinterop.common.geometry import Orientation, Point, Rect, Transform
from cadinterop.schematic.connectors import build_connector_library
from cadinterop.schematic.dialects import COMPOSER_LIKE, Dialect, VIEWDRAW_LIKE
from cadinterop.schematic.globals_ import default_global_map
from cadinterop.schematic.migrate import MigrationPlan
from cadinterop.schematic.model import (
    Instance,
    Library,
    LibrarySet,
    PinDirection,
    Port,
    Schematic,
    Symbol,
    SymbolPin,
    TextLabel,
    Wire,
)
from cadinterop.schematic.propertymap import (
    AddRule,
    CallbackRule,
    PropertyRuleSet,
    RenameRule,
    Scope,
)
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMap, SymbolMapping

#: a/L callback splitting the combined analog ``wl`` property ("2u/0.5u")
#: into separate ``w`` and ``l`` properties — the paper's "reformatting of
#: single properties into multiple properties".
SPLIT_WL_CALLBACK = """
(if (has-prop? obj "wl")
    (let ((parts (split (get-prop obj "wl") "/")))
      (set-prop! obj "w" (car parts))
      (set-prop! obj "l" (cadr parts))
      (del-prop! obj "wl")))
"""


def build_vl_libraries() -> LibrarySet:
    """Source-side libraries: primitives plus the native connector library."""
    prims = Library("vl_prims")
    prims.add(
        Symbol(
            library="vl_prims", name="nand2", body=Rect(0, 0, 64, 64),
            pins=[
                SymbolPin("A", Point(0, 48), PinDirection.INPUT),
                SymbolPin("B", Point(0, 16), PinDirection.INPUT),
                SymbolPin("Y", Point(64, 32), PinDirection.OUTPUT),
            ],
        )
    )
    prims.add(
        Symbol(
            library="vl_prims", name="inv", body=Rect(0, 0, 64, 32),
            pins=[
                SymbolPin("A", Point(0, 16), PinDirection.INPUT),
                SymbolPin("Y", Point(64, 16), PinDirection.OUTPUT),
            ],
        )
    )
    prims.add(
        Symbol(
            library="vl_prims", name="res", body=Rect(0, 0, 32, 64),
            pins=[
                SymbolPin("P", Point(16, 0)),
                SymbolPin("N", Point(16, 64)),
            ],
        )
    )
    prims.add(
        Symbol(
            library="vl_prims", name="mosn", body=Rect(0, 0, 32, 64),
            pins=[
                SymbolPin("D", Point(32, 64)),
                SymbolPin("G", Point(0, 32), PinDirection.INPUT),
                SymbolPin("S", Point(32, 0)),
            ],
        )
    )
    return LibrarySet([prims, build_connector_library(VIEWDRAW_LIKE)])


def build_cd_libraries() -> LibrarySet:
    """Target-side qualified libraries (different pin names and geometry)."""
    basic = Library("cd_basic")
    basic.add(
        Symbol(
            library="cd_basic", name="nand2", body=Rect(0, 0, 40, 40),
            pins=[
                SymbolPin("IN1", Point(0, 20), PinDirection.INPUT),
                SymbolPin("IN2", Point(0, 0), PinDirection.INPUT),
                SymbolPin("OUT", Point(40, 10), PinDirection.OUTPUT),
            ],
        )
    )
    basic.add(
        Symbol(
            library="cd_basic", name="inv", body=Rect(0, 0, 40, 20),
            pins=[
                SymbolPin("IN", Point(0, 0), PinDirection.INPUT),
                SymbolPin("OUT", Point(40, 0), PinDirection.OUTPUT),
            ],
        )
    )
    analog = Library("cd_analog")
    analog.add(
        Symbol(
            library="cd_analog", name="res", body=Rect(0, 0, 20, 40),
            pins=[
                SymbolPin("PLUS", Point(10, 0)),
                SymbolPin("MINUS", Point(10, 40)),
            ],
        )
    )
    analog.add(
        Symbol(
            library="cd_analog", name="mosn", body=Rect(0, 0, 20, 40),
            pins=[
                SymbolPin("D", Point(20, 40)),
                SymbolPin("G", Point(0, 20), PinDirection.INPUT),
                SymbolPin("S", Point(20, 0)),
            ],
        )
    )
    connector_library = build_connector_library(COMPOSER_LIKE)
    # The CD connector library is named cd_basic in the dialect descriptor;
    # merge its connector symbols into the basic library.
    merged = LibrarySet()
    for symbol in connector_library.symbols():
        basic.add(symbol)
    merged.add(basic)
    merged.add(analog)
    return merged


def build_symbol_map() -> SymbolMap:
    """The replacement table: every VL primitive -> its qualified CD master."""
    symbol_map = SymbolMap()
    symbol_map.add(
        SymbolMapping(
            source=SymbolKey("vl_prims", "nand2"),
            target=SymbolKey("cd_basic", "nand2"),
            pin_map={"A": "IN1", "B": "IN2", "Y": "OUT"},
        )
    )
    symbol_map.add(
        SymbolMapping(
            source=SymbolKey("vl_prims", "inv"),
            target=SymbolKey("cd_basic", "inv"),
            pin_map={"A": "IN", "Y": "OUT"},
        )
    )
    symbol_map.add(
        SymbolMapping(
            source=SymbolKey("vl_prims", "res"),
            target=SymbolKey("cd_analog", "res"),
            pin_map={"P": "PLUS", "N": "MINUS"},
        )
    )
    symbol_map.add(
        SymbolMapping(
            source=SymbolKey("vl_prims", "mosn"),
            target=SymbolKey("cd_analog", "mosn"),
        )
    )
    return symbol_map


def build_property_rules() -> PropertyRuleSet:
    """Standard rules plus the analog a/L callback."""
    rules = PropertyRuleSet()
    rules.add_rule(RenameRule("rval", "r", scope=Scope(name="res")))
    rules.add_rule(AddRule("migrated_by", "cadinterop", scope=Scope(library="cd_*")))
    rules.add_callback(
        CallbackRule(
            SPLIT_WL_CALLBACK,
            scope=Scope(name="mosn"),
            description="split combined wl into w and l",
        )
    )
    return rules


def build_sample_schematic(libraries: LibrarySet) -> Schematic:
    """A two-page cell exercising every Section 2 issue at once."""
    prims = libraries.library("vl_prims")
    builtin = libraries.library("vl_builtin")

    cell = Schematic(
        "mixed1",
        VIEWDRAW_LIKE.name,
        ports=[Port("A<0>", PinDirection.INPUT), Port("OUT-", PinDirection.OUTPUT)],
    )
    cell.properties.set("designer", "exar-demo")

    page1 = cell.add_page(Rect(0, 0, 1024, 800))
    u1 = page1.add_instance(
        Instance("U1", prims.get("nand2"), Transform(Point(160, 160)))
    )
    u2 = page1.add_instance(
        Instance("U2", prims.get("inv"), Transform(Point(320, 176)))
    )
    r1 = page1.add_instance(
        Instance("R1", prims.get("res"), Transform(Point(352, 96)))
    )
    r1.properties.set("rval", "10k")
    g1 = page1.add_instance(
        Instance("G1", builtin.get("gnd"), Transform(Point(160, 96)))
    )
    g1.properties.set("signal", "GND")

    # Bus declaration stub (declares A<0:15> on the sheet).
    page1.add_wire(Wire([Point(96, 240), Point(160, 240)], label="A<0:15>"))
    # Explicit bit reference into U1.A.
    page1.add_wire(Wire([Point(96, 208), Point(160, 208)], label="A<0>"))
    # Condensed bit reference (A1 == A<1>) into U1.B.
    page1.add_wire(Wire([Point(96, 176), Point(160, 176)], label="A1"))
    # Internal net U1.Y -> U2.A.
    page1.add_wire(Wire([Point(224, 192), Point(320, 192)], label="N1"))
    # Resistor bottom tap (R1.N) down onto the N1 wire (mid-segment tap).
    page1.add_wire(Wire([Point(368, 160), Point(288, 160), Point(288, 192)]))
    # Ground wire G1.P -> R1.P.
    page1.add_wire(Wire([Point(160, 96), Point(368, 96)]))
    # Output net with a postfix indicator, leaving a floating end.
    page1.add_wire(Wire([Point(384, 192), Point(448, 192)], label="OUT-"))
    page1.add_label(TextLabel("page one", Point(16, 784)))

    page2 = cell.add_page(Rect(0, 0, 1024, 800))
    u3 = page2.add_instance(
        Instance("U3", prims.get("inv"), Transform(Point(160, 160)))
    )
    m1 = page2.add_instance(
        Instance("M1", prims.get("mosn"), Transform(Point(320, 160)))
    )
    m1.properties.set("wl", "2u/0.5u")
    # Implicit continuation of OUT- from page 1 (same label, no connector).
    page2.add_wire(Wire([Point(96, 176), Point(160, 176)], label="OUT-"))
    # U3.Y -> M1.G with a jog.
    page2.add_wire(
        Wire([Point(224, 176), Point(288, 176), Point(288, 192), Point(320, 192)])
    )
    page2.add_label(TextLabel("page two", Point(16, 784)))

    # Silence unused-variable lint while keeping construction explicit.
    del u1, u2, u3
    return cell


def build_sample_plan(
    source_libraries: LibrarySet = None,
    target_libraries: LibrarySet = None,
    verify: bool = True,
    strategy: str = "minimal",
) -> MigrationPlan:
    """The full plan for migrating the sample (and chain) schematics."""
    return MigrationPlan(
        source_dialect=VIEWDRAW_LIKE,
        target_dialect=COMPOSER_LIKE,
        source_libraries=source_libraries or build_vl_libraries(),
        target_libraries=target_libraries or build_cd_libraries(),
        symbol_map=build_symbol_map(),
        property_rules=build_property_rules(),
        global_map=default_global_map(VIEWDRAW_LIKE, COMPOSER_LIKE),
        verify=verify,
        replacement_strategy=strategy,
    )


def generate_chain_schematic(
    libraries: LibrarySet,
    pages: int = 2,
    chains_per_page: int = 4,
    stages: int = 6,
    seed: int = 1996,
    offgrid_labels: int = 0,
) -> Schematic:
    """A parametric multi-page corpus cell: rows of inverter chains.

    Chains are joined across pages implicitly by shared labels, each chain
    row carries a bus-style label, and a fraction of instances get analog
    properties — the statistical shape of the paper's migration workload.
    ``offgrid_labels`` nudges that many wire-label anchors off the drawing
    grid (the hand-edit artifacts the paper blames for snapping losses):
    those anchors cannot scale exactly onto the target grid, so migration
    snaps them with a SCALING warning and an ``approximated`` lineage
    record each.
    """
    rng = random.Random(seed)
    prims = libraries.library("vl_prims")
    inv = prims.get("inv")
    cell = Schematic(f"chain_p{pages}x{chains_per_page}x{stages}", VIEWDRAW_LIKE.name)
    pitch_x = 160
    pitch_y = 96
    nudged = 0

    for page_number in range(1, pages + 1):
        frame_w = 160 + (stages + 1) * pitch_x
        frame_h = 160 + chains_per_page * pitch_y
        page = cell.add_page(Rect(0, 0, frame_w, frame_h))
        for row in range(chains_per_page):
            y = 160 + row * pitch_y
            # Chain nets continue across the page boundary by shared label:
            # page p's trailing net and page p+1's incoming net are the same
            # electrical net, named CH<row>_<boundary>.
            incoming = f"CH{row}_{page_number - 1}"
            outgoing = f"CH{row}_{page_number}"
            wire = Wire([Point(96, y + 16), Point(160, y + 16)], label=incoming)
            if nudged < offgrid_labels:
                # x=97 is off the 8-unit lattice: 97 * 5/8 is not integral,
                # so rescaling must snap this anchor.
                wire.label_position = Point(97, y + 17)
                nudged += 1
            page.add_wire(wire)
            for stage in range(stages):
                x = 160 + stage * pitch_x
                name = f"P{page_number}R{row}S{stage}"
                instance = Instance(name, inv, Transform(Point(x, y)))
                if rng.random() < 0.25:
                    instance.properties.set("wl", f"{1 + stage}u/0.5u")
                page.add_instance(instance)
                if stage + 1 < stages:
                    page.add_wire(
                        Wire([Point(x + 64, y + 16), Point(x + pitch_x, y + 16)])
                    )
            # Trailing segment names the boundary net for the next page.
            end_x = 160 + (stages - 1) * pitch_x + 64
            page.add_wire(
                Wire([Point(end_x, y + 16), Point(end_x + 64, y + 16)], label=outgoing)
            )
    return cell
