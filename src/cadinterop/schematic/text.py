"""Cosmetic text adjustment between dialect font systems.

Section 2 ("Cosmetic issues"): "Font characters in Viewlogic are typically
smaller than in Cadence, and the origin of each character is offset from
the baseline.  For example, if the character 'E' is placed on a line in
Viewlogic, it may appear as an 'F' when translated directly to Cadence
Composer.  Rules for character scaling and offsets were defined in order to
correctly align text."

The failure mechanism modelled here: the source dialect anchors label text
*on* the glyph baseline while the target anchors *below* it; copying the
anchor verbatim drops the glyph so its lowest bar coincides with an
underlying wire and disappears visually ("E" -> "F").  The fix applies the
font scale factor and the baseline-offset delta to every label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Point
from cadinterop.schematic.dialects import Dialect, FontMetrics
from cadinterop.schematic.model import Page, Schematic, TextLabel


@dataclass
class TextAdjustReport:
    """Accounting for one cosmetic adjustment pass."""

    labels_adjusted: int = 0
    collisions_avoided: int = 0


def label_obscured_by_wire(label: TextLabel, page: Page) -> bool:
    """True if the label's glyph baseline coincides with a horizontal wire.

    This is the geometric condition under which the bottom bar of an "E"
    visually merges into a wire, reading as an "F".
    """
    baseline_y = label.baseline_y
    x1 = label.position.x
    x2 = x1 + max(1, len(label.text)) * label.width_per_char
    for wire in page.wires:
        for segment in wire.segments():
            if not segment.is_horizontal:
                continue
            if segment.a.y != baseline_y:
                continue
            lo, hi = sorted((segment.a.x, segment.b.x))
            if lo <= x2 and hi >= x1:
                return True
    return False


def adjust_labels(
    schematic: Schematic,
    source: Dialect,
    target: Dialect,
    log: Optional[IssueLog] = None,
) -> TextAdjustReport:
    """Apply font scaling and baseline-offset correction to every label."""
    report = TextAdjustReport()
    scale, baseline_delta = source.font.scale_to(target.font)

    for page in schematic.pages:
        for label in page.labels:
            original_baseline = label.baseline_y
            # First model the *naive* copy: target font metrics applied but
            # the anchor left verbatim.  This is how the "E" lands on a
            # wire and reads as an "F".
            label.height = target.font.height
            label.width_per_char = target.font.width_per_char
            label.baseline_offset = target.font.baseline_offset
            naively_obscured = label_obscured_by_wire(label, page)
            # The fix: shift the anchor so the glyph baseline stays where
            # the source dialect drew it: anchor' - offset' == anchor - offset.
            label.position = Point(
                label.position.x,
                original_baseline + target.font.baseline_offset,
            )
            report.labels_adjusted += 1
            if naively_obscured and not label_obscured_by_wire(label, page):
                report.collisions_avoided += 1
                if log is not None:
                    log.add(
                        Severity.NOTE, Category.COSMETIC, label.text,
                        "label baseline no longer coincides with a wire "
                        "('E' would have read as 'F')",
                        remedy="character scaling and offset rules applied",
                    )
    if log is not None and report.labels_adjusted:
        log.add(
            Severity.INFO, Category.COSMETIC, schematic.name,
            f"adjusted {report.labels_adjusted} labels: height x{scale:.2f}, "
            f"baseline offset {baseline_delta:+d}",
        )
    return report
