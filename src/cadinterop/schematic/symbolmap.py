"""Symbol replacement maps for component migration.

Section 2 ("Symbol replacement mapping"): "Library, name, and view mappings,
along with origin offsets and rotation codes, were defined for each
Viewlogic component to be replaced by a Cadence component.  For situations
where pin naming conventions differed, a pin name map was also created."

A :class:`SymbolMap` is the table the migration engine consults: for each
source (library, name, view) it yields the target master, the origin offset
and rotation correction that make the replacement land where the original
sat, and a pin-name map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Orientation, Point
from cadinterop.schematic.model import LibrarySet, Symbol


@dataclass(frozen=True)
class SymbolKey:
    """Identity of a symbol master: library / cell name / view."""

    library: str
    name: str
    view: str = "symbol"

    @staticmethod
    def of(symbol: Symbol) -> "SymbolKey":
        return SymbolKey(symbol.library, symbol.name, symbol.view)

    def __str__(self) -> str:
        return f"{self.library}/{self.name}/{self.view}"


@dataclass
class SymbolMapping:
    """One source->target component replacement rule."""

    source: SymbolKey
    target: SymbolKey
    origin_offset: Point = Point(0, 0)
    rotation: Orientation = Orientation.R0
    pin_map: Dict[str, str] = field(default_factory=dict)

    def map_pin(self, source_pin: str) -> str:
        return self.pin_map.get(source_pin, source_pin)

    def unmap_pin(self, target_pin: str) -> str:
        for src, tgt in self.pin_map.items():
            if tgt == target_pin:
                return src
        return target_pin


class SymbolMapError(Exception):
    """A mapping table inconsistency (duplicate source, bad pin map...)."""


class SymbolMap:
    """The complete replacement table used by a migration run."""

    def __init__(self, mappings: Iterable[SymbolMapping] = ()) -> None:
        self._by_source: Dict[SymbolKey, SymbolMapping] = {}
        for mapping in mappings:
            self.add(mapping)

    def add(self, mapping: SymbolMapping) -> SymbolMapping:
        if mapping.source in self._by_source:
            raise SymbolMapError(f"duplicate mapping for {mapping.source}")
        self._by_source[mapping.source] = mapping
        return mapping

    def lookup(self, key: SymbolKey) -> Optional[SymbolMapping]:
        return self._by_source.get(key)

    def lookup_symbol(self, symbol: Symbol) -> Optional[SymbolMapping]:
        return self.lookup(SymbolKey.of(symbol))

    def __len__(self) -> int:
        return len(self._by_source)

    def __iter__(self) -> Iterator[SymbolMapping]:
        return iter(self._by_source.values())

    def validate(self, source_libs: LibrarySet, target_libs: LibrarySet) -> IssueLog:
        """Check every rule against the actual libraries.

        Verifies: both masters exist; every pin-map source pin exists on the
        source master and target pin on the target master; every source pin
        has *some* target pin (identity or mapped) — a dangling pin means a
        net cannot be rerouted and is flagged as an error; pin maps must not
        merge two source pins onto one target pin.
        """
        log = IssueLog()
        for mapping in self:
            src, tgt = mapping.source, mapping.target
            if not source_libs.has(src.library, src.name, src.view):
                log.add(
                    Severity.ERROR, Category.STRUCTURE_MAPPING, str(src),
                    "source symbol not found in source libraries",
                    remedy="fix the mapping table or install the library",
                )
                continue
            if not target_libs.has(tgt.library, tgt.name, tgt.view):
                log.add(
                    Severity.ERROR, Category.STRUCTURE_MAPPING, str(tgt),
                    "target symbol not found in target libraries",
                    remedy="qualify the target library before migration",
                )
                continue
            source_symbol = source_libs.resolve(src.library, src.name, src.view)
            target_symbol = target_libs.resolve(tgt.library, tgt.name, tgt.view)
            target_pin_names = set(target_symbol.pin_names())

            seen_targets: Dict[str, str] = {}
            for map_src, map_tgt in mapping.pin_map.items():
                if not source_symbol.has_pin(map_src):
                    log.add(
                        Severity.ERROR, Category.NAME_MAPPING, f"{src}:{map_src}",
                        "pin map source pin does not exist on source symbol",
                    )
                if map_tgt not in target_pin_names:
                    log.add(
                        Severity.ERROR, Category.NAME_MAPPING, f"{tgt}:{map_tgt}",
                        "pin map target pin does not exist on target symbol",
                    )
                if map_tgt in seen_targets:
                    log.add(
                        Severity.ERROR, Category.NAME_MAPPING, f"{tgt}:{map_tgt}",
                        f"pins {seen_targets[map_tgt]!r} and {map_src!r} both map onto it",
                        remedy="pin maps must be injective",
                    )
                seen_targets[map_tgt] = map_src

            for pin in source_symbol.pins:
                mapped = mapping.map_pin(pin.name)
                if mapped not in target_pin_names:
                    log.add(
                        Severity.ERROR, Category.CONNECTIVITY, f"{src}:{pin.name}",
                        f"no target pin for source pin (wanted {mapped!r} on {tgt})",
                        remedy="add a pin name map entry",
                    )
        return log

    def coverage(self, design_keys: Iterable[SymbolKey]) -> Tuple[List[SymbolKey], List[SymbolKey]]:
        """Partition design symbol keys into (mapped, unmapped)."""
        mapped: List[SymbolKey] = []
        unmapped: List[SymbolKey] = []
        for key in design_keys:
            (mapped if key in self._by_source else unmapped).append(key)
        return mapped, unmapped
