"""Schematic dialect descriptors.

A *dialect* bundles every vendor-specific convention Section 2 of the paper
had to bridge: drawing grid and pin pitch, bus-reference grammar, whether
hierarchy and off-page connectors are required or implicit, font metrics
(the "E becomes F" cosmetic bug), and the names of the special connector
symbols in the native libraries.

Two concrete dialects are provided, modelled on the paper's source and
target systems:

* :data:`VIEWDRAW_LIKE` — 1/10-inch grid, 2/10-inch pin pitch, condensed bus
  syntax with postfix indicators, implicit cross-page connection by name,
  small baseline-offset fonts.
* :data:`COMPOSER_LIKE` — 1/16-inch grid, 2/16-inch pin pitch, explicit bus
  syntax, mandatory hierarchy and off-page connectors, larger fonts.

Both grids are expressed in a shared database unit of 1/160 inch so the
paper's scale-down is an exact rational operation (pitch 16 -> pitch 10,
factor 5/8 per grid index... in fact positions scale by the pitch ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from cadinterop.common.geometry import Grid
from cadinterop.schematic.busnotation import (
    BusSyntax,
    COMPOSER_BUS_SYNTAX,
    VIEWDRAW_BUS_SYNTAX,
)

#: Shared database resolution: 160 units per inch makes both a 1/10-inch
#: pitch (16 units) and a 1/16-inch pitch (10 units) exact integers.
UNITS_PER_INCH = 160


@dataclass(frozen=True)
class FontMetrics:
    """Text rendering metrics; mismatches cause the paper's cosmetic bugs.

    ``baseline_offset`` is the vertical distance from the label anchor to
    the glyph baseline.  Viewdraw-like anchors sit *on* the baseline while
    Composer-like anchors sit below it, so untranslated labels shift — the
    paper's example of an "E" appearing as an "F" when the lowest bar is
    swallowed by an underlying wire.
    """

    height: int
    width_per_char: int
    baseline_offset: int

    def scale_to(self, other: "FontMetrics") -> Tuple[float, int]:
        """Return (height scale factor, baseline delta) for translation."""
        return (other.height / self.height, other.baseline_offset - self.baseline_offset)


@dataclass(frozen=True)
class ConnectorSymbols:
    """Native-library names of the special symbols a dialect uses."""

    library: str
    hier_in: str = "hierIn"
    hier_out: str = "hierOut"
    hier_inout: str = "hierInOut"
    offpage: str = "offPage"
    power: str = "vdd"
    ground: str = "gnd"


@dataclass(frozen=True)
class Dialect:
    """All conventions of one schematic system."""

    name: str
    grid: Grid
    pin_pitch_units: int
    bus_syntax: BusSyntax
    requires_hier_connectors: bool
    requires_offpage_connectors: bool
    implicit_cross_page_by_name: bool
    font: FontMetrics
    connectors: ConnectorSymbols
    #: Characters legal in object names beyond alphanumerics/underscore.
    extra_name_chars: str = ""

    @property
    def pin_pitch_inches(self) -> float:
        return self.pin_pitch_units / self.grid.units_per_inch

    def legal_name(self, name: str) -> bool:
        if not name:
            return False
        allowed = set(self.extra_name_chars)
        for index, char in enumerate(name):
            if char.isalnum() or char == "_" or char in allowed:
                continue
            if index > 0 and char in self.bus_syntax.postfix_chars and self.bus_syntax.allows_postfix:
                continue
            if char in (self.bus_syntax.open_bracket, self.bus_syntax.close_bracket,
                        self.bus_syntax.range_separator):
                continue
            return False
        return True


VIEWDRAW_LIKE = Dialect(
    name="viewdraw-like",
    grid=Grid(name="tenth-inch", units_per_inch=UNITS_PER_INCH, pitch_units=16),
    pin_pitch_units=32,  # 2/10 inch
    bus_syntax=VIEWDRAW_BUS_SYNTAX,
    requires_hier_connectors=False,
    requires_offpage_connectors=False,
    implicit_cross_page_by_name=True,
    font=FontMetrics(height=8, width_per_char=6, baseline_offset=0),
    connectors=ConnectorSymbols(library="vl_builtin"),
    extra_name_chars="$",
)

COMPOSER_LIKE = Dialect(
    name="composer-like",
    grid=Grid(name="sixteenth-inch", units_per_inch=UNITS_PER_INCH, pitch_units=10),
    pin_pitch_units=20,  # 2/16 inch
    bus_syntax=COMPOSER_BUS_SYNTAX,
    requires_hier_connectors=True,
    requires_offpage_connectors=True,
    implicit_cross_page_by_name=False,
    font=FontMetrics(height=10, width_per_char=7, baseline_offset=2),
    connectors=ConnectorSymbols(library="cd_basic"),
)

_REGISTRY: Dict[str, Dialect] = {
    VIEWDRAW_LIKE.name: VIEWDRAW_LIKE,
    COMPOSER_LIKE.name: COMPOSER_LIKE,
}


def register_dialect(dialect: Dialect) -> Dialect:
    """Register a custom dialect; refuses to overwrite an existing name."""
    if dialect.name in _REGISTRY:
        raise ValueError(f"dialect {dialect.name!r} already registered")
    _REGISTRY[dialect.name] = dialect
    return dialect


def get_dialect(name: str) -> Dialect:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown schematic dialect {name!r}") from None


def known_dialects() -> Tuple[str, ...]:
    return tuple(_REGISTRY)
