"""Schematic data model: libraries, symbols, pages, instances, nets, labels.

The model is deliberately *vendor-neutral*: both synthetic dialects
(Viewdraw-like and Composer-like) serialize to and from this structure, and
the migration pipeline of :mod:`cadinterop.schematic.migrate` transforms one
dialect's conventions into the other's within it.

Connectivity is geometric, as in real schematic editors: wires are Manhattan
polylines, a net is the set of wires/pins/labels that touch.  The
:mod:`cadinterop.schematic.netlist` extractor derives logical connectivity
from this geometry, which is what migration verification compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from cadinterop.common.geometry import (
    Orientation,
    Point,
    Rect,
    Segment,
    Transform,
    path_segments,
)
from cadinterop.common.properties import PropertyBag, PropertyValue


class SchematicError(Exception):
    """Base error for schematic model violations."""


class PinDirection:
    """Pin / connector direction constants (string-valued for serialization)."""

    INPUT = "input"
    OUTPUT = "output"
    BIDIRECTIONAL = "bidirectional"
    ALL = (INPUT, OUTPUT, BIDIRECTIONAL)


@dataclass
class SymbolPin:
    """A pin on a symbol master, positioned in symbol-local coordinates."""

    name: str
    position: Point
    direction: str = PinDirection.BIDIRECTIONAL

    def __post_init__(self) -> None:
        if self.direction not in PinDirection.ALL:
            raise SchematicError(f"bad pin direction {self.direction!r} on pin {self.name!r}")


@dataclass
class Symbol:
    """A symbol master: body outline, pins, default properties.

    ``kind`` distinguishes ordinary components from the special masters the
    Composer-like dialect requires: hierarchy connectors, off-page
    connectors, and global symbols (power/ground).
    """

    library: str
    name: str
    view: str = "symbol"
    body: Rect = field(default_factory=lambda: Rect(0, 0, 32, 32))
    pins: List[SymbolPin] = field(default_factory=list)
    properties: PropertyBag = field(default_factory=PropertyBag)
    kind: str = "component"

    KINDS = ("component", "hier_connector", "offpage_connector", "global")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise SchematicError(f"bad symbol kind {self.kind!r}")
        seen = set()
        for pin in self.pins:
            if pin.name in seen:
                raise SchematicError(f"duplicate pin {pin.name!r} on symbol {self.full_name}")
            seen.add(pin.name)

    @property
    def full_name(self) -> str:
        return f"{self.library}/{self.name}/{self.view}"

    def pin(self, name: str) -> SymbolPin:
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise SchematicError(f"symbol {self.full_name} has no pin {name!r}")

    def has_pin(self, name: str) -> bool:
        return any(pin.name == name for pin in self.pins)

    def pin_names(self) -> List[str]:
        return [pin.name for pin in self.pins]


class Library:
    """A named collection of symbol masters, keyed by (name, view)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._symbols: Dict[Tuple[str, str], Symbol] = {}

    def add(self, symbol: Symbol) -> Symbol:
        if symbol.library != self.name:
            raise SchematicError(
                f"symbol {symbol.full_name} belongs to library {symbol.library!r}, not {self.name!r}"
            )
        key = (symbol.name, symbol.view)
        if key in self._symbols:
            raise SchematicError(f"duplicate symbol {symbol.full_name}")
        self._symbols[key] = symbol
        return symbol

    def get(self, name: str, view: str = "symbol") -> Symbol:
        try:
            return self._symbols[(name, view)]
        except KeyError:
            raise SchematicError(f"library {self.name!r} has no symbol {name}/{view}") from None

    def has(self, name: str, view: str = "symbol") -> bool:
        return (name, view) in self._symbols

    def symbols(self) -> List[Symbol]:
        return list(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)


class LibrarySet:
    """All libraries visible to a design."""

    def __init__(self, libraries: Iterable[Library] = ()) -> None:
        self._libraries: Dict[str, Library] = {}
        for library in libraries:
            self.add(library)

    def add(self, library: Library) -> Library:
        if library.name in self._libraries:
            raise SchematicError(f"duplicate library {library.name!r}")
        self._libraries[library.name] = library
        return library

    def library(self, name: str) -> Library:
        try:
            return self._libraries[name]
        except KeyError:
            raise SchematicError(f"no library named {name!r}") from None

    def resolve(self, library: str, name: str, view: str = "symbol") -> Symbol:
        return self.library(library).get(name, view)

    def has(self, library: str, name: str, view: str = "symbol") -> bool:
        return library in self._libraries and self._libraries[library].has(name, view)

    def libraries(self) -> List[Library]:
        return list(self._libraries.values())


@dataclass
class Instance:
    """A placed occurrence of a symbol on a page."""

    name: str
    symbol: Symbol
    transform: Transform
    properties: PropertyBag = field(default_factory=PropertyBag)

    def pin_position(self, pin_name: str) -> Point:
        return self.transform.apply(self.symbol.pin(pin_name).position)

    def pin_positions(self) -> Dict[str, Point]:
        return {pin.name: self.transform.apply(pin.position) for pin in self.symbol.pins}

    def bounding_box(self) -> Rect:
        return self.transform.apply_rect(self.symbol.body)

    @property
    def orientation(self) -> Orientation:
        return self.transform.orientation


@dataclass
class Wire:
    """A Manhattan polyline carrying connectivity, optionally labeled.

    The label text is in the *owning dialect's* bus syntax; migration rewrites
    it (see :mod:`cadinterop.schematic.busnotation`).
    """

    points: List[Point]
    label: Optional[str] = None
    label_position: Optional[Point] = None

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise SchematicError("wire needs at least two points")
        # Validate Manhattan-ness eagerly; path_segments raises otherwise.
        path_segments(self.points)

    def segments(self) -> List[Segment]:
        return path_segments(self.points)

    @property
    def endpoints(self) -> Tuple[Point, Point]:
        return (self.points[0], self.points[-1])

    def touches_point(self, point: Point) -> bool:
        return any(seg.contains_point(point) for seg in self.segments())

    def length(self) -> int:
        return sum(seg.length for seg in self.segments())


@dataclass
class TextLabel:
    """Free-standing annotation text (not connectivity-bearing).

    ``baseline_offset`` is the dialect font's anchor-to-baseline distance:
    the glyph baseline (bottom of an "E") sits ``baseline_offset`` *below*
    the anchor ``position``.  Copying an anchor verbatim between dialects
    with different offsets therefore moves the visible glyphs — the paper's
    "E appears as an F" cosmetic bug.
    """

    text: str
    position: Point
    height: int = 8
    width_per_char: int = 6
    baseline_offset: int = 0

    @property
    def baseline_y(self) -> int:
        return self.position.y - self.baseline_offset

    def bounding_box(self) -> Rect:
        width = max(1, len(self.text)) * self.width_per_char
        y1 = self.baseline_y
        return Rect(self.position.x, y1, self.position.x + width, y1 + self.height)


@dataclass
class Page:
    """One sheet of a multi-page schematic."""

    number: int
    frame: Rect
    instances: List[Instance] = field(default_factory=list)
    wires: List[Wire] = field(default_factory=list)
    labels: List[TextLabel] = field(default_factory=list)

    def add_instance(self, instance: Instance) -> Instance:
        if any(existing.name == instance.name for existing in self.instances):
            raise SchematicError(f"duplicate instance {instance.name!r} on page {self.number}")
        self.instances.append(instance)
        return instance

    def add_wire(self, wire: Wire) -> Wire:
        self.wires.append(wire)
        return wire

    def add_label(self, label: TextLabel) -> TextLabel:
        self.labels.append(label)
        return label

    def instance(self, name: str) -> Instance:
        for instance in self.instances:
            if instance.name == name:
                return instance
        raise SchematicError(f"page {self.number} has no instance {name!r}")

    def remove_instance(self, name: str) -> Instance:
        for index, instance in enumerate(self.instances):
            if instance.name == name:
                return self.instances.pop(index)
        raise SchematicError(f"page {self.number} has no instance {name!r}")


@dataclass
class Port:
    """A port of a schematic cell (its interface when used hierarchically)."""

    name: str
    direction: str = PinDirection.BIDIRECTIONAL

    def __post_init__(self) -> None:
        if self.direction not in PinDirection.ALL:
            raise SchematicError(f"bad port direction {self.direction!r} on port {self.name!r}")


class Schematic:
    """A schematic cell: ports plus one or more pages, in a named dialect.

    ``dialect`` is the name of the conventions the drawing currently obeys
    (grid, bus syntax, connector discipline); migration produces a new
    Schematic in the target dialect.
    """

    def __init__(
        self,
        name: str,
        dialect: str,
        ports: Optional[Sequence[Port]] = None,
        properties: Optional[PropertyBag] = None,
    ) -> None:
        self.name = name
        self.dialect = dialect
        self.ports: List[Port] = list(ports or [])
        self.properties = properties if properties is not None else PropertyBag()
        self.pages: List[Page] = []

    def add_page(self, frame: Rect) -> Page:
        page = Page(number=len(self.pages) + 1, frame=frame)
        self.pages.append(page)
        return page

    def page(self, number: int) -> Page:
        for page in self.pages:
            if page.number == number:
                return page
        raise SchematicError(f"schematic {self.name!r} has no page {number}")

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise SchematicError(f"schematic {self.name!r} has no port {name!r}")

    def add_port(self, port: Port) -> Port:
        if any(existing.name == port.name for existing in self.ports):
            raise SchematicError(f"duplicate port {port.name!r}")
        self.ports.append(port)
        return port

    def all_instances(self) -> Iterator[Tuple[Page, Instance]]:
        for page in self.pages:
            for instance in page.instances:
                yield page, instance

    def all_wires(self) -> Iterator[Tuple[Page, Wire]]:
        for page in self.pages:
            for wire in page.wires:
                yield page, wire

    def instance_count(self) -> int:
        return sum(len(page.instances) for page in self.pages)

    def wire_count(self) -> int:
        return sum(len(page.wires) for page in self.pages)

    def find_instance(self, name: str) -> Tuple[Page, Instance]:
        for page, instance in self.all_instances():
            if instance.name == name:
                return page, instance
        raise SchematicError(f"schematic {self.name!r} has no instance {name!r}")


class Design:
    """A hierarchical design: schematic cells plus the libraries they use."""

    def __init__(self, name: str, libraries: Optional[LibrarySet] = None) -> None:
        self.name = name
        self.libraries = libraries or LibrarySet()
        self._cells: Dict[str, Schematic] = {}
        self.top: Optional[str] = None

    def add_cell(self, schematic: Schematic, top: bool = False) -> Schematic:
        if schematic.name in self._cells:
            raise SchematicError(f"duplicate cell {schematic.name!r}")
        self._cells[schematic.name] = schematic
        if top or self.top is None:
            self.top = schematic.name
        return schematic

    def cell(self, name: str) -> Schematic:
        try:
            return self._cells[name]
        except KeyError:
            raise SchematicError(f"design {self.name!r} has no cell {name!r}") from None

    def has_cell(self, name: str) -> bool:
        return name in self._cells

    def cells(self) -> List[Schematic]:
        return list(self._cells.values())

    @property
    def top_cell(self) -> Schematic:
        if self.top is None:
            raise SchematicError(f"design {self.name!r} has no top cell")
        return self.cell(self.top)
