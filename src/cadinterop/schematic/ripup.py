"""Component replacement with minimal net-segment rip-up (paper Figure 1).

"Exar's requirements included taking the existing schematics ... and
replacing the ... primitive library components with existing library
components from the Cadence system.  As shown in Figure 1, this component
replacement required ripping up specific existing components, along with the
segments of the nets connected to the pins of those components.  The ripped
up net segments were then rerouted to the pins of the replacement
components symbols.  The number of ripped up net segments was minimized,
and the resulting ... schematic ... appeared graphically very similar to
the original."

Two strategies are provided so the minimization claim is measurable:

* :func:`replace_component` — the paper's approach: only the wire segments
  that *end on* a moved pin are ripped; each is rerouted with at most one
  added jog.
* ``strategy="naive"`` — rip every segment of every attached wire and
  reroute each from its far end with a fresh L-route; the baseline that
  shows what minimization buys (benchmark E1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Point, Segment, Transform
from cadinterop.schematic.model import Instance, Page, SchematicError, Symbol, Wire
from cadinterop.schematic.symbolmap import SymbolMapping


@dataclass
class ReplacementStats:
    """Accounting for one component replacement."""

    instance: str
    ripped_segments: int = 0
    added_segments: int = 0
    retained_segments: int = 0
    moved_pins: int = 0
    unmoved_pins: int = 0

    @property
    def total_original_segments(self) -> int:
        return self.ripped_segments + self.retained_segments

    @property
    def similarity(self) -> float:
        """Fraction of original attached-wire segments left untouched."""
        total = self.total_original_segments
        return 1.0 if total == 0 else self.retained_segments / total


class RipupError(SchematicError):
    """Replacement could not be completed (unreachable pin, bad wiring)."""


def replace_component(
    page: Page,
    instance_name: str,
    mapping: SymbolMapping,
    target_symbol: Symbol,
    log: Optional[IssueLog] = None,
    strategy: str = "minimal",
) -> ReplacementStats:
    """Replace one instance on ``page`` per ``mapping``, rerouting its nets.

    The replacement instance is placed at the original transform composed
    with the mapping's origin offset and rotation code, so it lands where
    the original sat.  Wires attached to each source pin are rerouted to the
    corresponding target pin (through the pin-name map).
    """
    if strategy not in ("minimal", "naive"):
        raise ValueError(f"unknown strategy {strategy!r}")
    log = log if log is not None else IssueLog()
    old_instance = page.instance(instance_name)
    stats = ReplacementStats(instance=instance_name)

    correction = Transform(mapping.origin_offset, mapping.rotation)
    new_transform = correction.compose(old_instance.transform)
    new_instance = Instance(
        name=old_instance.name,
        symbol=target_symbol,
        transform=new_transform,
        properties=old_instance.properties.copy(),
    )

    # Old pin position -> new pin position, via the pin-name map.
    old_positions = old_instance.pin_positions()
    new_positions = new_instance.pin_positions()
    pin_moves: Dict[Point, Point] = {}
    for old_pin, old_pos in old_positions.items():
        new_pin = mapping.map_pin(old_pin)
        if new_pin not in new_positions:
            raise RipupError(
                f"pin {old_pin!r} of {instance_name!r} has no target pin "
                f"{new_pin!r} on {target_symbol.full_name}"
            )
        new_pos = new_positions[new_pin]
        pin_moves[old_pos] = new_pos
        if old_pos == new_pos:
            stats.unmoved_pins += 1
        else:
            stats.moved_pins += 1

    page.remove_instance(instance_name)
    page.add_instance(new_instance)

    for wire_index, wire in enumerate(list(page.wires)):
        attached_ends = [
            (end_index, point)
            for end_index, point in ((0, wire.points[0]), (-1, wire.points[-1]))
            if point in pin_moves
        ]
        mid_attach = any(
            wire.touches_point(old_pos) and old_pos not in wire.endpoints
            for old_pos in pin_moves
        )
        if mid_attach:
            log.add(
                Severity.WARNING, Category.CONNECTIVITY, instance_name,
                f"wire taps pin mid-segment; rerouting endpoint-attached wires only",
                remedy="verification will flag any broken connection",
            )
        if not attached_ends:
            continue

        if strategy == "naive":
            _naive_reroute(wire, attached_ends, pin_moves, stats)
        else:
            _minimal_reroute(wire, attached_ends, pin_moves, stats)

    return stats


def _minimal_reroute(
    wire: Wire,
    attached_ends: List[Tuple[int, Point]],
    pin_moves: Dict[Point, Point],
    stats: ReplacementStats,
) -> None:
    """Move only the terminal segment(s) touching a moved pin."""
    original_segment_count = len(wire.segments())
    touched = 0
    for end_index, old_pos in attached_ends:
        new_pos = pin_moves[old_pos]
        if new_pos == old_pos:
            continue
        touched += _reroute_end(wire, end_index, new_pos, stats)
    stats.retained_segments += max(0, original_segment_count - touched)


def _reroute_end(wire: Wire, end_index: int, new_pos: Point, stats: ReplacementStats) -> int:
    """Rewire one end of ``wire`` to ``new_pos``; returns segments ripped."""
    points = wire.points
    if end_index == 0:
        anchor = points[1]
        end_pos = points[0]
    else:
        anchor = points[-2]
        end_pos = points[-1]

    # One original segment (anchor -> end) is always consumed.
    if new_pos == anchor:
        # Degenerate: the pin moved onto the anchor; drop the segment.
        replacement: List[Point] = [new_pos]
        added = 0
    elif new_pos.x == anchor.x or new_pos.y == anchor.y:
        replacement = [new_pos]
        added = 1
    else:
        # Need a jog: prefer the elbow that keeps the original segment's axis.
        old_segment_horizontal = anchor.y == end_pos.y
        if old_segment_horizontal:
            elbow = Point(new_pos.x, anchor.y)
        else:
            elbow = Point(anchor.x, new_pos.y)
        replacement = [elbow, new_pos]
        added = 2

    if end_index == 0:
        wire.points = list(reversed(replacement)) + points[1:]
    else:
        wire.points = points[:-1] + replacement
    _cleanup_polyline(wire)
    stats.ripped_segments += 1
    stats.added_segments += added
    return 1


def _naive_reroute(
    wire: Wire,
    attached_ends: List[Tuple[int, Point]],
    pin_moves: Dict[Point, Point],
    stats: ReplacementStats,
) -> None:
    """Baseline: throw the whole wire away and L-route from the far end."""
    original_segments = len(wire.segments())
    stats.ripped_segments += original_segments

    # Determine the far anchor (an end NOT attached to a moved pin, else the
    # first attached end's new position becomes the start).
    attached_indices = {idx for idx, _pos in attached_ends}
    if 0 in attached_indices and -1 in attached_indices:
        start = pin_moves[wire.points[0]]
        end = pin_moves[wire.points[-1]]
    elif 0 in attached_indices:
        start = pin_moves[wire.points[0]]
        end = wire.points[-1]
    else:
        start = wire.points[0]
        end = pin_moves[wire.points[-1]]

    if start == end:
        # Cannot produce a legal zero-length wire; keep a minimal stub by
        # offsetting through a unit elbow (counts as rerouting artifact).
        wire.points = [start, Point(start.x + 1, start.y), Point(start.x + 1, start.y + 1)]
        stats.added_segments += 2
        return
    if start.x == end.x or start.y == end.y:
        wire.points = [start, end]
        stats.added_segments += 1
    else:
        elbow = Point(end.x, start.y)
        wire.points = [start, elbow, end]
        stats.added_segments += 2
    _cleanup_polyline(wire)


def _cleanup_polyline(wire: Wire) -> None:
    """Remove repeated points and merge collinear runs in place."""
    cleaned: List[Point] = []
    for point in wire.points:
        if cleaned and point == cleaned[-1]:
            continue
        if len(cleaned) >= 2:
            a, b = cleaned[-2], cleaned[-1]
            collinear_x = a.x == b.x == point.x
            collinear_y = a.y == b.y == point.y
            if collinear_x or collinear_y:
                cleaned[-1] = point
                continue
        cleaned.append(point)
    if len(cleaned) < 2:
        raise RipupError("rerouting collapsed a wire to a single point")
    wire.points = cleaned


@dataclass
class BatchReplacementReport:
    """Aggregate stats over a page- or design-wide replacement pass."""

    per_instance: List[ReplacementStats] = field(default_factory=list)

    def add(self, stats: ReplacementStats) -> None:
        self.per_instance.append(stats)

    @property
    def total_ripped(self) -> int:
        return sum(s.ripped_segments for s in self.per_instance)

    @property
    def total_added(self) -> int:
        return sum(s.added_segments for s in self.per_instance)

    @property
    def total_retained(self) -> int:
        return sum(s.retained_segments for s in self.per_instance)

    @property
    def mean_similarity(self) -> float:
        if not self.per_instance:
            return 1.0
        return sum(s.similarity for s in self.per_instance) / len(self.per_instance)

    @property
    def replacements(self) -> int:
        return len(self.per_instance)
