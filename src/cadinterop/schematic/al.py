"""a/L — the Access Language, a small Lisp dialect for migration callbacks.

Section 2 of the paper: "These requirements were handled by the addition of
Access Language (a/L) callbacks for a selected set of objects.  Concurrent
CAE Solution's a/L is a Lisp dialect and is set up so that a user can
interact with the entire design hierarchy during the migration process."

This module implements that language: a tokenizer, s-expression reader, and
lexically scoped evaluator with the design-hierarchy builtins a migration
callback needs — reading, writing, renaming, and deleting properties on the
object being migrated, splitting one property into several (the paper's
analog-property example), and string/number manipulation.

The host binds the object under migration to the symbol ``obj``; callbacks
are ordinary a/L expressions, e.g. splitting a combined analog spec::

    (let ((spec (get-prop obj "wl")))
      (set-prop! obj "w" (car (split spec "/")))
      (set-prop! obj "l" (cadr (split spec "/")))
      (del-prop! obj "wl"))
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from cadinterop.common.properties import PropertyBag


class ALError(Exception):
    """Any a/L tokenization, parse, or evaluation failure."""


@dataclass(frozen=True)
class Symbol:
    """An a/L symbol (interned by name equality)."""

    name: str

    def __repr__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<comment>;[^\n]*)
      | (?P<open>\()
      | (?P<close>\))
      | (?P<quote>')
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<symbol>[^\s()'";]+)
    )""",
    re.VERBOSE,
)


def tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip():
                raise ALError(f"bad character at offset {pos}: {text[pos]!r}")
            break
        pos = match.end()
        if match.lastgroup != "comment":
            tokens.append(match.group(match.lastgroup))
    return tokens


def _atom(token: str) -> Any:
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if token == "#t":
        return True
    if token == "#f":
        return False
    if token == "nil":
        return None
    return Symbol(token)


def parse(text: str) -> List[Any]:
    """Read all top-level forms from ``text``."""
    tokens = tokenize(text)
    forms: List[Any] = []
    index = 0

    def read_form() -> Any:
        nonlocal index
        if index >= len(tokens):
            raise ALError("unexpected end of input")
        token = tokens[index]
        index += 1
        if token == "(":
            items: List[Any] = []
            while True:
                if index >= len(tokens):
                    raise ALError("unterminated list")
                if tokens[index] == ")":
                    index += 1
                    return items
                items.append(read_form())
        if token == ")":
            raise ALError("unexpected ')'")
        if token == "'":
            return [Symbol("quote"), read_form()]
        return _atom(token)

    while index < len(tokens):
        forms.append(read_form())
    return forms


# ---------------------------------------------------------------------------
# Environment & evaluator
# ---------------------------------------------------------------------------


class Environment:
    """A lexical frame chained to an enclosing frame."""

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self._parent = parent
        self._bindings: Dict[str, Any] = {}

    def define(self, name: str, value: Any) -> None:
        self._bindings[name] = value

    def set(self, name: str, value: Any) -> None:
        frame = self._find(name)
        if frame is None:
            raise ALError(f"set! of undefined variable {name!r}")
        frame._bindings[name] = value

    def lookup(self, name: str) -> Any:
        frame = self._find(name)
        if frame is None:
            raise ALError(f"undefined variable {name!r}")
        return frame._bindings[name]

    def _find(self, name: str) -> Optional["Environment"]:
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return env
            env = env._parent
        return None


@dataclass
class Lambda:
    """A user-defined a/L procedure closing over its defining environment."""

    params: List[str]
    body: List[Any]
    env: Environment

    def __call__(self, *args: Any) -> Any:
        if len(args) != len(self.params):
            raise ALError(f"lambda expected {len(self.params)} args, got {len(args)}")
        frame = Environment(self.env)
        for name, value in zip(self.params, args):
            frame.define(name, value)
        result = None
        for form in self.body:
            result = evaluate(form, frame)
        return result


def evaluate(form: Any, env: Environment) -> Any:
    """Evaluate one form in ``env``."""
    while True:
        if isinstance(form, Symbol):
            return env.lookup(form.name)
        if not isinstance(form, list):
            return form
        if not form:
            return []
        head = form[0]
        if isinstance(head, Symbol):
            name = head.name
            if name == "quote":
                return form[1]
            if name == "if":
                test = evaluate(form[1], env)
                if test is not None and test is not False:
                    form = form[2]
                elif len(form) > 3:
                    form = form[3]
                else:
                    return None
                continue
            if name == "cond":
                for clause in form[1:]:
                    test = clause[0]
                    is_else = isinstance(test, Symbol) and test.name == "else"
                    value = True if is_else else evaluate(test, env)
                    if value is not None and value is not False:
                        result = None
                        for expr in clause[1:]:
                            result = evaluate(expr, env)
                        return result if clause[1:] else value
                return None
            if name == "define":
                target = form[1]
                if isinstance(target, list):
                    # (define (f a b) body...) sugar
                    fn_name = target[0]
                    params = [p.name for p in target[1:]]
                    env.define(fn_name.name, Lambda(params, form[2:], env))
                    return None
                env.define(target.name, evaluate(form[2], env))
                return None
            if name == "set!":
                env.set(form[1].name, evaluate(form[2], env))
                return None
            if name == "lambda":
                params = [p.name for p in form[1]]
                return Lambda(params, form[2:], env)
            if name == "let":
                frame = Environment(env)
                for binding in form[1]:
                    frame.define(binding[0].name, evaluate(binding[1], frame))
                result = None
                for expr in form[2:-1]:
                    evaluate(expr, frame)
                env, form = frame, form[-1] if len(form) > 2 else None
                if form is None:
                    return None
                continue
            if name == "begin" or name == "progn":
                for expr in form[1:-1]:
                    evaluate(expr, env)
                if len(form) == 1:
                    return None
                form = form[-1]
                continue
            if name == "and":
                value: Any = True
                for expr in form[1:]:
                    value = evaluate(expr, env)
                    if value is False or value is None:
                        return False
                return value
            if name == "or":
                for expr in form[1:]:
                    value = evaluate(expr, env)
                    if value is not False and value is not None:
                        return value
                return False
            if name == "while":
                while True:
                    test = evaluate(form[1], env)
                    if test is False or test is None:
                        return None
                    for expr in form[2:]:
                        evaluate(expr, env)
            if name == "foreach":
                # (foreach x list body...)
                var = form[1].name
                items = evaluate(form[2], env)
                frame = Environment(env)
                for item in items:
                    frame.define(var, item)
                    for expr in form[3:]:
                        evaluate(expr, frame)
                return None
        # Application
        fn = evaluate(head, env)
        args = [evaluate(arg, env) for arg in form[1:]]
        if not callable(fn):
            raise ALError(f"attempt to call non-procedure {fn!r}")
        return fn(*args)


# ---------------------------------------------------------------------------
# Builtins, including design-hierarchy access
# ---------------------------------------------------------------------------


def _truthy_eq(a: Any, b: Any) -> bool:
    return a == b


def _builtin_split(text: str, sep: str) -> List[str]:
    return list(str(text).split(sep))


def standard_environment() -> Environment:
    """The global a/L environment with arithmetic, list and string builtins."""
    env = Environment()
    builtins: Dict[str, Callable[..., Any]] = {
        "+": lambda *a: sum(a),
        "-": lambda a, *rest: -a if not rest else a - sum(rest),
        "*": lambda *a: _product(a),
        "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) or a % b else a // b,
        "mod": lambda a, b: a % b,
        "=": _truthy_eq,
        "equal?": _truthy_eq,
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
        "<=": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
        "not": lambda a: a is False or a is None,
        "list": lambda *a: list(a),
        "car": lambda lst: _car(lst),
        "cdr": lambda lst: list(lst[1:]),
        "cadr": lambda lst: _car(lst[1:]),
        "cons": lambda a, lst: [a] + list(lst),
        "append": lambda *ls: [x for lst in ls for x in lst],
        "length": lambda lst: len(lst),
        "null?": lambda lst: lst is None or lst == [],
        "member": lambda item, lst: item in lst,
        "reverse": lambda lst: list(reversed(lst)),
        "nth": lambda idx, lst: lst[idx],
        "map": lambda fn, lst: [fn(x) for x in lst],
        "filter": lambda fn, lst: [x for x in lst if fn(x) not in (False, None)],
        "split": _builtin_split,
        "join": lambda lst, sep: str(sep).join(str(x) for x in lst),
        "concat": lambda *parts: "".join(str(p) for p in parts),
        "strcat": lambda *parts: "".join(str(p) for p in parts),
        "substring": lambda s, start, end=None: s[start:end],
        "upcase": lambda s: str(s).upper(),
        "downcase": lambda s: str(s).lower(),
        "strlen": lambda s: len(str(s)),
        "string->number": _string_to_number,
        "number->string": lambda n: str(n),
        "string?": lambda v: isinstance(v, str),
        "number?": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
        "index": lambda s, sub: str(s).find(str(sub)),
        "replace": lambda s, old, new: str(s).replace(str(old), str(new)),
        "startswith": lambda s, prefix: str(s).startswith(str(prefix)),
        "endswith": lambda s, suffix: str(s).endswith(str(suffix)),
        "min": min,
        "max": max,
        "abs": abs,
    }
    for name, fn in builtins.items():
        env.define(name, fn)
    return env


def _product(values: Sequence[Any]) -> Any:
    result: Any = 1
    for value in values:
        result = result * value
    return result


def _car(lst: Sequence[Any]) -> Any:
    if not lst:
        raise ALError("car of empty list")
    return lst[0]


def _string_to_number(s: str) -> Union[int, float]:
    try:
        return int(s)
    except ValueError:
        try:
            return float(s)
        except ValueError:
            raise ALError(f"not a number: {s!r}") from None


class ObjectHandle:
    """The hierarchy handle bound to ``obj`` inside a callback.

    Wraps any host object exposing a ``properties`` :class:`PropertyBag`
    (instances, symbols, schematics).  ``context`` carries extra read-only
    bindings the migrator wants visible (page number, cell name, ...).
    """

    def __init__(self, target: Any, context: Optional[Dict[str, Any]] = None) -> None:
        if not hasattr(target, "properties") or not isinstance(target.properties, PropertyBag):
            raise ALError(f"object {target!r} has no property bag")
        self.target = target
        self.context = dict(context or {})

    @property
    def properties(self) -> PropertyBag:
        return self.target.properties


def design_environment(handle: ObjectHandle) -> Environment:
    """Extend the standard environment with design-hierarchy builtins."""
    env = standard_environment()

    def get_prop(obj: ObjectHandle, name: str, default: Any = None) -> Any:
        value = obj.properties.get(name)
        return default if value is None else value

    def set_prop(obj: ObjectHandle, name: str, value: Any) -> Any:
        obj.properties.set(name, value, origin="a/L")
        return value

    def del_prop(obj: ObjectHandle, name: str) -> bool:
        return obj.properties.remove(name) is not None

    def rename_prop(obj: ObjectHandle, old: str, new: str) -> bool:
        return obj.properties.rename(old, new, origin="a/L")

    def has_prop(obj: ObjectHandle, name: str) -> bool:
        return name in obj.properties

    def prop_names(obj: ObjectHandle) -> List[str]:
        return obj.properties.names()

    def object_name(obj: ObjectHandle) -> str:
        return getattr(obj.target, "name", "")

    def context_get(obj: ObjectHandle, key: str, default: Any = None) -> Any:
        return obj.context.get(key, default)

    env.define("get-prop", get_prop)
    env.define("set-prop!", set_prop)
    env.define("del-prop!", del_prop)
    env.define("rename-prop!", rename_prop)
    env.define("has-prop?", has_prop)
    env.define("prop-names", prop_names)
    env.define("object-name", object_name)
    env.define("context", context_get)
    env.define("obj", handle)
    return env


class PageHandle:
    """Opaque handle for a schematic page inside a/L programs."""

    def __init__(self, page: Any) -> None:
        self.page = page


def schematic_environment(schematic: Any, context: Optional[Dict[str, Any]] = None) -> Environment:
    """Environment for *design-level* callbacks: ``design`` is bound.

    This is the "interact with the entire design hierarchy" capability:
    programs can walk pages, enumerate or find instances, read and write
    any instance's properties, and count/filter as needed::

        (foreach inst (all-instances design)
          (if (has-prop? inst "rval")
              (rename-prop! inst "rval" "r")))
    """
    env = standard_environment()
    extra = dict(context or {})

    def pages(design: Any) -> List[PageHandle]:
        return [PageHandle(page) for page in design.pages]

    def page_number(handle: PageHandle) -> int:
        return handle.page.number

    def page_instances(handle: PageHandle) -> List[ObjectHandle]:
        return [ObjectHandle(inst, extra) for inst in handle.page.instances]

    def all_instances(design: Any) -> List[ObjectHandle]:
        return [
            ObjectHandle(inst, extra)
            for page in design.pages
            for inst in page.instances
        ]

    def find_instance(design: Any, name: str) -> Any:
        for page in design.pages:
            for inst in page.instances:
                if inst.name == name:
                    return ObjectHandle(inst, extra)
        return None

    def instance_symbol(handle: ObjectHandle) -> str:
        return handle.target.symbol.name

    def instance_library(handle: ObjectHandle) -> str:
        return handle.target.symbol.library

    def wire_labels(handle: PageHandle) -> List[str]:
        return [wire.label for wire in handle.page.wires if wire.label]

    def relabel_wires(handle: PageHandle, old: str, new: str) -> int:
        count = 0
        for wire in handle.page.wires:
            if wire.label == old:
                wire.label = new
                count += 1
        return count

    def design_name(design: Any) -> str:
        return design.name

    env.define("pages", pages)
    env.define("page-number", page_number)
    env.define("page-instances", page_instances)
    env.define("all-instances", all_instances)
    env.define("find-instance", find_instance)
    env.define("instance-symbol", instance_symbol)
    env.define("instance-library", instance_library)
    env.define("wire-labels", wire_labels)
    env.define("relabel-wires!", relabel_wires)
    env.define("design-name", design_name)
    env.define("design", schematic)

    def get_prop(obj: ObjectHandle, name: str, default: Any = None) -> Any:
        value = obj.properties.get(name)
        return default if value is None else value

    env.define("get-prop", get_prop)
    env.define("set-prop!", lambda obj, name, value: (obj.properties.set(name, value, origin="a/L"), value)[1])
    env.define("del-prop!", lambda obj, name: obj.properties.remove(name) is not None)
    env.define("rename-prop!", lambda obj, old, new: obj.properties.rename(old, new, origin="a/L"))
    env.define("has-prop?", lambda obj, name: name in obj.properties)
    env.define("prop-names", lambda obj: obj.properties.names())
    env.define("object-name", lambda obj: getattr(obj.target, "name", ""))
    env.define("context", lambda obj, key, default=None: obj.context.get(key, default))
    return env


def run_design_callback(source: str, schematic: Any, context: Optional[Dict[str, Any]] = None) -> Any:
    """Run a design-level a/L callback with ``design`` bound."""
    return run(source, schematic_environment(schematic, context))


def run(source: str, env: Optional[Environment] = None) -> Any:
    """Parse and evaluate ``source``; returns the last form's value."""
    environment = env if env is not None else standard_environment()
    result = None
    for form in parse(source):
        result = evaluate(form, environment)
    return result


def run_callback(source: str, target: Any, context: Optional[Dict[str, Any]] = None) -> Any:
    """Run a migration callback with ``obj`` bound to ``target``."""
    handle = ObjectHandle(target, context)
    return run(source, design_environment(handle))
