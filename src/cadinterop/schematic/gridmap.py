"""Grid rescaling between schematic dialects.

Section 2 ("Scaling"): "The schematic symbols used on the Viewlogic
schematics were drawn on a 1/10 inch grid with a 2/10 inch pin spacing.
The target Composer symbol libraries were drawn on a 1/16 inch grid with a
2/16 inch pin spacing.  The symbols and schematics were scaled down in size
to adjust to the Composer grid spacing."

Scaling maps grid index *k* of the source grid to grid index *k* of the
target grid — i.e. every coordinate is multiplied by the exact rational
``target_pitch / source_pitch``.  With the shared 1/160-inch database unit
this is 10/16 = 5/8, so any point on the source grid lands exactly on the
target grid; an *off-grid* source point (hand-nudged in the source tool)
does not, and is snapped with a logged warning.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import OffGridError, Point, Rect, Transform
from cadinterop.obs import get_lineage, get_logger
from cadinterop.schematic.dialects import Dialect
from cadinterop.schematic.model import Instance, Schematic, Symbol, SymbolPin, TextLabel, Wire

_log = get_logger("schematic.gridmap")


@dataclass
class ScalingReport:
    """Accounting for one rescale pass."""

    factor: Fraction
    points_scaled: int = 0
    points_snapped: int = 0


def scale_point(
    point: Point,
    factor: Fraction,
    target: Dialect,
    log: Optional[IssueLog],
    report: ScalingReport,
    subject: str,
) -> Point:
    """Scale one point, snapping (and logging) if it leaves the lattice."""
    report.points_scaled += 1
    try:
        scaled = point.scaled(factor)
    except OffGridError:
        raw_x = float(point.x) * float(factor)
        raw_y = float(point.y) * float(factor)
        scaled = target.grid.snap(Point(round(raw_x), round(raw_y)))
        report.points_snapped += 1
        _log.debug(
            "snap %s: off-grid %s -> %s", subject, point.as_tuple(), scaled.as_tuple()
        )
        if log is not None:
            log.add(
                Severity.WARNING, Category.SCALING, subject,
                f"off-grid point {point.as_tuple()} snapped to {scaled.as_tuple()}",
                remedy="clean up off-grid drawing in the source tool",
            )
        get_lineage().record(
            "point", subject, "scaling", "approximated",
            detail=f"off-grid {point.as_tuple()} snapped to {scaled.as_tuple()}",
        )
        return scaled
    if not target.grid.is_on_grid(scaled):
        snapped = target.grid.snap(scaled)
        if snapped != scaled:
            report.points_snapped += 1
            if log is not None:
                log.add(
                    Severity.WARNING, Category.SCALING, subject,
                    f"scaled point {scaled.as_tuple()} off target grid; snapped to {snapped.as_tuple()}",
                )
            get_lineage().record(
                "point", subject, "scaling", "approximated",
                detail=f"scaled {scaled.as_tuple()} snapped to {snapped.as_tuple()}",
            )
            return snapped
    return scaled


def scale_symbol(symbol: Symbol, factor: Fraction) -> Symbol:
    """Produce a scaled copy of a symbol master (for unmapped components)."""
    return Symbol(
        library=symbol.library,
        name=symbol.name,
        view=symbol.view,
        body=symbol.body.scaled(factor),
        pins=[SymbolPin(p.name, p.position.scaled(factor), p.direction) for p in symbol.pins],
        properties=symbol.properties.copy(),
        kind=symbol.kind,
    )


def rescale_schematic(
    schematic: Schematic,
    source: Dialect,
    target: Dialect,
    log: Optional[IssueLog] = None,
) -> ScalingReport:
    """Rescale all geometry of ``schematic`` from ``source`` to ``target`` grid.

    Instance origins, wire vertices, label anchors, and page frames are
    scaled in place.  Symbol masters are *not* touched here — mapped symbols
    are replaced by native target masters, and unmapped ones are scaled
    separately via :func:`scale_symbol` by the migration driver.
    """
    factor = source.grid.scale_factor_to(target.grid)
    report = ScalingReport(factor=factor)

    for page in schematic.pages:
        page.frame = Rect(
            *scale_point(Point(page.frame.x1, page.frame.y1), factor, target, log, report, f"page{page.number}.frame"),
            *scale_point(Point(page.frame.x2, page.frame.y2), factor, target, log, report, f"page{page.number}.frame"),
        )
        for instance in page.instances:
            origin = scale_point(
                instance.transform.offset, factor, target, log, report, instance.name
            )
            instance.transform = Transform(origin, instance.transform.orientation)
        for wire in page.wires:
            wire.points = [
                scale_point(point, factor, target, log, report, wire.label or "wire")
                for point in wire.points
            ]
            if wire.label_position is not None:
                wire.label_position = scale_point(
                    wire.label_position, factor, target, log, report, wire.label or "label"
                )
        for label in page.labels:
            label.position = scale_point(
                label.position, factor, target, log, report, label.text
            )
    return report
