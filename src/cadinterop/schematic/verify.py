"""Independent verification of a schematic migration.

Section 2 ("Verification"): "Careful design of a data translation strategy
is insufficient to guarantee correctness of the translated data; design
data translations must be independently verified."

Verification here is *independent* of the migration pipeline: it extracts
netlists from the source and translated schematics with the geometric
extractor (:mod:`cadinterop.schematic.netlist`) and compares connectivity
partitions, normalizing only through the declared symbol pin maps and
global net renames.  Any connection the migration broke, shorted, or
invented shows up as a split, merge, or terminal mismatch.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.schematic.dialects import get_dialect
from cadinterop.schematic.globals_ import GlobalMap
from cadinterop.schematic.model import Schematic
from cadinterop.schematic.netlist import Netlist, Terminal, extract
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMap


@dataclass
class VerificationResult:
    """Outcome of one migration verification."""

    equivalent: bool
    log: IssueLog = field(default_factory=IssueLog)
    source_nets: int = 0
    target_nets: int = 0
    matched_nets: int = 0
    split_nets: List[str] = field(default_factory=list)
    merged_nets: List[str] = field(default_factory=list)
    missing_terminals: List[Terminal] = field(default_factory=list)
    extra_terminals: List[Terminal] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        return (
            f"{verdict}: {self.matched_nets}/{self.source_nets} nets matched, "
            f"{len(self.split_nets)} split, {len(self.merged_nets)} merged, "
            f"{len(self.missing_terminals)} missing terminals, "
            f"{len(self.extra_terminals)} extra terminals"
        )


class NetlistCache:
    """Memoizes geometric netlist extraction across verification calls.

    Extraction dominates verification cost, and a batch run checks the same
    source schematic against several targets (or re-verifies after property
    audits), re-extracting an unchanged drawing each time.  The cache is
    keyed by object identity plus dialect name and holds only a weak
    reference to the schematic, so entries die with the design and a
    recycled ``id()`` can never alias a different object.

    The cache does **not** observe mutation: it is meant to be scoped to one
    batch run over frozen inputs (the farm creates one per worker).  Callers
    that edit a schematic mid-run must call :meth:`invalidate` or use a
    fresh cache.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, str], Tuple["weakref.ref", Netlist]] = {}
        self.hits = 0
        self.misses = 0

    def extract(self, schematic: Schematic, dialect) -> Netlist:
        key = (id(schematic), dialect.name)
        entry = self._entries.get(key)
        if entry is not None:
            ref, netlist = entry
            if ref() is schematic:
                self.hits += 1
                return netlist
            del self._entries[key]
        self.misses += 1
        netlist = extract(schematic, dialect)
        self._entries[key] = (weakref.ref(schematic), netlist)
        return netlist

    def invalidate(self, schematic: Schematic) -> None:
        for key in [k for k in self._entries if k[0] == id(schematic)]:
            del self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)


def _component_terminals(netlist: Netlist, connector_instances: Set[str]) -> Dict[str, Set[Terminal]]:
    """Net -> component terminals, dropping synthesized connector pins."""
    result: Dict[str, Set[Terminal]] = {}
    for net in netlist.nets.values():
        terminals = {t for t in net.terminals if t[0] not in connector_instances}
        if terminals:
            result[net.name] = terminals
    return result


def _connector_instance_names(schematic: Schematic) -> Set[str]:
    return {
        instance.name
        for _page, instance in schematic.all_instances()
        if instance.symbol.kind != "component"
    }


def verify_migration(
    source: Schematic,
    target: Schematic,
    symbol_map: Optional[SymbolMap] = None,
    global_map: Optional[GlobalMap] = None,
    netlist_cache: Optional[NetlistCache] = None,
) -> VerificationResult:
    """Compare connectivity of ``source`` and ``target`` schematics.

    Source terminals are normalized through the symbol map's pin-name maps
    (the migration legitimately renames pins); everything else must match
    exactly.  Returns a result whose ``log`` lists every divergence.

    ``netlist_cache`` memoizes the source extraction so a batch run checking
    one source against multiple targets (or re-verifying) extracts it once;
    the target is always freshly extracted — it is the object under test.
    """
    result = VerificationResult(equivalent=True)

    if netlist_cache is not None:
        source_netlist = netlist_cache.extract(source, get_dialect(source.dialect))
    else:
        source_netlist = extract(source, get_dialect(source.dialect))
    target_netlist = extract(target, get_dialect(target.dialect))
    result.log.merge(source_netlist.log)
    result.log.merge(target_netlist.log)

    # Build pin-name normalization: instance name -> pin map, from the
    # source instances' symbols and the declared replacement rules.
    pin_maps: Dict[str, Dict[str, str]] = {}
    if symbol_map is not None:
        for _page, instance in source.all_instances():
            mapping = symbol_map.lookup(SymbolKey.of(instance.symbol))
            if mapping is not None and mapping.pin_map:
                pin_maps[instance.name] = dict(mapping.pin_map)

    def normalize(terminal: Terminal) -> Terminal:
        instance_name, pin_name = terminal
        pin_map = pin_maps.get(instance_name)
        if pin_map and pin_name in pin_map:
            return (instance_name, pin_map[pin_name])
        return terminal

    source_sets = {
        name: frozenset(normalize(t) for t in terminals)
        for name, terminals in _component_terminals(
            source_netlist, _connector_instance_names(source)
        ).items()
    }
    target_sets = {
        name: frozenset(terminals)
        for name, terminals in _component_terminals(
            target_netlist, _connector_instance_names(target)
        ).items()
    }

    result.source_nets = len(source_sets)
    result.target_nets = len(target_sets)

    # Index target nets by terminal for partition comparison.
    target_net_of: Dict[Terminal, str] = {}
    for net_name, terminals in target_sets.items():
        for terminal in terminals:
            if terminal in target_net_of:
                result.log.add(
                    Severity.ERROR, Category.VERIFICATION, str(terminal),
                    f"terminal appears on two target nets "
                    f"({target_net_of[terminal]} and {net_name})",
                )
                result.equivalent = False
            target_net_of[terminal] = net_name

    claimed_target_nets: Dict[str, str] = {}
    for source_name, terminals in sorted(source_sets.items()):
        target_names = {target_net_of.get(t) for t in terminals}
        missing = {t for t in terminals if t not in target_net_of}
        if missing:
            result.missing_terminals.extend(sorted(missing))
            for terminal in sorted(missing):
                result.log.add(
                    Severity.ERROR, Category.VERIFICATION, f"{terminal[0]}.{terminal[1]}",
                    f"terminal of source net {source_name!r} is unconnected in target",
                    remedy="re-run rip-up/reroute for this instance",
                )
            result.equivalent = False
            target_names.discard(None)
        if len(target_names) > 1:
            result.split_nets.append(source_name)
            result.log.add(
                Severity.ERROR, Category.VERIFICATION, source_name,
                f"source net split across target nets {sorted(n for n in target_names if n)}",
            )
            result.equivalent = False
            continue
        if not target_names:
            continue
        target_name = next(iter(target_names))
        if target_name is None:
            continue
        if target_name in claimed_target_nets:
            result.merged_nets.append(target_name)
            result.log.add(
                Severity.ERROR, Category.VERIFICATION, target_name,
                f"target net merges source nets "
                f"{claimed_target_nets[target_name]!r} and {source_name!r} (short)",
            )
            result.equivalent = False
            continue
        claimed_target_nets[target_name] = source_name
        extra = set(target_sets[target_name]) - set(terminals)
        if extra:
            result.extra_terminals.extend(sorted(extra))
            for terminal in sorted(extra):
                result.log.add(
                    Severity.ERROR, Category.VERIFICATION, f"{terminal[0]}.{terminal[1]}",
                    f"target net {target_name!r} gained a terminal not on source net {source_name!r}",
                )
            result.equivalent = False
        else:
            result.matched_nets += 1

    # Target-only nets carrying component terminals are inventions.
    for target_name in sorted(set(target_sets) - set(claimed_target_nets)):
        result.log.add(
            Severity.ERROR, Category.VERIFICATION, target_name,
            "target net has component terminals but no corresponding source net",
        )
        result.equivalent = False

    if result.equivalent:
        result.log.add(
            Severity.INFO, Category.VERIFICATION, source.name,
            f"connectivity verified: {result.matched_nets} nets equivalent",
        )
    return result


def audit_properties(
    source: Schematic,
    target: Schematic,
    required: Optional[List[str]] = None,
) -> IssueLog:
    """Check that instances kept their properties through migration.

    ``required`` lists property names that must survive verbatim; other
    properties may legitimately be added/renamed by the mapping rules, so
    only required ones are compared.
    """
    log = IssueLog()
    required = required or []
    target_instances = {
        instance.name: instance for _page, instance in target.all_instances()
    }
    for _page, instance in source.all_instances():
        if instance.symbol.kind != "component":
            continue
        counterpart = target_instances.get(instance.name)
        if counterpart is None:
            log.add(
                Severity.ERROR, Category.VERIFICATION, instance.name,
                "instance missing from translated schematic",
            )
            continue
        for name in required:
            if name not in instance.properties:
                continue
            source_value = instance.properties.get(name)
            target_value = counterpart.properties.get(name)
            if target_value != source_value:
                log.add(
                    Severity.ERROR, Category.PROPERTY_MAPPING, f"{instance.name}.{name}",
                    f"required property changed: {source_value!r} -> {target_value!r}",
                )
    return log
