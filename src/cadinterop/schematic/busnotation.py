"""Bus syntax parsing, formatting, and inter-dialect translation.

Section 2 of the paper ("Bus syntax translation"):

* the Viewdraw-like dialect allows *condensed* references — ``A0`` is
  equivalent to bit 0 of a declared bus ``A<0:15>`` — and *postfix
  indicators* such as the trailing minus in ``myBus<0:15>-``;
* the Composer-like dialect requires explicit syntax — ``A0`` is NOT
  ``A<0>`` — and rejects postfix indicators.

Translation therefore needs the set of declared buses (to disambiguate
``A0`` the scalar from ``A0`` the condensed bit reference) and a policy for
postfix indicators (fold into the base name so net names stay unique).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity

#: Condensed bit reference grammar (``A0`` == bit 0 of a declared bus ``A``),
#: compiled once at import: it used to be recompiled inside
#: ``BusSyntax._parse_condensed``, which runs once per label per migration.
_CONDENSED_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*?)(\d+)$")


class BusSyntaxError(ValueError):
    """A net name could not be parsed under the dialect's bus rules."""


@dataclass(frozen=True)
class BusRef:
    """A parsed net reference.

    ``indices`` is ``None`` for a scalar, ``(bit, bit)`` for a single-bit
    select, or ``(msb, lsb)`` for a range.  ``postfix`` records a trailing
    indicator character (e.g. ``-`` for active-low) if the source dialect
    allowed one.
    """

    base: str
    indices: Optional[Tuple[int, int]] = None
    postfix: str = ""

    @property
    def is_scalar(self) -> bool:
        return self.indices is None

    @property
    def is_single_bit(self) -> bool:
        return self.indices is not None and self.indices[0] == self.indices[1]

    @property
    def width(self) -> int:
        if self.indices is None:
            return 1
        msb, lsb = self.indices
        return abs(msb - lsb) + 1

    def bits(self) -> List[int]:
        """Bit indices in declaration order (empty for a scalar)."""
        if self.indices is None:
            return []
        msb, lsb = self.indices
        step = 1 if lsb >= msb else -1
        return list(range(msb, lsb + step, step))

    def bit(self, index: int) -> "BusRef":
        if self.indices is None:
            raise BusSyntaxError(f"{self.base} is a scalar; cannot select bit {index}")
        lo, hi = sorted(self.indices)
        if not lo <= index <= hi:
            raise BusSyntaxError(f"bit {index} outside {self.base}<{self.indices[0]}:{self.indices[1]}>")
        return BusRef(self.base, (index, index), self.postfix)


@dataclass(frozen=True)
class BusSyntax:
    """The bus-reference grammar of one schematic dialect."""

    name: str
    allows_condensed: bool
    allows_postfix: bool
    postfix_chars: str = "-~*"
    open_bracket: str = "<"
    close_bracket: str = ">"
    range_separator: str = ":"

    _NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")

    def parse(self, text: str, declared_buses: Optional[Dict[str, Tuple[int, int]]] = None) -> BusRef:
        """Parse a net label under this dialect's rules.

        ``declared_buses`` maps base name -> (msb, lsb) for buses known on
        the sheet; it is required to resolve condensed references.

        Results are memoized per ``(syntax, text, declared table)``: a sheet
        repeats the same handful of net names many times (and a corpus
        repeats them across designs), so the parse runs once per distinct
        label.  :class:`BusRef` is frozen, so sharing the cached object is
        safe.
        """
        declared_key = tuple(sorted(declared_buses.items())) if declared_buses else ()
        return _parse_memoized(self, text, declared_key)

    def _parse_impl(self, text: str, declared: Dict[str, Tuple[int, int]]) -> BusRef:
        working = text.strip()
        if not working:
            raise BusSyntaxError("empty net name")

        postfix = ""
        if working[-1] in self.postfix_chars and self.close_bracket not in working[-1]:
            if not self.allows_postfix:
                raise BusSyntaxError(
                    f"{self.name}: postfix indicator {working[-1]!r} not permitted in {text!r}"
                )
            postfix = working[-1]
            working = working[:-1]

        bracket_at = working.find(self.open_bracket)
        if bracket_at >= 0:
            if not working.endswith(self.close_bracket):
                raise BusSyntaxError(f"unterminated bus subscript in {text!r}")
            base = working[:bracket_at]
            inner = working[bracket_at + 1 : -1]
            if not self._NAME_RE.match(base):
                raise BusSyntaxError(f"illegal bus base name {base!r} in {text!r}")
            if self.range_separator in inner:
                msb_text, lsb_text = inner.split(self.range_separator, 1)
                try:
                    indices = (int(msb_text), int(lsb_text))
                except ValueError:
                    raise BusSyntaxError(f"non-numeric bus range in {text!r}") from None
            else:
                try:
                    bit = int(inner)
                except ValueError:
                    raise BusSyntaxError(f"non-numeric bus index in {text!r}") from None
                indices = (bit, bit)
            return BusRef(base, indices, postfix)

        # No bracket: scalar, or (in condensed dialects) an implicit bit ref.
        if self.allows_condensed:
            condensed = self._parse_condensed(working, declared)
            if condensed is not None:
                return BusRef(condensed[0], (condensed[1], condensed[1]), postfix)
        if not self._NAME_RE.match(working):
            raise BusSyntaxError(f"illegal net name {working!r}")
        return BusRef(working, None, postfix)

    def _parse_condensed(
        self, working: str, declared: Dict[str, Tuple[int, int]]
    ) -> Optional[Tuple[str, int]]:
        """Resolve ``A0`` to (``A``, 0) iff ``A`` is a declared bus covering bit 0."""
        match = _CONDENSED_RE.match(working)
        if not match:
            return None
        base, bit_text = match.group(1), match.group(2)
        if base not in declared:
            return None
        bit = int(bit_text)
        lo, hi = sorted(declared[base])
        if lo <= bit <= hi:
            return (base, bit)
        return None

    def format(self, ref: BusRef) -> str:
        """Render a reference in this dialect; raises if the dialect cannot."""
        if ref.postfix and not self.allows_postfix:
            raise BusSyntaxError(
                f"{self.name}: cannot render postfix indicator {ref.postfix!r}"
            )
        text = ref.base
        if ref.indices is not None:
            msb, lsb = ref.indices
            if msb == lsb:
                text += f"{self.open_bracket}{msb}{self.close_bracket}"
            else:
                text += f"{self.open_bracket}{msb}{self.range_separator}{lsb}{self.close_bracket}"
        return text + ref.postfix


@lru_cache(maxsize=16384)
def _parse_memoized(
    syntax: BusSyntax, text: str, declared_key: Tuple[Tuple[str, Tuple[int, int]], ...]
) -> BusRef:
    """Shared parse cache; keyed on the full declared-bus table so the same
    text parses differently when a base name is (un)declared.  Failed parses
    raise and are deliberately not cached (``lru_cache`` drops them)."""
    return syntax._parse_impl(text, dict(declared_key))


@dataclass
class TranslationRule:
    """Record of one bus-name rewrite performed during migration."""

    source: str
    target: str
    reason: str


def fold_postfix(ref: BusRef) -> Tuple[BusRef, Optional[str]]:
    """Fold a postfix indicator into the base name, keeping names unique.

    The paper's remedy: "the postfix indicators were adjusted to keep the
    net names unique".  ``myBus<0:15>-`` becomes ``myBus_n<0:15>`` so the
    active-low intent survives as a lexical marker the target tool accepts.
    Returns the folded ref and the suffix applied (None if nothing done).
    """
    if not ref.postfix:
        return ref, None
    suffix = {"-": "_n", "~": "_n", "*": "_n"}.get(ref.postfix, "_x")
    return BusRef(ref.base + suffix, ref.indices, ""), suffix


def translate_net_name(
    text: str,
    source: BusSyntax,
    target: BusSyntax,
    declared_buses: Optional[Dict[str, Tuple[int, int]]] = None,
    log: Optional[IssueLog] = None,
) -> Tuple[str, List[TranslationRule]]:
    """Translate one net label from ``source`` to ``target`` syntax.

    Returns the rewritten label and the rules applied.  Issues are logged
    for every semantic adjustment (condensed expansion, postfix folding).
    """
    rules: List[TranslationRule] = []
    ref = source.parse(text, declared_buses)

    if ref.is_single_bit and source.allows_condensed and not target.allows_condensed:
        # Parsing already expanded A0 -> A<0>; record it if the raw text was condensed.
        if source.open_bracket not in text:
            rules.append(
                TranslationRule(text, "", "condensed bit reference made explicit")
            )
            if log is not None:
                log.add(
                    Severity.NOTE,
                    Category.BUS_SYNTAX,
                    text,
                    f"condensed reference expanded to explicit {ref.base}"
                    f"{target.open_bracket}{ref.indices[0]}{target.close_bracket}",
                    remedy="translation rule maps condensed to explicit syntax",
                )

    if ref.postfix and not target.allows_postfix:
        folded, suffix = fold_postfix(ref)
        rules.append(
            TranslationRule(text, "", f"postfix {ref.postfix!r} folded as suffix {suffix!r}")
        )
        if log is not None:
            log.add(
                Severity.WARNING,
                Category.BUS_SYNTAX,
                text,
                f"postfix indicator {ref.postfix!r} is not understood by {target.name}",
                remedy=f"folded into base name as {folded.base!r} to keep net names unique",
            )
        ref = folded

    rendered = target.format(ref)
    for rule in rules:
        # Fill in the final target text now that all rewrites are known.
        rule.target = rendered
    return rendered, rules


def declared_buses_of(labels: Iterable[str], syntax: BusSyntax) -> Dict[str, Tuple[int, int]]:
    """Scan sheet labels for full-range bus declarations (``A<0:15>``)."""
    declared: Dict[str, Tuple[int, int]] = {}
    for label in labels:
        try:
            ref = syntax.parse(label)
        except BusSyntaxError:
            continue
        if ref.indices is not None and not ref.is_single_bit:
            existing = declared.get(ref.base)
            if existing is None:
                declared[ref.base] = ref.indices
            else:
                lo = min(min(existing), min(ref.indices))
                hi = max(max(existing), max(ref.indices))
                # Preserve the declaration direction of the first sighting.
                if existing[0] >= existing[1]:
                    declared[ref.base] = (hi, lo)
                else:
                    declared[ref.base] = (lo, hi)
    return declared


VIEWDRAW_BUS_SYNTAX = BusSyntax(name="viewdraw-like", allows_condensed=True, allows_postfix=True)
COMPOSER_BUS_SYNTAX = BusSyntax(name="composer-like", allows_condensed=False, allows_postfix=False)
