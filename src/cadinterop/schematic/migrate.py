"""The migration pipeline: source dialect -> target dialect, end to end.

This orchestrates every Section 2 step in the order the consulting work
performed them:

1. **Scaling** — rescale all geometry from the source grid to the target
   grid (:mod:`cadinterop.schematic.gridmap`); unmapped symbol masters are
   scaled copies, so connectivity is preserved exactly.
2. **Symbol replacement** — swap mapped components for native target
   masters, ripping up and rerouting the minimum number of net segments
   (:mod:`cadinterop.schematic.ripup`, paper Figure 1).
3. **Property mapping** — standard declarative rules plus non-standard a/L
   callbacks (:mod:`cadinterop.schematic.propertymap`).
4. **Global mapping** — native power/ground symbols and net-name
   conventions (:mod:`cadinterop.schematic.globals_`).
5. **Bus syntax translation** — condensed -> explicit references, postfix
   folding (:mod:`cadinterop.schematic.busnotation`).
6. **Connector synthesis** — explicit hierarchy and off-page connectors
   where the target dialect demands them
   (:mod:`cadinterop.schematic.connectors`).
7. **Cosmetics** — font scaling and baseline correction
   (:mod:`cadinterop.schematic.text`).
8. **Verification** — independent netlist comparison
   (:mod:`cadinterop.schematic.verify`), because "design data translations
   must be independently verified".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.schematic.busnotation import declared_buses_of, translate_net_name
from cadinterop.schematic.connectors import (
    ConnectorReport,
    insert_hierarchy_connectors,
    insert_offpage_connectors,
)
from cadinterop.schematic.dialects import Dialect, get_dialect
from cadinterop.schematic.globals_ import GlobalMap, rename_global_nets
from cadinterop.schematic.gridmap import ScalingReport, rescale_schematic, scale_symbol
from cadinterop.schematic.model import (
    Instance,
    LibrarySet,
    Page,
    Port,
    Schematic,
    Symbol,
    TextLabel,
    Wire,
)
from cadinterop.schematic.propertymap import PropertyRuleSet
from cadinterop.schematic.ripup import BatchReplacementReport, replace_component
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMap
from cadinterop.schematic.text import TextAdjustReport, adjust_labels
from cadinterop.schematic.verify import VerificationResult, verify_migration


@dataclass
class MigrationPlan:
    """Everything a migration run needs, assembled up front.

    ``symbol_map`` origin offsets and rotations are expressed in *target*
    units (they are applied after scaling).
    """

    source_dialect: Dialect
    target_dialect: Dialect
    source_libraries: LibrarySet
    target_libraries: LibrarySet
    symbol_map: SymbolMap = field(default_factory=SymbolMap)
    property_rules: PropertyRuleSet = field(default_factory=PropertyRuleSet)
    global_map: GlobalMap = field(default_factory=GlobalMap)
    verify: bool = True
    replacement_strategy: str = "minimal"

    def validate(self) -> IssueLog:
        """Pre-flight validation of the mapping tables against libraries."""
        log = self.symbol_map.validate(self.source_libraries, self.target_libraries)
        names = self.target_dialect.connectors
        for symbol_name in (
            names.hier_in, names.hier_out, names.hier_inout, names.offpage,
        ):
            if not self.target_libraries.has(names.library, symbol_name):
                log.add(
                    Severity.ERROR, Category.STRUCTURE_MAPPING,
                    f"{names.library}/{symbol_name}",
                    "target connector symbol missing from target libraries",
                    remedy="install the native connector library before migrating",
                )
        return log


@dataclass
class MigrationResult:
    """The translated schematic plus full accounting."""

    schematic: Schematic
    log: IssueLog
    scaling: ScalingReport
    replacements: BatchReplacementReport
    connectors: ConnectorReport
    text: TextAdjustReport
    bus_renames: Dict[str, str]
    verification: Optional[VerificationResult] = None

    @property
    def clean(self) -> bool:
        """True when nothing needs manual post-translation cleanup."""
        verified = self.verification.equivalent if self.verification else True
        return verified and not self.log.has_errors()


def copy_schematic(schematic: Schematic) -> Schematic:
    """Deep-copy a schematic cell (symbol masters are shared, geometry not)."""
    clone = Schematic(
        schematic.name,
        schematic.dialect,
        ports=[Port(port.name, port.direction) for port in schematic.ports],
        properties=schematic.properties.copy(),
    )
    for page in schematic.pages:
        new_page = clone.add_page(page.frame)
        for instance in page.instances:
            new_page.add_instance(
                Instance(
                    name=instance.name,
                    symbol=instance.symbol,
                    transform=instance.transform,
                    properties=instance.properties.copy(),
                )
            )
        for wire in page.wires:
            new_page.add_wire(
                Wire(list(wire.points), label=wire.label, label_position=wire.label_position)
            )
        for label in page.labels:
            new_page.add_label(
                TextLabel(
                    text=label.text,
                    position=label.position,
                    height=label.height,
                    width_per_char=label.width_per_char,
                    baseline_offset=label.baseline_offset,
                )
            )
    return clone


class Migrator:
    """Executes a :class:`MigrationPlan` on schematic cells."""

    def __init__(self, plan: MigrationPlan) -> None:
        self.plan = plan
        self._scaled_symbols: Dict[Tuple[str, str, str], Symbol] = {}

    def migrate(self, source: Schematic) -> MigrationResult:
        """Translate one schematic cell; the source object is not modified."""
        plan = self.plan
        log = IssueLog()
        preflight = plan.validate()
        log.merge(preflight)

        working = copy_schematic(source)

        # Fold global rules into the symbol map (idempotent).
        plan.global_map.extend_symbol_map(plan.symbol_map)

        # Step 1: scaling.
        scaling = rescale_schematic(working, plan.source_dialect, plan.target_dialect, log)
        factor = scaling.factor
        # Every instance switches to a scaled master so its pins track the
        # scaled wires; mapped instances are then swapped for native target
        # masters in step 2 (rip-up works against the scaled positions).
        for page in working.pages:
            for instance in page.instances:
                mapped = plan.symbol_map.lookup(SymbolKey.of(instance.symbol))
                instance.symbol = self._scaled_symbol(instance.symbol, factor)
                if mapped is None:
                    log.add(
                        Severity.NOTE, Category.SCALING, instance.name,
                        f"no replacement mapping for {instance.symbol.full_name}; "
                        "symbol geometry scaled in place",
                        remedy="add a symbol map entry to use a native target master",
                    )

        # Step 2: component replacement with minimal rip-up.
        replacements = BatchReplacementReport()
        for page in working.pages:
            for instance_name in [i.name for i in page.instances]:
                instance = page.instance(instance_name)
                mapping = plan.symbol_map.lookup(SymbolKey.of(instance.symbol))
                if mapping is None:
                    continue
                target_symbol = plan.target_libraries.resolve(
                    mapping.target.library, mapping.target.name, mapping.target.view
                )
                stats = replace_component(
                    page, instance_name, mapping, target_symbol, log,
                    strategy=plan.replacement_strategy,
                )
                replacements.add(stats)

        # Step 3: property mapping (declarative rules + a/L callbacks).
        # Design-level callbacks run first: they can see every page.
        plan.property_rules.apply_to_design(
            working, log, context={"cell": working.name}
        )
        for page in working.pages:
            for instance in page.instances:
                plan.property_rules.apply_to_instance(
                    instance,
                    SymbolKey.of(instance.symbol),
                    log,
                    context={"page": page.number, "cell": working.name},
                )

        # Step 4: global net renaming to native conventions.
        rename_global_nets(working, plan.global_map, log)

        # Step 5: bus syntax translation on all wire labels.
        bus_renames: Dict[str, str] = {}
        all_labels = [
            wire.label for _page, wire in working.all_wires() if wire.label
        ]
        declared = declared_buses_of(all_labels, plan.source_dialect.bus_syntax)
        for _page, wire in working.all_wires():
            if not wire.label:
                continue
            translated, _rules = translate_net_name(
                wire.label,
                plan.source_dialect.bus_syntax,
                plan.target_dialect.bus_syntax,
                declared,
                log,
            )
            if translated != wire.label:
                bus_renames[wire.label] = translated
                wire.label = translated
        # Port names obey the same grammar and must stay in sync with the
        # labels of the nets they bind to.
        for port in working.ports:
            translated, _rules = translate_net_name(
                port.name,
                plan.source_dialect.bus_syntax,
                plan.target_dialect.bus_syntax,
                declared,
                log,
            )
            if translated != port.name:
                bus_renames[port.name] = translated
                port.name = translated

        # Step 6: connector synthesis where the target dialect demands it.
        connector_report = ConnectorReport()
        if (
            plan.target_dialect.requires_offpage_connectors
            and plan.source_dialect.implicit_cross_page_by_name
        ):
            insert_offpage_connectors(
                working, plan.target_dialect, plan.target_libraries, log, connector_report
            )
        if plan.target_dialect.requires_hier_connectors and working.ports:
            insert_hierarchy_connectors(
                working, plan.target_dialect, plan.target_libraries, log, connector_report
            )

        # Step 7: cosmetic text adjustment.
        text_report = adjust_labels(working, plan.source_dialect, plan.target_dialect, log)

        working.dialect = plan.target_dialect.name

        # Step 8: independent verification.
        verification: Optional[VerificationResult] = None
        if plan.verify:
            verification = verify_migration(
                source, working, plan.symbol_map, plan.global_map
            )
            log.merge(verification.log)

        return MigrationResult(
            schematic=working,
            log=log,
            scaling=scaling,
            replacements=replacements,
            connectors=connector_report,
            text=text_report,
            bus_renames=bus_renames,
            verification=verification,
        )

    def _scaled_symbol(self, symbol: Symbol, factor) -> Symbol:
        key = (symbol.library, symbol.name, symbol.view)
        if key not in self._scaled_symbols:
            self._scaled_symbols[key] = scale_symbol(symbol, factor)
        return self._scaled_symbols[key]
