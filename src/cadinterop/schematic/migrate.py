"""The migration pipeline: source dialect -> target dialect, end to end.

This orchestrates every Section 2 step in the order the consulting work
performed them:

1. **Scaling** — rescale all geometry from the source grid to the target
   grid (:mod:`cadinterop.schematic.gridmap`); unmapped symbol masters are
   scaled copies, so connectivity is preserved exactly.
2. **Symbol replacement** — swap mapped components for native target
   masters, ripping up and rerouting the minimum number of net segments
   (:mod:`cadinterop.schematic.ripup`, paper Figure 1).
3. **Property mapping** — standard declarative rules plus non-standard a/L
   callbacks (:mod:`cadinterop.schematic.propertymap`).
4. **Global mapping** — native power/ground symbols and net-name
   conventions (:mod:`cadinterop.schematic.globals_`).
5. **Bus syntax translation** — condensed -> explicit references, postfix
   folding (:mod:`cadinterop.schematic.busnotation`).
6. **Connector synthesis** — explicit hierarchy and off-page connectors
   where the target dialect demands them
   (:mod:`cadinterop.schematic.connectors`).
7. **Cosmetics** — font scaling and baseline correction
   (:mod:`cadinterop.schematic.text`).
8. **Verification** — independent netlist comparison
   (:mod:`cadinterop.schematic.verify`), because "design data translations
   must be independently verified".
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.obs.lineage import get_lineage
from cadinterop.obs.trace import get_tracer
from cadinterop.schematic.busnotation import declared_buses_of, translate_net_name
from cadinterop.schematic.connectors import (
    ConnectorReport,
    insert_hierarchy_connectors,
    insert_offpage_connectors,
)
from cadinterop.schematic.dialects import Dialect, get_dialect
from cadinterop.schematic.globals_ import GlobalMap, rename_global_nets
from cadinterop.schematic.gridmap import ScalingReport, rescale_schematic, scale_symbol
from cadinterop.schematic.model import (
    Instance,
    LibrarySet,
    Page,
    Port,
    Schematic,
    Symbol,
    TextLabel,
    Wire,
)
from cadinterop.schematic.propertymap import PropertyRuleSet
from cadinterop.schematic.ripup import BatchReplacementReport, replace_component
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMap
from cadinterop.schematic.text import TextAdjustReport, adjust_labels
from cadinterop.schematic.verify import NetlistCache, VerificationResult, verify_migration

#: Version tag of the pipeline's *semantics*.  It participates in every
#: farm cache key, so bump it whenever a stage's behavior changes in a way
#: that should invalidate previously cached migration results.
PIPELINE_VERSION = "1"

#: The eight Section 2 stages, in execution order; stage profiles use these
#: names, and :attr:`MigrationResult.stages` lists them (verification only
#: when the plan asks for it).
PIPELINE_STAGES = (
    "scaling",
    "replacement",
    "properties",
    "globals",
    "bus-syntax",
    "connectors",
    "text",
    "verification",
)


@dataclass
class StageSample:
    """One timed execution of one pipeline stage on one design."""

    stage: str
    seconds: float = 0.0
    items: int = 0


#: Observer signature for per-stage hooks: called with the finished sample.
StageObserver = Callable[[StageSample], None]


@contextmanager
def _timed_stage(
    samples: List[StageSample], observer: Optional[StageObserver], stage: str
) -> Iterator[StageSample]:
    sample = StageSample(stage)
    with get_tracer().span("migrate:" + stage) as span:
        start = time.perf_counter()
        try:
            yield sample
        finally:
            sample.seconds = time.perf_counter() - start
            span.set(items=sample.items)
            samples.append(sample)
            if observer is not None:
                observer(sample)


@dataclass
class MigrationPlan:
    """Everything a migration run needs, assembled up front.

    ``symbol_map`` origin offsets and rotations are expressed in *target*
    units (they are applied after scaling).
    """

    source_dialect: Dialect
    target_dialect: Dialect
    source_libraries: LibrarySet
    target_libraries: LibrarySet
    symbol_map: SymbolMap = field(default_factory=SymbolMap)
    property_rules: PropertyRuleSet = field(default_factory=PropertyRuleSet)
    global_map: GlobalMap = field(default_factory=GlobalMap)
    verify: bool = True
    replacement_strategy: str = "minimal"

    def validate(self) -> IssueLog:
        """Pre-flight validation of the mapping tables against libraries."""
        log = self.symbol_map.validate(self.source_libraries, self.target_libraries)
        names = self.target_dialect.connectors
        for symbol_name in (
            names.hier_in, names.hier_out, names.hier_inout, names.offpage,
        ):
            if not self.target_libraries.has(names.library, symbol_name):
                log.add(
                    Severity.ERROR, Category.STRUCTURE_MAPPING,
                    f"{names.library}/{symbol_name}",
                    "target connector symbol missing from target libraries",
                    remedy="install the native connector library before migrating",
                )
        return log


@dataclass
class MigrationResult:
    """The translated schematic plus full accounting."""

    schematic: Schematic
    log: IssueLog
    scaling: ScalingReport
    replacements: BatchReplacementReport
    connectors: ConnectorReport
    text: TextAdjustReport
    bus_renames: Dict[str, str]
    verification: Optional[VerificationResult] = None
    #: Wall time and item counts per executed pipeline stage, in order.
    stages: List[StageSample] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing needs manual post-translation cleanup."""
        verified = self.verification.equivalent if self.verification else True
        return verified and not self.log.has_errors()


def copy_schematic(schematic: Schematic) -> Schematic:
    """Deep-copy a schematic cell (symbol masters are shared, geometry not)."""
    clone = Schematic(
        schematic.name,
        schematic.dialect,
        ports=[Port(port.name, port.direction) for port in schematic.ports],
        properties=schematic.properties.copy(),
    )
    for page in schematic.pages:
        new_page = clone.add_page(page.frame)
        for instance in page.instances:
            new_page.add_instance(
                Instance(
                    name=instance.name,
                    symbol=instance.symbol,
                    transform=instance.transform,
                    properties=instance.properties.copy(),
                )
            )
        for wire in page.wires:
            new_page.add_wire(
                Wire(list(wire.points), label=wire.label, label_position=wire.label_position)
            )
        for label in page.labels:
            new_page.add_label(
                TextLabel(
                    text=label.text,
                    position=label.position,
                    height=label.height,
                    width_per_char=label.width_per_char,
                    baseline_offset=label.baseline_offset,
                )
            )
    return clone


class Migrator:
    """Executes a :class:`MigrationPlan` on schematic cells.

    ``stage_observer`` is called with a :class:`StageSample` as each pipeline
    stage finishes (the farm's profiler hooks in here); ``netlist_cache``
    memoizes source netlist extraction across verifications of the same
    source object (see :class:`cadinterop.schematic.verify.NetlistCache`).
    """

    def __init__(
        self,
        plan: MigrationPlan,
        stage_observer: Optional[StageObserver] = None,
        netlist_cache: Optional[NetlistCache] = None,
    ) -> None:
        self.plan = plan
        self.stage_observer = stage_observer
        self.netlist_cache = netlist_cache
        self._scaled_symbols: Dict[Tuple[str, str, str], Symbol] = {}

    def migrate(self, source: Schematic) -> MigrationResult:
        """Translate one schematic cell; the source object is not modified."""
        pair = f"{self.plan.source_dialect.name}->{self.plan.target_dialect.name}"
        with get_tracer().span("migrate", design=source.name) as span, \
                get_lineage().context(design=source.name, dialect=pair):
            result = self._migrate(source)
            span.set(clean=result.clean)
            return result

    def _migrate(self, source: Schematic) -> MigrationResult:
        plan = self.plan
        log = IssueLog()
        preflight = plan.validate()
        log.merge(preflight)

        working = copy_schematic(source)
        samples: List[StageSample] = []

        # Fold global rules into the symbol map (idempotent).
        plan.global_map.extend_symbol_map(plan.symbol_map)

        with _timed_stage(samples, self.stage_observer, "scaling") as sample:
            # Step 1: scaling.
            scaling = rescale_schematic(working, plan.source_dialect, plan.target_dialect, log)
            factor = scaling.factor
            # Every instance switches to a scaled master so its pins track the
            # scaled wires; mapped instances are then swapped for native target
            # masters in step 2 (rip-up works against the scaled positions).
            for page in working.pages:
                for instance in page.instances:
                    mapped = plan.symbol_map.lookup(SymbolKey.of(instance.symbol))
                    instance.symbol = self._scaled_symbol(instance.symbol, factor)
                    if mapped is None:
                        log.add(
                            Severity.NOTE, Category.SCALING, instance.name,
                            f"no replacement mapping for {instance.symbol.full_name}; "
                            "symbol geometry scaled in place",
                            remedy="add a symbol map entry to use a native target master",
                        )
                        get_lineage().record(
                            "instance", instance.name, "scaling", "preserved",
                            detail=f"{instance.symbol.full_name} scaled in place "
                            "(no replacement mapping)",
                        )
            sample.items = scaling.points_scaled

        with _timed_stage(samples, self.stage_observer, "replacement") as sample:
            # Step 2: component replacement with minimal rip-up.
            replacements = BatchReplacementReport()
            for page in working.pages:
                for instance_name in [i.name for i in page.instances]:
                    instance = page.instance(instance_name)
                    mapping = plan.symbol_map.lookup(SymbolKey.of(instance.symbol))
                    if mapping is None:
                        continue
                    target_symbol = plan.target_libraries.resolve(
                        mapping.target.library, mapping.target.name, mapping.target.view
                    )
                    stats = replace_component(
                        page, instance_name, mapping, target_symbol, log,
                        strategy=plan.replacement_strategy,
                    )
                    replacements.add(stats)
                    get_lineage().record(
                        "instance", instance_name, "replacement", "transformed",
                        detail=f"{mapping.source} -> {mapping.target}",
                    )
            sample.items = replacements.replacements

        with _timed_stage(samples, self.stage_observer, "properties") as sample:
            # Step 3: property mapping (declarative rules + a/L callbacks).
            # Design-level callbacks run first: they can see every page.
            plan.property_rules.apply_to_design(
                working, log, context={"cell": working.name}
            )
            for page in working.pages:
                for instance in page.instances:
                    plan.property_rules.apply_to_instance(
                        instance,
                        SymbolKey.of(instance.symbol),
                        log,
                        context={"page": page.number, "cell": working.name},
                    )
                    sample.items += 1

        with _timed_stage(samples, self.stage_observer, "globals") as sample:
            # Step 4: global net renaming to native conventions.
            sample.items = rename_global_nets(working, plan.global_map, log)

        with _timed_stage(samples, self.stage_observer, "bus-syntax") as sample:
            # Step 5: bus syntax translation on all wire labels.
            bus_renames: Dict[str, str] = {}
            all_labels = [
                wire.label for _page, wire in working.all_wires() if wire.label
            ]
            declared = declared_buses_of(all_labels, plan.source_dialect.bus_syntax)
            for _page, wire in working.all_wires():
                if not wire.label:
                    continue
                sample.items += 1
                translated, _rules = translate_net_name(
                    wire.label,
                    plan.source_dialect.bus_syntax,
                    plan.target_dialect.bus_syntax,
                    declared,
                    log,
                )
                if translated != wire.label:
                    get_lineage().record(
                        "net", wire.label, "bus-syntax", "transformed",
                        detail=f"{wire.label} -> {translated}",
                    )
                    bus_renames[wire.label] = translated
                    wire.label = translated
                else:
                    get_lineage().record(
                        "net", wire.label, "bus-syntax", "preserved"
                    )
            # Port names obey the same grammar and must stay in sync with the
            # labels of the nets they bind to.
            for port in working.ports:
                sample.items += 1
                translated, _rules = translate_net_name(
                    port.name,
                    plan.source_dialect.bus_syntax,
                    plan.target_dialect.bus_syntax,
                    declared,
                    log,
                )
                if translated != port.name:
                    get_lineage().record(
                        "port", port.name, "bus-syntax", "transformed",
                        detail=f"{port.name} -> {translated}",
                    )
                    bus_renames[port.name] = translated
                    port.name = translated
                else:
                    get_lineage().record(
                        "port", port.name, "bus-syntax", "preserved"
                    )

        with _timed_stage(samples, self.stage_observer, "connectors") as sample:
            # Step 6: connector synthesis where the target dialect demands it.
            connector_report = ConnectorReport()
            if (
                plan.target_dialect.requires_offpage_connectors
                and plan.source_dialect.implicit_cross_page_by_name
            ):
                insert_offpage_connectors(
                    working, plan.target_dialect, plan.target_libraries, log, connector_report
                )
            if plan.target_dialect.requires_hier_connectors and working.ports:
                insert_hierarchy_connectors(
                    working, plan.target_dialect, plan.target_libraries, log, connector_report
                )
            sample.items = connector_report.offpage_added + connector_report.hierarchy_added
            # Connectors exist only because the target dialect demands
            # explicit cross-page / hierarchy markers: pure synthesis.
            for index in range(connector_report.offpage_added):
                get_lineage().record(
                    "connector", f"offpage#{index + 1}", "connectors",
                    "synthesized", detail="off-page connector for implicit cross-page net",
                )
            for index in range(connector_report.hierarchy_added):
                get_lineage().record(
                    "connector", f"hier#{index + 1}", "connectors",
                    "synthesized", detail="hierarchy connector for port",
                )

        with _timed_stage(samples, self.stage_observer, "text") as sample:
            # Step 7: cosmetic text adjustment.
            text_report = adjust_labels(working, plan.source_dialect, plan.target_dialect, log)
            sample.items = text_report.labels_adjusted

        working.dialect = plan.target_dialect.name

        # Step 8: independent verification.
        verification: Optional[VerificationResult] = None
        if plan.verify:
            with _timed_stage(samples, self.stage_observer, "verification") as sample:
                verification = verify_migration(
                    source, working, plan.symbol_map, plan.global_map,
                    netlist_cache=self.netlist_cache,
                )
                log.merge(verification.log)
                sample.items = verification.source_nets

        return MigrationResult(
            schematic=working,
            log=log,
            scaling=scaling,
            replacements=replacements,
            connectors=connector_report,
            text=text_report,
            bus_renames=bus_renames,
            verification=verification,
            stages=samples,
        )

    def _scaled_symbol(self, symbol: Symbol, factor) -> Symbol:
        key = (symbol.library, symbol.name, symbol.view)
        if key not in self._scaled_symbols:
            self._scaled_symbols[key] = scale_symbol(symbol, factor)
        return self._scaled_symbols[key]


# ---------------------------------------------------------------------------
# Deterministic content digests
#
# The farm's result cache is keyed on (schematic digest, plan digest,
# PIPELINE_VERSION): any content edit to a design or any change to a plan
# table must, and does, produce a different key.  The canonical forms below
# are plain nested tuples of primitives hashed through SHA-256 — no id()s,
# no dict-ordering surprises (order-free tables are sorted; drawing order is
# kept, since reordering a file is an edit worth re-migrating).
# ---------------------------------------------------------------------------


def _canon_properties(bag) -> Tuple:
    return tuple((prop.name, prop.value, prop.visible) for prop in bag)


def _canon_symbol(symbol: Symbol) -> Tuple:
    return (
        symbol.library,
        symbol.name,
        symbol.view,
        symbol.kind,
        (symbol.body.x1, symbol.body.y1, symbol.body.x2, symbol.body.y2),
        tuple(
            (pin.name, pin.position.x, pin.position.y, pin.direction)
            for pin in symbol.pins
        ),
        _canon_properties(symbol.properties),
    )


def _canon_schematic(schematic: Schematic) -> Tuple:
    pages = []
    for page in schematic.pages:
        pages.append(
            (
                page.number,
                (page.frame.x1, page.frame.y1, page.frame.x2, page.frame.y2),
                tuple(
                    (
                        instance.name,
                        _canon_symbol(instance.symbol),
                        (
                            instance.transform.offset.x,
                            instance.transform.offset.y,
                            instance.transform.orientation.value,
                        ),
                        _canon_properties(instance.properties),
                    )
                    for instance in page.instances
                ),
                tuple(
                    (
                        tuple((p.x, p.y) for p in wire.points),
                        wire.label,
                        (wire.label_position.x, wire.label_position.y)
                        if wire.label_position
                        else None,
                    )
                    for wire in page.wires
                ),
                tuple(
                    (
                        label.text,
                        (label.position.x, label.position.y),
                        label.height,
                        label.width_per_char,
                        label.baseline_offset,
                    )
                    for label in page.labels
                ),
            )
        )
    return (
        schematic.name,
        schematic.dialect,
        tuple((port.name, port.direction) for port in schematic.ports),
        _canon_properties(schematic.properties),
        tuple(pages),
    )


def _canon_libraries(libraries: LibrarySet) -> Tuple:
    return tuple(
        (
            library.name,
            tuple(
                _canon_symbol(symbol)
                for symbol in sorted(
                    library.symbols(), key=lambda s: (s.name, s.view)
                )
            ),
        )
        for library in sorted(libraries.libraries(), key=lambda l: l.name)
    )


def _canon_symbol_mapping(mapping) -> Tuple:
    return (
        str(mapping.source),
        str(mapping.target),
        (mapping.origin_offset.x, mapping.origin_offset.y),
        mapping.rotation.value,
        tuple(sorted(mapping.pin_map.items())),
    )


def _canon_plan(plan: MigrationPlan) -> Tuple:
    # Digest the *effective* symbol map: migrate() idempotently folds global
    # rules into plan.symbol_map, so hashing the folded form keeps the plan
    # digest stable whether or not a migration has already run.
    effective = {
        str(mapping.source): _canon_symbol_mapping(mapping)
        for mapping in plan.symbol_map
    }
    for mapping in plan.global_map.as_symbol_mappings():
        effective.setdefault(str(mapping.source), _canon_symbol_mapping(mapping))
    return (
        repr(plan.source_dialect),
        repr(plan.target_dialect),
        _canon_libraries(plan.source_libraries),
        _canon_libraries(plan.target_libraries),
        tuple(value for _key, value in sorted(effective.items())),
        tuple(repr(rule) for rule in plan.property_rules.rules),
        tuple(repr(callback) for callback in plan.property_rules.callbacks),
        tuple(repr(callback) for callback in plan.property_rules.design_callbacks),
        tuple(repr(rule) for rule in plan.global_map.rules),
        plan.verify,
        plan.replacement_strategy,
    )


def _sha256(canon: Tuple) -> str:
    return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()


def schematic_digest(schematic: Schematic) -> str:
    """Content hash of one schematic cell: any edit changes it."""
    return _sha256(_canon_schematic(schematic))


def plan_digest(plan: MigrationPlan) -> str:
    """Content hash of a migration plan: any table or flag change changes it."""
    return _sha256(_canon_plan(plan))
