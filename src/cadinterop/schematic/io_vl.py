"""Viewdraw-like text format: line-oriented schematic serialization.

The source system of the paper's case study stored designs as terse
line-oriented text.  This module defines a faithful synthetic equivalent —
one record per line, positional fields, ``#`` comments — with full
round-trip support for libraries and schematics.  Having *two* concrete
on-disk formats (this and :mod:`cadinterop.schematic.io_cd`) is what makes
the interoperability problem real: the migration pipeline is the only
bridge between them.

Format summary::

    VLLIB <name>
    SYM <name> <view> <kind> <x1> <y1> <x2> <y2>
    PIN <name> <direction> <x> <y>
    SPROP <name> <type> <value>
    ENDSYM
    ENDLIB

    VLSCHEM <version> <name> <dialect>
    PORT <name> <direction>
    CPROP <name> <type> <value>
    PAGE <number> <x1> <y1> <x2> <y2>
    I <instname> <library> <symbol> <view> <x> <y> <orient>
    IPROP <name> <type> <value>
    W <label or -> <n> <x1> <y1> ... <xn> <yn>
    T <x> <y> <height> <charwidth> <baseline> <text...>
    ENDPAGE
    END

Strings containing whitespace are percent-encoded (`%20`), keeping the
format strictly whitespace-separated.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple
from urllib.parse import quote, unquote

from cadinterop.common.geometry import Orientation, Point, Rect, Transform
from cadinterop.common.properties import PropertyBag, PropertyValue
from cadinterop.schematic.model import (
    Instance,
    Library,
    Page,
    Port,
    Schematic,
    SchematicError,
    Symbol,
    SymbolPin,
    TextLabel,
    Wire,
)


class VLFormatError(SchematicError):
    """Malformed Viewdraw-like text."""


def _encode(text: str) -> str:
    return quote(text, safe="")


def _decode(text: str) -> str:
    return unquote(text)


def _encode_value(value: PropertyValue) -> Tuple[str, str]:
    if isinstance(value, bool):
        return ("bool", "1" if value else "0")
    if isinstance(value, int):
        return ("int", str(value))
    if isinstance(value, float):
        return ("float", repr(value))
    return ("str", _encode(str(value)))


def _decode_value(type_tag: str, text: str) -> PropertyValue:
    if type_tag == "bool":
        return text == "1"
    if type_tag == "int":
        return int(text)
    if type_tag == "float":
        return float(text)
    if type_tag == "str":
        return _decode(text)
    raise VLFormatError(f"unknown property type tag {type_tag!r}")


def _write_props(lines: List[str], keyword: str, bag: PropertyBag) -> None:
    for prop in bag:
        type_tag, encoded = _encode_value(prop.value)
        lines.append(f"{keyword} {_encode(prop.name)} {type_tag} {encoded}")


# ---------------------------------------------------------------------------
# Libraries
# ---------------------------------------------------------------------------


def dump_library(library: Library) -> str:
    lines = [f"VLLIB {_encode(library.name)}"]
    for symbol in library.symbols():
        body = symbol.body
        lines.append(
            f"SYM {_encode(symbol.name)} {_encode(symbol.view)} {symbol.kind} "
            f"{body.x1} {body.y1} {body.x2} {body.y2}"
        )
        for pin in symbol.pins:
            lines.append(f"PIN {_encode(pin.name)} {pin.direction} {pin.position.x} {pin.position.y}")
        _write_props(lines, "SPROP", symbol.properties)
        lines.append("ENDSYM")
    lines.append("ENDLIB")
    return "\n".join(lines) + "\n"


def load_library(text: str) -> Library:
    lines = _meaningful_lines(text)
    if not lines or not lines[0].startswith("VLLIB "):
        raise VLFormatError("missing VLLIB header")
    library = Library(_decode(lines[0].split()[1]))
    index = 1
    while index < len(lines):
        line = lines[index]
        if line == "ENDLIB":
            return library
        fields = line.split()
        if fields[0] != "SYM":
            raise VLFormatError(f"expected SYM record, got {line!r}")
        if len(fields) != 8:
            raise VLFormatError(f"bad SYM record: {line!r}")
        name, view, kind = _decode(fields[1]), _decode(fields[2]), fields[3]
        body = Rect(int(fields[4]), int(fields[5]), int(fields[6]), int(fields[7]))
        pins: List[SymbolPin] = []
        properties = PropertyBag()
        index += 1
        while index < len(lines) and lines[index] != "ENDSYM":
            fields = lines[index].split()
            if fields[0] == "PIN":
                pins.append(
                    SymbolPin(_decode(fields[1]), Point(int(fields[3]), int(fields[4])), fields[2])
                )
            elif fields[0] == "SPROP":
                properties.set(_decode(fields[1]), _decode_value(fields[2], fields[3]))
            else:
                raise VLFormatError(f"unexpected record in SYM: {lines[index]!r}")
            index += 1
        if index >= len(lines):
            raise VLFormatError("unterminated SYM record")
        library.add(
            Symbol(
                library=library.name, name=name, view=view, body=body,
                pins=pins, properties=properties, kind=kind,
            )
        )
        index += 1
    raise VLFormatError("missing ENDLIB")


# ---------------------------------------------------------------------------
# Schematics
# ---------------------------------------------------------------------------


def dump_schematic(schematic: Schematic) -> str:
    lines = [f"VLSCHEM 1 {_encode(schematic.name)} {_encode(schematic.dialect)}"]
    for port in schematic.ports:
        lines.append(f"PORT {_encode(port.name)} {port.direction}")
    _write_props(lines, "CPROP", schematic.properties)
    for page in schematic.pages:
        frame = page.frame
        lines.append(f"PAGE {page.number} {frame.x1} {frame.y1} {frame.x2} {frame.y2}")
        for instance in page.instances:
            symbol = instance.symbol
            offset = instance.transform.offset
            lines.append(
                f"I {_encode(instance.name)} {_encode(symbol.library)} "
                f"{_encode(symbol.name)} {_encode(symbol.view)} "
                f"{offset.x} {offset.y} {instance.transform.orientation.value}"
            )
            _write_props(lines, "IPROP", instance.properties)
        for wire in page.wires:
            label = _encode(wire.label) if wire.label else "-"
            coords = " ".join(f"{p.x} {p.y}" for p in wire.points)
            lines.append(f"W {label} {len(wire.points)} {coords}")
        for label in page.labels:
            lines.append(
                f"T {label.position.x} {label.position.y} {label.height} "
                f"{label.width_per_char} {label.baseline_offset} {_encode(label.text)}"
            )
        lines.append("ENDPAGE")
    lines.append("END")
    return "\n".join(lines) + "\n"


def load_schematic(text: str, libraries) -> Schematic:
    """Parse a schematic, resolving instances against ``libraries``.

    ``libraries`` is a :class:`~cadinterop.schematic.model.LibrarySet`; an
    instance referring to an unknown master is a hard error, matching the
    behaviour of real tools that refuse to open a design without its
    libraries installed.
    """
    lines = _meaningful_lines(text)
    if not lines or not lines[0].startswith("VLSCHEM "):
        raise VLFormatError("missing VLSCHEM header")
    header = lines[0].split()
    if len(header) != 4:
        raise VLFormatError(f"bad VLSCHEM header: {lines[0]!r}")
    schematic = Schematic(_decode(header[2]), _decode(header[3]))

    page: Optional[Page] = None
    last_instance: Optional[Instance] = None
    index = 1
    while index < len(lines):
        line = lines[index]
        fields = line.split()
        keyword = fields[0]
        if keyword == "END":
            return schematic
        if keyword == "PORT":
            schematic.add_port(Port(_decode(fields[1]), fields[2]))
        elif keyword == "CPROP":
            schematic.properties.set(_decode(fields[1]), _decode_value(fields[2], fields[3]))
        elif keyword == "PAGE":
            frame = Rect(int(fields[2]), int(fields[3]), int(fields[4]), int(fields[5]))
            page = schematic.add_page(frame)
            if page.number != int(fields[1]):
                raise VLFormatError(
                    f"page numbers must be sequential; got {fields[1]}, expected {page.number}"
                )
        elif keyword == "ENDPAGE":
            page = None
            last_instance = None
        elif keyword == "I":
            if page is None:
                raise VLFormatError("instance record outside PAGE")
            symbol = libraries.resolve(_decode(fields[2]), _decode(fields[3]), _decode(fields[4]))
            last_instance = Instance(
                name=_decode(fields[1]),
                symbol=symbol,
                transform=Transform(Point(int(fields[5]), int(fields[6])), Orientation(fields[7])),
            )
            page.add_instance(last_instance)
        elif keyword == "IPROP":
            if last_instance is None:
                raise VLFormatError("IPROP record without preceding instance")
            last_instance.properties.set(_decode(fields[1]), _decode_value(fields[2], fields[3]))
        elif keyword == "W":
            if page is None:
                raise VLFormatError("wire record outside PAGE")
            label = None if fields[1] == "-" else _decode(fields[1])
            count = int(fields[2])
            coords = fields[3:]
            if len(coords) != 2 * count:
                raise VLFormatError(f"wire coordinate count mismatch: {line!r}")
            points = [Point(int(coords[i]), int(coords[i + 1])) for i in range(0, len(coords), 2)]
            page.add_wire(Wire(points, label=label))
        elif keyword == "T":
            if page is None:
                raise VLFormatError("text record outside PAGE")
            page.add_label(
                TextLabel(
                    text=_decode(" ".join(fields[6:])),
                    position=Point(int(fields[1]), int(fields[2])),
                    height=int(fields[3]),
                    width_per_char=int(fields[4]),
                    baseline_offset=int(fields[5]),
                )
            )
        else:
            raise VLFormatError(f"unknown record {keyword!r}")
        index += 1
    raise VLFormatError("missing END record")


def _meaningful_lines(text: str) -> List[str]:
    lines = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped and not stripped.startswith("#"):
            lines.append(stripped)
    return lines
