"""Global net and global-symbol mapping.

Section 2 ("Globals"): "Rules were defined for the labels, names, and/or
instances of objects, and how they were mapped to the corresponding
instances on the target system.  Similar to the replacement of components,
offsets and rotation codes were required to map the replaced components to
the correct location on the translated schematic.  When the schematic was
received by the target system, it used global instances and connectors from
the native component libraries."

Globals are power/ground style symbols whose every instance joins one
design-wide net.  Mapping them is a special case of symbol replacement plus
a *net-name* map (``VCC`` -> ``vdd!`` conventions differ between systems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Orientation, Point
from cadinterop.schematic.dialects import Dialect
from cadinterop.schematic.model import LibrarySet, Schematic
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMap, SymbolMapping


@dataclass
class GlobalRule:
    """Map one source global symbol + net name onto the target natives."""

    source_symbol: SymbolKey
    target_symbol: SymbolKey
    source_net: str
    target_net: str
    origin_offset: Point = Point(0, 0)
    rotation: Orientation = Orientation.R0


@dataclass
class GlobalMap:
    """All global-mapping rules for a migration."""

    rules: List[GlobalRule] = field(default_factory=list)

    def add(self, rule: GlobalRule) -> None:
        self.rules.append(rule)

    def as_symbol_mappings(self) -> List[SymbolMapping]:
        """Lower the symbol part of every rule into ordinary replacement rules."""
        return [
            SymbolMapping(
                source=rule.source_symbol,
                target=rule.target_symbol,
                origin_offset=rule.origin_offset,
                rotation=rule.rotation,
            )
            for rule in self.rules
        ]

    def net_name_map(self) -> Dict[str, str]:
        return {rule.source_net: rule.target_net for rule in self.rules}

    def extend_symbol_map(self, symbol_map: SymbolMap) -> None:
        for mapping in self.as_symbol_mappings():
            if symbol_map.lookup(mapping.source) is None:
                symbol_map.add(mapping)


def rename_global_nets(
    schematic: Schematic,
    global_map: GlobalMap,
    log: Optional[IssueLog] = None,
) -> int:
    """Rewrite global net labels and connector bindings to target names."""
    name_map = global_map.net_name_map()
    renamed = 0
    for page in schematic.pages:
        for wire in page.wires:
            if wire.label in name_map:
                old = wire.label
                wire.label = name_map[old]
                renamed += 1
                if log is not None:
                    log.add(
                        Severity.INFO, Category.NAME_MAPPING, old,
                        f"global net renamed to {wire.label!r} (native convention)",
                    )
        for instance in page.instances:
            signal = instance.properties.get("signal")
            if isinstance(signal, str) and signal in name_map:
                instance.properties.set("signal", name_map[signal], origin="global-map")
                renamed += 1
    return renamed


def default_global_map(source: Dialect, target: Dialect) -> GlobalMap:
    """Power/ground mapping between two dialects' native conventions."""
    gm = GlobalMap()
    gm.add(
        GlobalRule(
            source_symbol=SymbolKey(source.connectors.library, source.connectors.power),
            target_symbol=SymbolKey(target.connectors.library, target.connectors.power),
            source_net="VCC",
            target_net="vdd!",
        )
    )
    gm.add(
        GlobalRule(
            source_symbol=SymbolKey(source.connectors.library, source.connectors.ground),
            target_symbol=SymbolKey(target.connectors.library, target.connectors.ground),
            source_net="GND",
            target_net="gnd!",
        )
    )
    return gm
