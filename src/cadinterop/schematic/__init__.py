"""Schematic capture interoperability (paper Section 2).

The complete Viewdraw-like -> Composer-like migration system: data model,
dialect descriptors, grid rescaling, symbol replacement with minimal net
rip-up (Figure 1), standard and a/L-callback property mapping, bus syntax
translation, hierarchy/off-page connector synthesis, global mapping,
cosmetic text correction, and independent netlist verification.
"""

from cadinterop.schematic.busnotation import (
    BusRef,
    BusSyntax,
    BusSyntaxError,
    COMPOSER_BUS_SYNTAX,
    VIEWDRAW_BUS_SYNTAX,
    declared_buses_of,
    translate_net_name,
)
from cadinterop.schematic.connectors import (
    ConnectorReport,
    build_connector_library,
    find_floating_ends,
    insert_hierarchy_connectors,
    insert_offpage_connectors,
)
from cadinterop.schematic.dialects import (
    COMPOSER_LIKE,
    Dialect,
    FontMetrics,
    UNITS_PER_INCH,
    VIEWDRAW_LIKE,
    get_dialect,
    known_dialects,
    register_dialect,
)
from cadinterop.schematic.globals_ import GlobalMap, GlobalRule, default_global_map
from cadinterop.schematic.gridmap import rescale_schematic, scale_symbol
from cadinterop.schematic.migrate import (
    MigrationPlan,
    MigrationResult,
    Migrator,
    copy_schematic,
)
from cadinterop.schematic.model import (
    Design,
    Instance,
    Library,
    LibrarySet,
    Page,
    PinDirection,
    Port,
    Schematic,
    SchematicError,
    Symbol,
    SymbolPin,
    TextLabel,
    Wire,
)
from cadinterop.schematic.netlist import Net, Netlist, extract
from cadinterop.schematic.propertymap import (
    AddRule,
    CallbackRule,
    ChangeValueRule,
    DeleteRule,
    PropertyRuleSet,
    RenameRule,
    Scope,
)
from cadinterop.schematic.ripup import (
    BatchReplacementReport,
    ReplacementStats,
    replace_component,
)
from cadinterop.schematic.symbolmap import SymbolKey, SymbolMap, SymbolMapping
from cadinterop.schematic.verify import (
    VerificationResult,
    audit_properties,
    verify_migration,
)

__all__ = [
    "AddRule",
    "BatchReplacementReport",
    "BusRef",
    "BusSyntax",
    "BusSyntaxError",
    "COMPOSER_BUS_SYNTAX",
    "COMPOSER_LIKE",
    "CallbackRule",
    "ChangeValueRule",
    "ConnectorReport",
    "DeleteRule",
    "Design",
    "Dialect",
    "FontMetrics",
    "GlobalMap",
    "GlobalRule",
    "Instance",
    "Library",
    "LibrarySet",
    "MigrationPlan",
    "MigrationResult",
    "Migrator",
    "Net",
    "Netlist",
    "Page",
    "PinDirection",
    "Port",
    "PropertyRuleSet",
    "RenameRule",
    "ReplacementStats",
    "Schematic",
    "SchematicError",
    "Scope",
    "Symbol",
    "SymbolKey",
    "SymbolMap",
    "SymbolMapping",
    "SymbolPin",
    "TextLabel",
    "UNITS_PER_INCH",
    "VIEWDRAW_BUS_SYNTAX",
    "VIEWDRAW_LIKE",
    "VerificationResult",
    "Wire",
    "audit_properties",
    "build_connector_library",
    "copy_schematic",
    "declared_buses_of",
    "default_global_map",
    "extract",
    "find_floating_ends",
    "get_dialect",
    "insert_hierarchy_connectors",
    "insert_offpage_connectors",
    "known_dialects",
    "register_dialect",
    "replace_component",
    "rescale_schematic",
    "scale_symbol",
    "translate_net_name",
    "verify_migration",
]
