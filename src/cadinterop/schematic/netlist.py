"""Connectivity extraction from schematic geometry.

Schematic editors define connectivity geometrically: wires that touch are
one electrical net, a pin is connected to the wire passing through its
location, labels name nets, and — depending on dialect — nets on different
pages join either implicitly by sharing a name (Viewdraw-like) or only
through explicit off-page connector instances (Composer-like).  Global
symbols (power/ground) join the global net of their name wherever placed.

This extractor produces a :class:`Netlist` — net name -> set of
(instance, pin) terminals — which is the canonical form that migration
verification (:mod:`cadinterop.schematic.verify`) compares between source
and translated designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Point
from cadinterop.schematic.dialects import Dialect, get_dialect
from cadinterop.schematic.model import Instance, Page, Schematic, Wire


Terminal = Tuple[str, str]  # (instance name, pin name)


class _UnionFind:
    """Plain union-find over arbitrary hashable keys."""

    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}

    def add(self, key: object) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: object) -> object:
        self.add(key)
        root = key
        while self._parent[root] is not root:
            root = self._parent[root]
        while self._parent[key] is not root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            self._parent[rb] = ra

    def groups(self) -> Dict[object, List[object]]:
        result: Dict[object, List[object]] = {}
        for key in self._parent:
            result.setdefault(self.find(key), []).append(key)
        return result


@dataclass
class Net:
    """One extracted electrical net."""

    name: str
    terminals: Set[Terminal] = field(default_factory=set)
    labels: Set[str] = field(default_factory=set)
    pages: Set[int] = field(default_factory=set)
    is_global: bool = False
    wire_length: int = 0

    @property
    def terminal_count(self) -> int:
        return len(self.terminals)


class Netlist:
    """Extracted nets keyed by name, plus extraction diagnostics."""

    def __init__(self, cell_name: str) -> None:
        self.cell_name = cell_name
        self.nets: Dict[str, Net] = {}
        self.log = IssueLog()

    def net(self, name: str) -> Net:
        return self.nets[name]

    def add_net(self, net: Net) -> Net:
        self.nets[net.name] = net
        return net

    def net_of_terminal(self, terminal: Terminal) -> Optional[Net]:
        for net in self.nets.values():
            if terminal in net.terminals:
                return net
        return None

    def terminal_map(self) -> Dict[Terminal, str]:
        mapping: Dict[Terminal, str] = {}
        for net in self.nets.values():
            for terminal in net.terminals:
                mapping[terminal] = net.name
        return mapping

    def signature(self) -> FrozenSet[Tuple[FrozenSet[Terminal], bool]]:
        """A name-free structural signature: the partition of terminals.

        Two netlists with identical signatures have identical connectivity
        even if every net was renamed — exactly what migration must
        preserve.  Single-terminal nets are included: a dangling pin that
        becomes connected (or vice versa) must change the signature.
        """
        return frozenset(
            (frozenset(net.terminals), net.is_global)
            for net in self.nets.values()
            if net.terminals
        )

    def __len__(self) -> int:
        return len(self.nets)


def extract(schematic: Schematic, dialect: Optional[Dialect] = None) -> Netlist:
    """Extract the netlist of one schematic cell.

    ``dialect`` defaults to the schematic's own dialect and controls the
    cross-page discipline and connector-symbol recognition.
    """
    active = dialect or get_dialect(schematic.dialect)
    netlist = Netlist(schematic.name)
    uf = _UnionFind()

    # node keys: ("wire", page#, index) and ("pt", page#, x, y)
    wire_nodes: Dict[Tuple[int, int], Wire] = {}

    for page in schematic.pages:
        for index, wire in enumerate(page.wires):
            key = ("wire", page.number, index)
            uf.add(key)
            wire_nodes[(page.number, index)] = wire
        # Merge wires that touch geometrically.
        for i in range(len(page.wires)):
            for j in range(i + 1, len(page.wires)):
                if _wires_touch(page.wires[i], page.wires[j]):
                    uf.union(("wire", page.number, i), ("wire", page.number, j))

    # Attach instance pins to wires passing through their location; pins at
    # identical locations connect by abutment even with no wire.
    pin_terminals: Dict[Tuple[int, Point], List[Tuple[Terminal, Instance]]] = {}
    for page in schematic.pages:
        for instance in page.instances:
            for pin_name, position in instance.pin_positions().items():
                terminal = (instance.name, pin_name)
                point_key = ("pt", page.number, position.x, position.y)
                uf.add(point_key)
                pin_terminals.setdefault((page.number, position), []).append((terminal, instance))
                for index, wire in enumerate(page.wires):
                    if wire.touches_point(position):
                        uf.union(point_key, ("wire", page.number, index))

    groups = uf.groups()

    # Build provisional nets from connected groups.
    provisional: List[Net] = []
    for members in groups.values():
        net = Net(name="")
        for member in members:
            kind = member[0]
            if kind == "wire":
                _, page_number, index = member
                wire = wire_nodes[(page_number, index)]
                net.pages.add(page_number)
                net.wire_length += wire.length()
                if wire.label:
                    net.labels.add(wire.label)
            else:
                _, page_number, x, y = member
                for terminal, _instance in pin_terminals.get((page_number, Point(x, y)), []):
                    net.terminals.add(terminal)
                net.pages.add(page_number)
        if net.terminals or net.labels or net.wire_length:
            provisional.append(net)

    # Handle connector instances: their single pin joins the net at its
    # location (already done geometrically); the *meaning* differs by kind.
    global_binding: Dict[int, str] = {}  # provisional index -> global net name
    offpage_binding: Dict[int, str] = {}
    hier_binding: Dict[int, str] = {}

    def provisional_index_of(terminal: Terminal) -> Optional[int]:
        for idx, net in enumerate(provisional):
            if terminal in net.terminals:
                return idx
        return None

    for page in schematic.pages:
        for instance in page.instances:
            kind = instance.symbol.kind
            if kind == "component":
                continue
            signal = str(
                instance.properties.get("signal")
                or instance.properties.get("net")
                or instance.symbol.name
            )
            for pin_name in instance.symbol.pin_names():
                idx = provisional_index_of((instance.name, pin_name))
                if idx is None:
                    netlist.log.add(
                        Severity.WARNING, Category.CONNECTIVITY, instance.name,
                        f"{kind} connector pin {pin_name!r} is not attached to anything",
                    )
                    continue
                if kind == "global":
                    global_binding[idx] = signal
                elif kind == "offpage_connector":
                    offpage_binding[idx] = signal
                elif kind == "hier_connector":
                    hier_binding[idx] = signal

    # Merge nets by binding name: globals always; off-page connectors in
    # explicit dialects; same-label nets across pages in implicit dialects.
    merge_uf = _UnionFind()
    for idx in range(len(provisional)):
        merge_uf.add(idx)

    def merge_by(binding: Dict[int, str]) -> None:
        by_name: Dict[str, int] = {}
        for idx, name in binding.items():
            if name in by_name:
                merge_uf.union(by_name[name], idx)
            else:
                by_name[name] = idx

    merge_by(global_binding)
    merge_by(offpage_binding)

    if active.implicit_cross_page_by_name:
        by_label: Dict[str, int] = {}
        for idx, net in enumerate(provisional):
            for label in net.labels:
                if label in by_label:
                    merge_uf.union(by_label[label], idx)
                else:
                    by_label[label] = idx

    # Hierarchy connectors bind a net to a schematic port name.
    port_names = {port.name for port in schematic.ports}

    merged: Dict[object, Net] = {}
    for idx, net in enumerate(provisional):
        root = merge_uf.find(idx)
        if root not in merged:
            merged[root] = Net(name="")
        target = merged[root]
        target.terminals |= net.terminals
        target.labels |= net.labels
        target.pages |= net.pages
        target.wire_length += net.wire_length
        if idx in global_binding:
            target.is_global = True
            target.labels.add(global_binding[idx])
        if idx in offpage_binding:
            target.labels.add(offpage_binding[idx])
        if idx in hier_binding:
            target.labels.add(hier_binding[idx])

    # Name nets: prefer a label bound to a port, then any label, else synthesize.
    counter = 0
    used_names: Set[str] = set()
    for net in merged.values():
        port_labels = sorted(net.labels & port_names)
        other_labels = sorted(net.labels - port_names)
        if port_labels:
            name = port_labels[0]
        elif other_labels:
            name = other_labels[0]
        else:
            counter += 1
            name = f"unnamed${counter}"
        if name in used_names:
            netlist.log.add(
                Severity.ERROR, Category.CONNECTIVITY, name,
                "two disjoint nets carry the same name after extraction",
                remedy="expected a single net; check off-page connector usage",
            )
            suffix = 2
            while f"{name}${suffix}" in used_names:
                suffix += 1
            name = f"{name}${suffix}"
        used_names.add(name)
        net.name = name
        netlist.add_net(net)
        if len(net.labels) > 1 and not net.is_global:
            netlist.log.add(
                Severity.WARNING, Category.CONNECTIVITY, net.name,
                f"net carries multiple labels {sorted(net.labels)}; shorted nets?",
            )

    # Implicit cross-page connection without labels cannot be resolved; in
    # explicit dialects an unlabeled multi-page net is impossible by
    # construction, but a same-name pair NOT joined by an off-page connector
    # deserves a diagnostic because the implicit dialect would have joined it.
    if not active.implicit_cross_page_by_name:
        label_pages: Dict[str, Set[int]] = {}
        for net in netlist.nets.values():
            for label in net.labels:
                label_pages.setdefault(label, set()).update(net.pages)
        seen: Dict[str, int] = {}
        for net in netlist.nets.values():
            for label in net.labels:
                seen[label] = seen.get(label, 0) + 1
        for label, count in seen.items():
            if count > 1:
                netlist.log.add(
                    Severity.ERROR, Category.CONNECTIVITY, label,
                    f"label appears on {count} disjoint nets; {active.name} does not "
                    "connect same-named nets implicitly",
                    remedy="insert off-page connectors to make the connection explicit",
                )

    return netlist


def _wires_touch(a: Wire, b: Wire) -> bool:
    for seg_a in a.segments():
        for seg_b in b.segments():
            if seg_a.touches(seg_b):
                return True
    return False
