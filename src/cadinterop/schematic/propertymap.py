"""Property mapping rules: standard and non-standard (a/L callbacks).

Section 2 distinguishes two kinds of property translation:

* **Standard property mapping** — declarative rules: "the addition,
  deletion, renaming or changing of property names, values, and text
  labels".  Modelled here as :class:`PropertyRule` variants applied by a
  :class:`PropertyRuleSet`.
* **Non-standard property mapping** — "special property mapping
  requirements for analog properties required the reformatting of single
  properties into multiple properties... handled by the addition of Access
  Language (a/L) callbacks for a selected set of objects."  Modelled as
  :class:`CallbackRule`, which runs an a/L program against the object.

Rules can be scoped to a symbol (by ``library/name/view`` pattern, ``*``
wildcards allowed) so callbacks apply to "a selected set of objects".
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.properties import PropertyBag, PropertyValue
from cadinterop.schematic import al
from cadinterop.schematic.model import Instance
from cadinterop.schematic.symbolmap import SymbolKey


@dataclass(frozen=True)
class Scope:
    """Which objects a rule applies to; glob patterns on the symbol key."""

    library: str = "*"
    name: str = "*"
    view: str = "*"

    def matches(self, key: SymbolKey) -> bool:
        return (
            fnmatch.fnmatchcase(key.library, self.library)
            and fnmatch.fnmatchcase(key.name, self.name)
            and fnmatch.fnmatchcase(key.view, self.view)
        )


ANY_SCOPE = Scope()


@dataclass
class AddRule:
    """Add (or overwrite) a property with a fixed value."""

    property_name: str
    value: PropertyValue
    scope: Scope = ANY_SCOPE

    def apply(self, bag: PropertyBag, log: IssueLog, subject: str) -> None:
        bag.set(self.property_name, self.value, origin="property-map")
        log.add(
            Severity.INFO, Category.PROPERTY_MAPPING, subject,
            f"added property {self.property_name!r} = {self.value!r}",
        )


@dataclass
class DeleteRule:
    """Remove a property if present."""

    property_name: str
    scope: Scope = ANY_SCOPE

    def apply(self, bag: PropertyBag, log: IssueLog, subject: str) -> None:
        if bag.remove(self.property_name) is not None:
            log.add(
                Severity.INFO, Category.PROPERTY_MAPPING, subject,
                f"deleted property {self.property_name!r}",
            )


@dataclass
class RenameRule:
    """Rename a property, preserving its value and position."""

    old_name: str
    new_name: str
    scope: Scope = ANY_SCOPE

    def apply(self, bag: PropertyBag, log: IssueLog, subject: str) -> None:
        if bag.rename(self.old_name, self.new_name, origin="property-map"):
            log.add(
                Severity.INFO, Category.PROPERTY_MAPPING, subject,
                f"renamed property {self.old_name!r} -> {self.new_name!r}",
            )


@dataclass
class ChangeValueRule:
    """Rewrite the value of an existing property via a value map or format."""

    property_name: str
    value_map: Dict[PropertyValue, PropertyValue] = field(default_factory=dict)
    format_string: Optional[str] = None
    scope: Scope = ANY_SCOPE

    def apply(self, bag: PropertyBag, log: IssueLog, subject: str) -> None:
        if self.property_name not in bag:
            return
        old = bag.get(self.property_name)
        if old in self.value_map:
            new: PropertyValue = self.value_map[old]
        elif self.format_string is not None:
            new = self.format_string.format(value=old)
        else:
            return
        if new != old:
            bag.set(self.property_name, new, origin="property-map")
            log.add(
                Severity.INFO, Category.PROPERTY_MAPPING, subject,
                f"changed {self.property_name!r}: {old!r} -> {new!r}",
            )


@dataclass
class CallbackRule:
    """Run an a/L program against the object (non-standard mapping).

    The program sees the object as ``obj`` with the full property API; this
    is how one property is reformatted into several with "no manual post
    translation cleanup".
    """

    source: str
    scope: Scope = ANY_SCOPE
    description: str = ""

    def apply_to_instance(self, instance: Instance, log: IssueLog, context: Optional[Dict[str, Any]] = None) -> None:
        try:
            al.run_callback(self.source, instance, context)
            log.add(
                Severity.INFO, Category.PROPERTY_MAPPING, instance.name,
                f"a/L callback applied{': ' + self.description if self.description else ''}",
            )
        except al.ALError as exc:
            log.add(
                Severity.ERROR, Category.PROPERTY_MAPPING, instance.name,
                f"a/L callback failed: {exc}",
                remedy="fix the callback program; object left unmodified beyond partial effects",
            )


@dataclass
class DesignCallbackRule:
    """An a/L program run once against the whole schematic.

    The program sees the schematic as ``design`` with page/instance
    navigation builtins — the paper's "interact with the entire design
    hierarchy during the migration process".
    """

    source: str
    description: str = ""

    def apply_to_design(self, schematic: Any, log: IssueLog, context: Optional[Dict[str, Any]] = None) -> None:
        try:
            al.run_design_callback(self.source, schematic, context)
            log.add(
                Severity.INFO, Category.PROPERTY_MAPPING, schematic.name,
                f"design-level a/L callback applied"
                f"{': ' + self.description if self.description else ''}",
            )
        except al.ALError as exc:
            log.add(
                Severity.ERROR, Category.PROPERTY_MAPPING, schematic.name,
                f"design-level a/L callback failed: {exc}",
                remedy="fix the callback program",
            )


PropertyRule = Union[AddRule, DeleteRule, RenameRule, ChangeValueRule]


class PropertyRuleSet:
    """Ordered rules applied to every migrated instance in sequence."""

    def __init__(
        self,
        rules: Sequence[PropertyRule] = (),
        callbacks: Sequence[CallbackRule] = (),
        design_callbacks: Sequence[DesignCallbackRule] = (),
    ) -> None:
        self.rules: List[PropertyRule] = list(rules)
        self.callbacks: List[CallbackRule] = list(callbacks)
        self.design_callbacks: List[DesignCallbackRule] = list(design_callbacks)

    def add_rule(self, rule: PropertyRule) -> None:
        self.rules.append(rule)

    def add_callback(self, callback: CallbackRule) -> None:
        self.callbacks.append(callback)

    def add_design_callback(self, callback: DesignCallbackRule) -> None:
        self.design_callbacks.append(callback)

    def apply_to_design(self, schematic: Any, log: IssueLog, context: Optional[Dict[str, Any]] = None) -> None:
        for callback in self.design_callbacks:
            callback.apply_to_design(schematic, log, context)

    def apply_to_instance(
        self,
        instance: Instance,
        symbol_key: SymbolKey,
        log: IssueLog,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Apply declarative rules then callbacks whose scope matches."""
        for rule in self.rules:
            if rule.scope.matches(symbol_key):
                rule.apply(instance.properties, log, instance.name)
        for callback in self.callbacks:
            if callback.scope.matches(symbol_key):
                callback.apply_to_instance(instance, log, context)
