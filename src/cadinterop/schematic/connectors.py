"""Hierarchy and off-page connector synthesis.

Section 2 ("Hierarchy and off page connectors"): the Viewdraw-like dialect
"does not require the explicit use of either hierarchy or off-page
connectors, however, [the Composer-like dialect] requires both."  Worse,
the source "connects same signal names across multiple pages implicitly"
while the target "requires these connections to be explicit by using
off-page connectors.  The connectivity challenge was addressed by
maintaining an understanding of the connections during the migration
process.  The geometrical challenge was addressed by adding off-page
connectors to the end of wires if a floating wire was determined, or to the
side of the schematic sheets for these internal connections."

This module implements exactly that: it finds floating wire ends to host
connectors, otherwise routes a stub toward the sheet edge (falling back to
direct attachment if the stub would short another net), and instantiates
the target dialect's native connector symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.geometry import Point, Rect, Segment, Transform
from cadinterop.schematic.dialects import Dialect
from cadinterop.schematic.model import (
    Instance,
    Library,
    LibrarySet,
    Page,
    PinDirection,
    Schematic,
    Symbol,
    SymbolPin,
    Wire,
)


def build_connector_library(dialect: Dialect) -> Library:
    """Build the native connector library a dialect expects.

    Every connector symbol carries one pin ``P`` at its origin; global
    symbols (power/ground) likewise.  Real libraries are richer, but this is
    the interface contract the migration needs.
    """
    names = dialect.connectors
    library = Library(names.library)
    body = Rect(0, 0, dialect.grid.pitch_units, dialect.grid.pitch_units)

    def connector(name: str, kind: str, direction: str) -> Symbol:
        return Symbol(
            library=names.library,
            name=name,
            body=body,
            pins=[SymbolPin("P", Point(0, 0), direction)],
            kind=kind,
        )

    library.add(connector(names.hier_in, "hier_connector", PinDirection.INPUT))
    library.add(connector(names.hier_out, "hier_connector", PinDirection.OUTPUT))
    library.add(connector(names.hier_inout, "hier_connector", PinDirection.BIDIRECTIONAL))
    library.add(connector(names.offpage, "offpage_connector", PinDirection.BIDIRECTIONAL))
    library.add(connector(names.power, "global", PinDirection.BIDIRECTIONAL))
    library.add(connector(names.ground, "global", PinDirection.BIDIRECTIONAL))
    return library


@dataclass(frozen=True)
class FloatingEnd:
    """A wire endpoint touching neither a pin nor another wire."""

    page_number: int
    wire_index: int
    end_index: int  # 0 or -1
    point: Point


def find_floating_ends(page: Page) -> List[FloatingEnd]:
    """Locate all floating wire ends on a page."""
    pin_points: Set[Point] = set()
    for instance in page.instances:
        pin_points.update(instance.pin_positions().values())

    floating: List[FloatingEnd] = []
    for index, wire in enumerate(page.wires):
        for end_index, point in ((0, wire.points[0]), (-1, wire.points[-1])):
            if point in pin_points:
                continue
            touched = False
            for other_index, other in enumerate(page.wires):
                if other_index == index:
                    continue
                if other.touches_point(point):
                    touched = True
                    break
            if not touched:
                floating.append(FloatingEnd(page.number, index, end_index, point))
    return floating


@dataclass
class ConnectorReport:
    """What connector synthesis did, for auditing and benchmarks."""

    offpage_added: int = 0
    hierarchy_added: int = 0
    placed_on_floating_end: int = 0
    placed_at_sheet_edge: int = 0
    placed_direct: int = 0


class _ConnectorNamer:
    """Generates unique instance names for synthesized connectors."""

    def __init__(self, schematic: Schematic, prefix: str) -> None:
        self._taken = {instance.name for _page, instance in schematic.all_instances()}
        self._prefix = prefix
        self._counter = 0

    def next(self) -> str:
        while True:
            self._counter += 1
            name = f"{self._prefix}{self._counter}"
            if name not in self._taken:
                self._taken.add(name)
                return name


def _stub_is_clear(page: Page, stub: Segment, ignore_wire: int) -> bool:
    """True if ``stub`` would not touch any other wire or instance pin."""
    for index, wire in enumerate(page.wires):
        if index == ignore_wire:
            continue
        for segment in wire.segments():
            if segment.touches(stub) or stub.touches(segment):
                return False
    for instance in page.instances:
        for point in instance.pin_positions().values():
            if stub.contains_point(point):
                return False
    return True


def _attach_connector(
    schematic: Schematic,
    page: Page,
    point: Point,
    symbol: Symbol,
    signal: str,
    namer: _ConnectorNamer,
) -> Instance:
    instance = Instance(
        name=namer.next(),
        symbol=symbol,
        transform=Transform(point),
    )
    instance.properties.set("signal", signal, origin="connector-synthesis")
    page.add_instance(instance)
    return instance


def _place_for_net(
    schematic: Schematic,
    page: Page,
    wire_index: int,
    floating: Optional[FloatingEnd],
    symbol: Symbol,
    signal: str,
    namer: _ConnectorNamer,
    report: ConnectorReport,
    log: IssueLog,
) -> None:
    """Place one connector for the net carried by ``page.wires[wire_index]``."""
    wire = page.wires[wire_index]
    if floating is not None:
        _attach_connector(schematic, page, floating.point, symbol, signal, namer)
        report.placed_on_floating_end += 1
        return

    # No floating end: try a stub to the nearest sheet edge from the wire's
    # first endpoint; fall back to direct attachment if the stub would short.
    anchor = wire.points[0]
    frame = page.frame
    edge_point = Point(frame.x1, anchor.y)
    if anchor.x - frame.x1 > frame.x2 - anchor.x:
        edge_point = Point(frame.x2, anchor.y)
    if edge_point != anchor:
        stub = Segment(anchor, edge_point)
        if _stub_is_clear(page, stub, ignore_wire=wire_index):
            page.add_wire(Wire([anchor, edge_point]))
            _attach_connector(schematic, page, edge_point, symbol, signal, namer)
            report.placed_at_sheet_edge += 1
            return

    _attach_connector(schematic, page, anchor, symbol, signal, namer)
    report.placed_direct += 1
    log.add(
        Severity.NOTE, Category.CONNECTIVITY, signal,
        f"connector placed directly on net (sheet-edge stub would short another net)",
    )


def insert_offpage_connectors(
    schematic: Schematic,
    dialect: Dialect,
    libraries: LibrarySet,
    log: Optional[IssueLog] = None,
    report: Optional[ConnectorReport] = None,
) -> ConnectorReport:
    """Make implicit cross-page connections explicit with off-page connectors.

    For every label appearing (as a wire label) on more than one page, an
    off-page connector bound to that signal is added on each such page.
    """
    log = log if log is not None else IssueLog()
    report = report if report is not None else ConnectorReport()
    namer = _ConnectorNamer(schematic, "offpage$")
    connector_symbol = libraries.resolve(
        dialect.connectors.library, dialect.connectors.offpage
    )

    # label -> page -> first labeled wire index
    label_sites: Dict[str, Dict[int, int]] = {}
    for page in schematic.pages:
        for index, wire in enumerate(page.wires):
            if wire.label:
                label_sites.setdefault(wire.label, {}).setdefault(page.number, index)

    floating_by_page: Dict[int, List[FloatingEnd]] = {
        page.number: find_floating_ends(page) for page in schematic.pages
    }

    for label, sites in sorted(label_sites.items()):
        if len(sites) < 2:
            continue
        for page_number, wire_index in sorted(sites.items()):
            page = schematic.page(page_number)
            floating = next(
                (
                    end
                    for end in floating_by_page[page_number]
                    if end.wire_index == wire_index
                ),
                None,
            )
            if floating is not None:
                floating_by_page[page_number].remove(floating)
            _place_for_net(
                schematic, page, wire_index, floating, connector_symbol, label,
                namer, report, log,
            )
            report.offpage_added += 1
        log.add(
            Severity.INFO, Category.CONNECTIVITY, label,
            f"implicit cross-page net made explicit on pages {sorted(sites)}",
            remedy="off-page connectors synthesized",
        )
    return report


def insert_hierarchy_connectors(
    schematic: Schematic,
    dialect: Dialect,
    libraries: LibrarySet,
    log: Optional[IssueLog] = None,
    report: Optional[ConnectorReport] = None,
) -> ConnectorReport:
    """Bind each schematic port to a hierarchy connector on its named net."""
    log = log if log is not None else IssueLog()
    report = report if report is not None else ConnectorReport()
    namer = _ConnectorNamer(schematic, "hier$")
    names = dialect.connectors
    symbol_for_direction = {
        PinDirection.INPUT: libraries.resolve(names.library, names.hier_in),
        PinDirection.OUTPUT: libraries.resolve(names.library, names.hier_out),
        PinDirection.BIDIRECTIONAL: libraries.resolve(names.library, names.hier_inout),
    }

    floating_by_page: Dict[int, List[FloatingEnd]] = {
        page.number: find_floating_ends(page) for page in schematic.pages
    }

    for port in schematic.ports:
        placed = False
        for page in schematic.pages:
            for index, wire in enumerate(page.wires):
                if wire.label != port.name:
                    continue
                floating = next(
                    (
                        end
                        for end in floating_by_page[page.number]
                        if end.wire_index == index
                    ),
                    None,
                )
                if floating is not None:
                    floating_by_page[page.number].remove(floating)
                _place_for_net(
                    schematic, page, index, floating,
                    symbol_for_direction[port.direction], port.name,
                    namer, report, log,
                )
                report.hierarchy_added += 1
                placed = True
                break
            if placed:
                break
        if not placed:
            log.add(
                Severity.ERROR, Category.CONNECTIVITY, port.name,
                "no labeled net found for port; hierarchy connector not placed",
                remedy="label the port's net or add the connector manually",
            )
    return report
