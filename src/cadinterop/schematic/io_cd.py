"""Composer-like text format: s-expression schematic serialization.

The target system of the paper's case study is modelled with a fully
parenthesized format (its real counterpart exposed a Lisp-based access
language, so the on-disk flavor follows suit).  The reader reuses the a/L
s-expression parser — one concrete benefit of having implemented the
callback language properly.

Format sketch::

    (library "cd_basic"
      (symbol "nand2" "symbol" component (body 0 0 40 40)
        (pin "A" input (at 0 10))
        (prop "model" str "nand2_lvs")))

    (schematic "counter" "composer-like"
      (port "clk" input)
      (prop "author" str "exar")
      (page 1 (frame 0 0 1000 800)
        (inst "I1" ("cd_basic" "nand2" "symbol") (at 100 200) (orient R0)
          (prop "w" str "2u"))
        (wire (label "A<0>") (pts 0 0 10 0))
        (text "title" (at 5 5) (font 10 7 2))))
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from cadinterop.common.geometry import Orientation, Point, Rect, Transform
from cadinterop.common.properties import PropertyBag, PropertyValue
from cadinterop.schematic import al
from cadinterop.schematic.model import (
    Instance,
    Library,
    Page,
    Port,
    Schematic,
    SchematicError,
    Symbol,
    SymbolPin,
    TextLabel,
    Wire,
)


class CDFormatError(SchematicError):
    """Malformed Composer-like text."""


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _emit_value(value: PropertyValue) -> str:
    if isinstance(value, bool):
        return f"bool {'#t' if value else '#f'}"
    if isinstance(value, int):
        return f"int {value}"
    if isinstance(value, float):
        return f"float {value!r}"
    return f"str {_quote(str(value))}"


def _emit_props(bag: PropertyBag, indent: str) -> List[str]:
    return [f"{indent}(prop {_quote(p.name)} {_emit_value(p.value)})" for p in bag]


# ---------------------------------------------------------------------------
# Emitters
# ---------------------------------------------------------------------------


def dump_library(library: Library) -> str:
    lines = [f"(library {_quote(library.name)}"]
    for symbol in library.symbols():
        body = symbol.body
        lines.append(
            f"  (symbol {_quote(symbol.name)} {_quote(symbol.view)} {symbol.kind} "
            f"(body {body.x1} {body.y1} {body.x2} {body.y2})"
        )
        for pin in symbol.pins:
            lines.append(
                f"    (pin {_quote(pin.name)} {pin.direction} (at {pin.position.x} {pin.position.y}))"
            )
        lines.extend(_emit_props(symbol.properties, "    "))
        lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"


def dump_schematic(schematic: Schematic) -> str:
    lines = [f"(schematic {_quote(schematic.name)} {_quote(schematic.dialect)}"]
    for port in schematic.ports:
        lines.append(f"  (port {_quote(port.name)} {port.direction})")
    lines.extend(_emit_props(schematic.properties, "  "))
    for page in schematic.pages:
        frame = page.frame
        lines.append(f"  (page {page.number} (frame {frame.x1} {frame.y1} {frame.x2} {frame.y2})")
        for instance in page.instances:
            symbol = instance.symbol
            offset = instance.transform.offset
            lines.append(
                f"    (inst {_quote(instance.name)} "
                f"({_quote(symbol.library)} {_quote(symbol.name)} {_quote(symbol.view)}) "
                f"(at {offset.x} {offset.y}) (orient {instance.transform.orientation.value})"
            )
            lines.extend(_emit_props(instance.properties, "      "))
            lines.append("    )")
        for wire in page.wires:
            label = f"(label {_quote(wire.label)}) " if wire.label else ""
            coords = " ".join(f"{p.x} {p.y}" for p in wire.points)
            lines.append(f"    (wire {label}(pts {coords}))")
        for label in page.labels:
            lines.append(
                f"    (text {_quote(label.text)} (at {label.position.x} {label.position.y}) "
                f"(font {label.height} {label.width_per_char} {label.baseline_offset}))"
            )
        lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Readers (on top of the a/L s-expression parser)
# ---------------------------------------------------------------------------


def _parse_one(text: str, expected_head: str) -> List[Any]:
    try:
        forms = al.parse(text)
    except al.ALError as exc:
        raise CDFormatError(f"unreadable {expected_head} text: {exc}") from None
    if len(forms) != 1 or not isinstance(forms[0], list) or not forms[0]:
        raise CDFormatError(f"expected a single ({expected_head} ...) form")
    head = forms[0][0]
    if not isinstance(head, al.Symbol) or head.name != expected_head:
        raise CDFormatError(f"expected ({expected_head} ...), got ({head} ...)")
    return forms[0]


def _sym(value: Any) -> str:
    if isinstance(value, al.Symbol):
        return value.name
    raise CDFormatError(f"expected symbol, got {value!r}")


def _str(value: Any) -> str:
    if isinstance(value, str):
        return value
    raise CDFormatError(f"expected string, got {value!r}")


def _int(value: Any) -> int:
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise CDFormatError(f"expected integer, got {value!r}")


def _sections(form: Sequence[Any], start: int) -> List[List[Any]]:
    sections = []
    for item in form[start:]:
        if not isinstance(item, list) or not item or not isinstance(item[0], al.Symbol):
            raise CDFormatError(f"expected (keyword ...) section, got {item!r}")
        sections.append(item)
    return sections


def _read_value(type_tag: str, raw: Any) -> PropertyValue:
    if type_tag == "bool":
        if isinstance(raw, bool):
            return raw
        raise CDFormatError(f"expected boolean literal, got {raw!r}")
    if type_tag == "int":
        return _int(raw)
    if type_tag == "float":
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            return float(raw)
        raise CDFormatError(f"expected float literal, got {raw!r}")
    if type_tag == "str":
        return _str(raw)
    raise CDFormatError(f"unknown property type {type_tag!r}")


def _read_prop(section: List[Any], bag: PropertyBag) -> None:
    if len(section) != 4:
        raise CDFormatError(f"bad prop section: {section!r}")
    bag.set(_str(section[1]), _read_value(_sym(section[2]), section[3]))


def load_library(text: str) -> Library:
    form = _parse_one(text, "library")
    if len(form) < 2:
        raise CDFormatError("library form missing name")
    library = Library(_str(form[1]))
    for section in _sections(form, 2):
        if _sym(section[0]) != "symbol":
            raise CDFormatError(f"unexpected {_sym(section[0])!r} in library")
        if len(section) < 5:
            raise CDFormatError(f"bad symbol section: {section!r}")
        name, view, kind = _str(section[1]), _str(section[2]), _sym(section[3])
        body_section = section[4]
        if _sym(body_section[0]) != "body" or len(body_section) != 5:
            raise CDFormatError(f"bad body section: {body_section!r}")
        body = Rect(*(_int(v) for v in body_section[1:5]))
        pins: List[SymbolPin] = []
        properties = PropertyBag()
        for sub in _sections(section, 5):
            keyword = _sym(sub[0])
            if keyword == "pin":
                at = sub[3]
                if _sym(at[0]) != "at":
                    raise CDFormatError(f"pin missing (at ...): {sub!r}")
                pins.append(SymbolPin(_str(sub[1]), Point(_int(at[1]), _int(at[2])), _sym(sub[2])))
            elif keyword == "prop":
                _read_prop(sub, properties)
            else:
                raise CDFormatError(f"unexpected {keyword!r} in symbol")
        library.add(
            Symbol(
                library=library.name, name=name, view=view, body=body,
                pins=pins, properties=properties, kind=kind,
            )
        )
    return library


def load_schematic(text: str, libraries) -> Schematic:
    form = _parse_one(text, "schematic")
    if len(form) < 3:
        raise CDFormatError("schematic form missing name/dialect")
    schematic = Schematic(_str(form[1]), _str(form[2]))
    for section in _sections(form, 3):
        keyword = _sym(section[0])
        if keyword == "port":
            schematic.add_port(Port(_str(section[1]), _sym(section[2])))
        elif keyword == "prop":
            _read_prop(section, schematic.properties)
        elif keyword == "page":
            _read_page(section, schematic, libraries)
        else:
            raise CDFormatError(f"unexpected {keyword!r} in schematic")
    return schematic


def _read_page(section: List[Any], schematic: Schematic, libraries) -> None:
    frame_section = section[2]
    if _sym(frame_section[0]) != "frame" or len(frame_section) != 5:
        raise CDFormatError(f"bad frame section: {frame_section!r}")
    page = schematic.add_page(Rect(*(_int(v) for v in frame_section[1:5])))
    if page.number != _int(section[1]):
        raise CDFormatError(
            f"page numbers must be sequential; got {section[1]}, expected {page.number}"
        )
    for sub in _sections(section, 3):
        keyword = _sym(sub[0])
        if keyword == "inst":
            ref = sub[2]
            if not isinstance(ref, list) or len(ref) != 3:
                raise CDFormatError(f"bad symbol reference: {ref!r}")
            symbol = libraries.resolve(_str(ref[0]), _str(ref[1]), _str(ref[2]))
            at = sub[3]
            orient = sub[4]
            if _sym(at[0]) != "at" or _sym(orient[0]) != "orient":
                raise CDFormatError(f"bad inst placement: {sub!r}")
            instance = Instance(
                name=_str(sub[1]),
                symbol=symbol,
                transform=Transform(
                    Point(_int(at[1]), _int(at[2])), Orientation(_sym(orient[1]))
                ),
            )
            for inner in _sections(sub, 5):
                if _sym(inner[0]) != "prop":
                    raise CDFormatError(f"unexpected {_sym(inner[0])!r} in inst")
                _read_prop(inner, instance.properties)
            page.add_instance(instance)
        elif keyword == "wire":
            label: Optional[str] = None
            points: List[Point] = []
            for inner in _sections(sub, 1):
                inner_keyword = _sym(inner[0])
                if inner_keyword == "label":
                    label = _str(inner[1])
                elif inner_keyword == "pts":
                    coords = inner[1:]
                    if len(coords) % 2:
                        raise CDFormatError(f"odd coordinate count in wire: {sub!r}")
                    points = [
                        Point(_int(coords[i]), _int(coords[i + 1]))
                        for i in range(0, len(coords), 2)
                    ]
                else:
                    raise CDFormatError(f"unexpected {inner_keyword!r} in wire")
            page.add_wire(Wire(points, label=label))
        elif keyword == "text":
            at = sub[2]
            font = sub[3]
            if _sym(at[0]) != "at" or _sym(font[0]) != "font":
                raise CDFormatError(f"bad text section: {sub!r}")
            page.add_label(
                TextLabel(
                    text=_str(sub[1]),
                    position=Point(_int(at[1]), _int(at[2])),
                    height=_int(font[1]),
                    width_per_char=_int(font[2]),
                    baseline_offset=_int(font[3]),
                )
            )
        else:
            raise CDFormatError(f"unexpected {keyword!r} in page")
