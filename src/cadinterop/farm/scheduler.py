"""The batch migration farm: fan a corpus out over workers, skip cached work.

The paper's consulting result was corpus-scale — whole schematic libraries
moved between vendor dialects.  :class:`MigrationFarm` takes a corpus of
schematic cells plus one :class:`~cadinterop.schematic.migrate.MigrationPlan`
and:

* serves unchanged designs from a content-addressed
  :class:`~cadinterop.farm.cache.ResultCache` (keyed on design digest, plan
  digest, and pipeline version), so re-running after editing one design
  re-migrates only that design;
* fans cache misses out across a ``concurrent.futures`` process pool
  (``jobs > 1``); each worker keeps one long-lived ``Migrator`` so symbol
  scaling and source-netlist extraction amortize across the designs it
  handles;
* aggregates the pipeline's per-stage timings plus its own bookkeeping
  stages (``farm:digest``, ``farm:cache-lookup``, ``farm:cache-store``)
  into a :class:`~cadinterop.farm.report.FarmReport`.

A design that fails to migrate is reported (``status="failed"`` with the
error text) without aborting the rest of the corpus.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import List, Optional, Sequence, Tuple, Union

from cadinterop.farm.cache import ResultCache, cache_key
from cadinterop.farm.profiler import StageProfiler
from cadinterop.farm.report import FarmItem, FarmReport
from cadinterop.obs.lineage import LossReport, enable_lineage, get_lineage
from cadinterop.obs.metrics import MetricsRegistry, get_metrics
from cadinterop.obs.trace import enable_tracing, get_tracer
from cadinterop.schematic.migrate import (
    MigrationPlan,
    MigrationResult,
    Migrator,
    plan_digest,
    schematic_digest,
)
from cadinterop.schematic.model import Schematic
from cadinterop.schematic.verify import NetlistCache

#: A unit of work shipped to a worker: (corpus index, schematic).
_Task = Tuple[int, Schematic]
#: What a worker sends back: (corpus index, result or None, error or None,
#: seconds spent migrating measured inside the worker, the spans the
#: worker's tracer recorded for this task, and the lineage records the
#: worker's recorder buffered — both empty when the facility is off or the
#: worker shares the submitting side's collector (inline/thread executors).
_Outcome = Tuple[int, Optional[MigrationResult], Optional[str], float, list, list]

# Per-process worker state for the process-pool executor.  Each worker
# builds one Migrator at pool start (plan arrives once via the initializer,
# not once per task) and reuses it for every design it is handed.
_WORKER_MIGRATOR: Optional[Migrator] = None


def _process_worker_init(
    plan: MigrationPlan,
    trace_id: Optional[str] = None,
    lineage: bool = False,
) -> None:
    global _WORKER_MIGRATOR
    _WORKER_MIGRATOR = Migrator(plan, netlist_cache=NetlistCache())
    if trace_id is not None:
        # Join the parent's trace: this worker's spans carry the same trace
        # id and are shipped back (and re-parented) with each outcome.
        enable_tracing(trace_id)
    if lineage:
        # Same pattern for provenance: the worker buffers lineage records
        # locally and ships them back (adopted) with each outcome.
        enable_lineage()


def _process_worker_migrate(task: _Task) -> _Outcome:
    index, schematic = task
    assert _WORKER_MIGRATOR is not None, "worker used before initialization"
    tracer = get_tracer()
    recorder = get_lineage()
    start = time.perf_counter()
    try:
        result = _WORKER_MIGRATOR.migrate(schematic)
        return (
            index, result, None, time.perf_counter() - start,
            tracer.drain(), recorder.drain(),
        )
    except Exception as exc:  # a bad design must not kill the corpus
        return (
            index, None, f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start, tracer.drain(), recorder.drain(),
        )


class MigrationFarm:
    """Runs one :class:`MigrationPlan` over a corpus of schematic cells.

    ``jobs`` is the worker count; ``executor`` is ``"process"``, ``"thread"``,
    or ``"inline"`` (default: processes when ``jobs > 1``, inline otherwise —
    thread workers only help when migration cost is dominated by I/O, the
    pipeline itself is pure Python).
    """

    def __init__(
        self,
        plan: MigrationPlan,
        jobs: int = 1,
        cache: Optional[Union[ResultCache, str]] = None,
        executor: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        if executor is None:
            executor = "process" if jobs > 1 else "inline"
        if executor not in ("process", "thread", "inline"):
            raise ValueError(f"unknown executor {executor!r}")
        self.plan = plan
        self.jobs = jobs
        self.cache = cache
        self.executor = executor

    def run(self, designs: Sequence[Schematic], keep_results: bool = True) -> FarmReport:
        """Migrate every design, preferring cached results; never raises for
        a single bad design — inspect ``report.items`` for failures.

        When tracing is enabled (:func:`cadinterop.obs.enable_tracing`) the
        run emits one ``farm:run`` span with every per-design ``migrate``
        span beneath it — including spans recorded inside thread and process
        workers, which are merged back and re-parented here.
        """
        tracer = get_tracer()
        with tracer.span(
            "farm:run", jobs=self.jobs, executor=self.executor, designs=len(designs)
        ) as run_span:
            return self._run(designs, keep_results, tracer, run_span)

    def _run(self, designs, keep_results, tracer, run_span) -> FarmReport:
        started = time.perf_counter()
        recorder = get_lineage()
        # Records emitted before this run (same recorder, earlier work)
        # must not leak into this run's loss report.
        lineage_mark = len(recorder)
        dialect_pair = (
            f"{self.plan.source_dialect.name}->{self.plan.target_dialect.name}"
        )
        registry = MetricsRegistry()
        profiler = StageProfiler(registry=registry)
        report = FarmReport(
            jobs=self.jobs, executor=self.executor, total=len(designs), profile=profiler
        )
        report.trace_id = tracer.trace_id if tracer.enabled else None
        report.items = [
            FarmItem(design=d.name, digest="", status="failed") for d in designs
        ]

        # Fold global rules into the symbol map once, up front: migrate()
        # does this idempotently per call, but doing it here keeps the plan
        # object stable before it is digested and shipped to workers (and
        # avoids a duplicate-add race between thread workers).
        self.plan.global_map.extend_symbol_map(self.plan.symbol_map)
        plan_d = plan_digest(self.plan)

        pending: List[_Task] = []
        keys: dict = {}
        with tracer.span("farm:scan", designs=len(designs)):
            for index, design in enumerate(designs):
                item = report.items[index]
                t0 = time.perf_counter()
                item.digest = schematic_digest(design)
                profiler.record("farm:digest", time.perf_counter() - t0, 1)
                if self.cache is not None:
                    keys[index] = cache_key(
                        item.digest, plan_d, self.cache.pipeline_version
                    )
                    t0 = time.perf_counter()
                    hit = self.cache.get(keys[index])
                    elapsed = time.perf_counter() - t0
                    profiler.record("farm:cache-lookup", elapsed, 1)
                    if hit is not None:
                        item.status = "cached"
                        item.clean = hit.clean
                        item.seconds = elapsed
                        item.result = hit if keep_results else None
                        report.cached += 1
                        recorder.record(
                            "design", design.name, "farm:cache", "preserved",
                            detail="served unchanged from result cache",
                            design=design.name, dialect=dialect_pair,
                        )
                        continue
                pending.append((index, design))

        for index, result, error, seconds, spans, lineage in self._execute(
            pending, run_span
        ):
            if spans:
                # Worker-side spans (process executor): re-root them under
                # this run so the merged trace stays one tree.
                tracer.adopt(spans, parent_id=run_span.span_id)
            if lineage:
                # Worker-side lineage records merge the same way; their
                # span links stay valid because the spans were adopted too.
                recorder.adopt(lineage)
            item = report.items[index]
            item.seconds = seconds
            if result is None:
                item.status = "failed"
                item.error = error or "unknown error"
                report.failed += 1
                continue
            item.status = "migrated"
            item.clean = result.clean
            item.result = result if keep_results else None
            report.migrated += 1
            profiler.record_samples(result.stages)
            if self.cache is not None:
                t0 = time.perf_counter()
                self.cache.put(keys[index], result)
                profiler.record("farm:cache-store", time.perf_counter() - t0, 1)

        for outcome, count in (
            ("migrated", report.migrated),
            ("cached", report.cached),
            ("failed", report.failed),
        ):
            if count:
                registry.counter(f"farm.designs.{outcome}").inc(count)
        if self.cache is not None:
            report.cache_hits = self.cache.hits
            report.cache_misses = self.cache.misses
            report.cache_corrupt = self.cache.corrupt
            for name, value in (
                ("farm.cache.hits", report.cache_hits),
                ("farm.cache.misses", report.cache_misses),
                ("farm.cache.corrupt", report.cache_corrupt),
            ):
                if value:
                    registry.counter(name).inc(value)
        if recorder.enabled:
            report.loss = LossReport.from_records(
                recorder.records()[lineage_mark:]
            )
        report.wall_seconds = time.perf_counter() - started
        report.metrics = registry.snapshot()
        # Roll this run up into the globally installed registry (no-op
        # unless metrics were enabled, e.g. under `cadinterop trace`).
        get_metrics().merge(report.metrics)
        return report

    # -- executors -------------------------------------------------------

    def _execute(self, tasks: List[_Task], run_span) -> List[_Outcome]:
        if not tasks:
            return []
        if self.executor == "process" and self.jobs > 1:
            return self._execute_processes(tasks)
        if self.executor == "thread" and self.jobs > 1:
            return self._execute_threads(tasks, run_span)
        return self._execute_inline(tasks)

    def _execute_inline(self, tasks: List[_Task]):
        migrator = Migrator(self.plan, netlist_cache=NetlistCache())
        outcomes = []
        for index, design in tasks:
            t0 = time.perf_counter()
            try:
                result, error = migrator.migrate(design), None
            except Exception as exc:
                result, error = None, f"{type(exc).__name__}: {exc}"
            outcomes.append((index, result, error, time.perf_counter() - t0, [], []))
        return outcomes

    def _execute_processes(self, tasks: List[_Task]) -> List[_Outcome]:
        workers = min(self.jobs, len(tasks))
        tracer = get_tracer()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_process_worker_init,
            initargs=(
                self.plan,
                tracer.trace_id if tracer.enabled else None,
                get_lineage().enabled,
            ),
        ) as pool:
            chunksize = max(1, len(tasks) // (workers * 4))
            return list(
                pool.map(_process_worker_migrate, tasks, chunksize=chunksize)
            )

    def _execute_threads(self, tasks: List[_Task], run_span):
        local = threading.local()
        tracer = get_tracer()

        def migrate_one(task: _Task):
            index, design = task
            if not hasattr(local, "migrator"):
                local.migrator = Migrator(self.plan, netlist_cache=NetlistCache())
            # Worker threads start with an empty span context; attach the
            # run span so each migrate span parents to it.
            token = tracer.attach(run_span.span_id) if tracer.enabled else None
            t0 = time.perf_counter()
            try:
                result, error = local.migrator.migrate(design), None
            except Exception as exc:
                result, error = None, f"{type(exc).__name__}: {exc}"
            finally:
                if token is not None:
                    tracer.detach(token)
            return index, result, error, time.perf_counter() - t0, [], []

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.jobs, len(tasks))
        ) as pool:
            return list(pool.map(migrate_one, tasks))


def migrate_corpus(
    plan: MigrationPlan,
    designs: Sequence[Schematic],
    jobs: int = 1,
    cache: Optional[Union[ResultCache, str]] = None,
    executor: Optional[str] = None,
    keep_results: bool = True,
) -> FarmReport:
    """One-call batch migration: build a farm, run the corpus, return the report."""
    farm = MigrationFarm(plan, jobs=jobs, cache=cache, executor=executor)
    return farm.run(designs, keep_results=keep_results)
