"""Batch migration farm: parallel corpus migration with result caching.

The paper's consulting engagement moved *libraries* of schematics between
vendor dialects; this package turns the single-design pipeline of
:mod:`cadinterop.schematic.migrate` into a corpus-scale engine:

* :class:`MigrationFarm` / :func:`migrate_corpus` — fan per-design work out
  over a ``concurrent.futures`` worker pool;
* :class:`ResultCache` — content-addressed, on-disk result reuse keyed on
  ``(design digest, plan digest, pipeline version)``;
* :class:`StageProfiler` / :class:`FarmReport` — per-stage wall time, items
  touched, and cache hit/miss accounting for every run.
"""

from cadinterop.farm.cache import CACHE_FORMAT, ResultCache, cache_key
from cadinterop.farm.profiler import StageProfiler, StageStats
from cadinterop.farm.report import FarmItem, FarmReport
from cadinterop.farm.scheduler import MigrationFarm, migrate_corpus
from cadinterop.schematic.migrate import (
    PIPELINE_STAGES,
    PIPELINE_VERSION,
    plan_digest,
    schematic_digest,
)

__all__ = [
    "CACHE_FORMAT",
    "FarmItem",
    "FarmReport",
    "MigrationFarm",
    "PIPELINE_STAGES",
    "PIPELINE_VERSION",
    "ResultCache",
    "StageProfiler",
    "StageStats",
    "cache_key",
    "migrate_corpus",
    "plan_digest",
    "schematic_digest",
]
