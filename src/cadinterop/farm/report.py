"""Accounting for one batch migration run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from cadinterop.farm.profiler import StageProfiler
from cadinterop.obs.lineage import LossReport
from cadinterop.schematic.migrate import MigrationResult


@dataclass
class FarmItem:
    """Outcome for one design in the corpus."""

    design: str
    digest: str
    status: str  # "migrated" | "cached" | "failed"
    clean: bool = False
    seconds: float = 0.0
    error: Optional[str] = None
    result: Optional[MigrationResult] = None

    def summary(self) -> str:
        verdict = "clean" if self.clean else (self.error or "NOT CLEAN")
        return f"{self.design:24} {self.status:9} {self.seconds * 1e3:8.1f} ms  {verdict}"


@dataclass
class FarmReport:
    """Everything a batch run measured: outcomes, cache traffic, stage times."""

    jobs: int = 1
    executor: str = "inline"
    total: int = 0
    migrated: int = 0
    cached: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    items: List[FarmItem] = field(default_factory=list)
    profile: StageProfiler = field(default_factory=StageProfiler)
    #: Snapshot of the run's metrics registry (farm counters, cache traffic,
    #: per-stage latency histograms) — plain dicts, JSON-safe.
    metrics: Dict[str, dict] = field(default_factory=dict)
    #: Trace id of the run when tracing was enabled, else None.
    trace_id: Optional[str] = None
    #: Per-stage/per-design/per-dialect provenance roll-up of the run, when
    #: lineage recording was enabled (:func:`cadinterop.obs.enable_lineage`).
    loss: Optional[LossReport] = None

    @property
    def clean(self) -> int:
        return sum(1 for item in self.items if item.clean)

    @property
    def all_clean(self) -> bool:
        return self.failed == 0 and all(item.clean for item in self.items)

    def result_for(self, design_name: str) -> Optional[MigrationResult]:
        for item in self.items:
            if item.design == design_name:
                return item.result
        return None

    def summary(self) -> str:
        return (
            f"farm: {self.total} designs in {self.wall_seconds * 1e3:.0f} ms "
            f"(jobs={self.jobs}, {self.executor}) — "
            f"{self.migrated} migrated, {self.cached} from cache, "
            f"{self.failed} failed, {self.clean}/{self.total} clean; "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses"
            + (f" ({self.cache_corrupt} corrupt)" if self.cache_corrupt else "")
        )

    def render(self, per_design: bool = False) -> str:
        lines = [self.summary()]
        if self.trace_id:
            lines.append(f"trace: {self.trace_id}")
        if per_design:
            lines.extend("  " + item.summary() for item in self.items)
        if self.profile.stages:
            lines.append("")
            lines.append(self.profile.table())
        counters = sorted(
            (name, data["value"])
            for name, data in self.metrics.items()
            if data.get("type") == "counter" and not name.startswith("stage.")
        )
        if counters:
            lines.append("")
            lines.append("counters: " + "  ".join(f"{n}={v}" for n, v in counters))
        if self.loss is not None and self.loss.total:
            lines.append("")
            lines.append(self.loss.summary())
        return "\n".join(lines)
