"""Per-stage wall-time accounting for batch migration runs.

The migration pipeline emits one :class:`~cadinterop.schematic.migrate.StageSample`
per stage per design; the profiler aggregates them (plus the farm's own
bookkeeping stages: digesting, cache lookups, result collection) into a
stage -> (wall seconds, items touched, calls) table cheap enough to leave
on for every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from cadinterop.schematic.migrate import StageSample


@dataclass
class StageStats:
    """Aggregate of every sample recorded for one stage."""

    seconds: float = 0.0
    items: int = 0
    calls: int = 0

    def add(self, seconds: float, items: int = 0) -> None:
        self.seconds += seconds
        self.items += items
        self.calls += 1


@dataclass
class StageProfiler:
    """Accumulates stage samples; mergeable across workers and runs."""

    stages: Dict[str, StageStats] = field(default_factory=dict)

    def record(self, stage: str, seconds: float, items: int = 0) -> None:
        self.stages.setdefault(stage, StageStats()).add(seconds, items)

    def observe(self, sample: StageSample) -> None:
        """Adapter matching the pipeline's ``StageObserver`` signature."""
        self.record(sample.stage, sample.seconds, sample.items)

    def record_samples(self, samples: Iterable[StageSample]) -> None:
        for sample in samples:
            self.observe(sample)

    def merge(self, other: "StageProfiler") -> None:
        for stage, stats in other.stages.items():
            into = self.stages.setdefault(stage, StageStats())
            into.seconds += stats.seconds
            into.items += stats.items
            into.calls += stats.calls

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.stages.values())

    def table(self) -> str:
        """Human-readable stage table, slowest first."""
        lines: List[str] = [
            f"{'stage':14} {'wall ms':>9} {'items':>8} {'calls':>6}  share"
        ]
        total = self.total_seconds or 1.0
        ordered = sorted(self.stages.items(), key=lambda kv: -kv[1].seconds)
        for stage, stats in ordered:
            lines.append(
                f"{stage:14} {stats.seconds * 1e3:9.2f} {stats.items:8d} "
                f"{stats.calls:6d}  {stats.seconds / total:5.1%}"
            )
        return "\n".join(lines)
