"""Per-stage wall-time accounting for batch migration runs.

The migration pipeline emits one :class:`~cadinterop.schematic.migrate.StageSample`
per stage per design; the profiler aggregates them (plus the farm's own
bookkeeping stages: digesting, cache lookups, result collection) cheaply
enough to leave on for every run.

Since the observability PR, :class:`StageProfiler` is a *view* over a
:class:`~cadinterop.obs.metrics.MetricsRegistry`: every ``record`` call
feeds a latency histogram (``stage.seconds[<stage>]``) and two counters
(``stage.items[...]``, ``stage.calls[...]``), so the same numbers that
drive :meth:`table` travel in metrics snapshots, merge across workers and
runs, and land in exported trace files.  :class:`StageStats` keeps the
pre-obs (seconds, items, calls) shape for every existing consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from cadinterop.obs.metrics import MetricsRegistry
from cadinterop.schematic.migrate import StageSample

_SECONDS = "stage.seconds[{}]"
_ITEMS = "stage.items[{}]"


@dataclass
class StageStats:
    """Aggregate of every sample recorded for one stage."""

    seconds: float = 0.0
    items: int = 0
    calls: int = 0

    def add(self, seconds: float, items: int = 0) -> None:
        self.seconds += seconds
        self.items += items
        self.calls += 1


class StageProfiler:
    """Accumulates stage samples; mergeable across workers and runs.

    ``registry`` is the backing metrics registry; by default each profiler
    owns a private one, but the farm hands in its per-run registry so the
    stage histograms ride along in :attr:`FarmReport.metrics`.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stage_names: List[str] = []

    def record(self, stage: str, seconds: float, items: int = 0) -> None:
        if stage not in self._stage_names:
            self._stage_names.append(stage)
        self.registry.histogram(_SECONDS.format(stage)).observe(seconds)
        if items:
            self.registry.counter(_ITEMS.format(stage)).inc(items)

    def observe(self, sample: StageSample) -> None:
        """Adapter matching the pipeline's ``StageObserver`` signature."""
        self.record(sample.stage, sample.seconds, sample.items)

    def record_samples(self, samples: Iterable[StageSample]) -> None:
        for sample in samples:
            self.observe(sample)

    def merge(self, other: "StageProfiler") -> None:
        for stage in other._stage_names:
            if stage not in self._stage_names:
                self._stage_names.append(stage)
        self.registry.merge(other.registry.snapshot())

    @property
    def stages(self) -> Dict[str, StageStats]:
        """The classic stage -> (seconds, items, calls) view."""
        view: Dict[str, StageStats] = {}
        for stage in self._stage_names:
            histogram = self.registry.histogram(_SECONDS.format(stage))
            view[stage] = StageStats(
                seconds=histogram.sum,
                items=self.registry.counter(_ITEMS.format(stage)).value,
                calls=histogram.count,
            )
        return view

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.stages.values())

    def table(self) -> str:
        """Human-readable stage table, slowest first."""
        lines: List[str] = [
            f"{'stage':14} {'wall ms':>9} {'items':>8} {'calls':>6}  share"
        ]
        stages = self.stages
        total = sum(stats.seconds for stats in stages.values()) or 1.0
        ordered = sorted(stages.items(), key=lambda kv: -kv[1].seconds)
        for stage, stats in ordered:
            lines.append(
                f"{stage:14} {stats.seconds * 1e3:9.2f} {stats.items:8d} "
                f"{stats.calls:6d}  {stats.seconds / total:5.1%}"
            )
        return "\n".join(lines)
