"""Content-addressed, on-disk cache of migration results.

A cache entry is keyed on ``sha256(design digest + plan digest +
PIPELINE_VERSION)``: editing a wire, renaming a net, changing any plan table
or flag, or bumping the pipeline version all produce a new key, so stale
results can never be served.  Entries persist across processes and runs —
re-running a corpus job after touching one design re-migrates only that
design.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so a killed run never
  leaves a half-written entry;
* *any* failure to load an entry — truncated pickle, garbage bytes, a
  payload whose recorded key disagrees with its filename — is a **miss**,
  never an error: the entry is deleted and the migration re-runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from cadinterop.obs.metrics import MetricsRegistry
from cadinterop.schematic.migrate import (
    MigrationResult,
    PIPELINE_VERSION,
    plan_digest,
    schematic_digest,
)

#: Bump to invalidate every on-disk entry regardless of pipeline version
#: (e.g. when the pickle payload layout changes).
CACHE_FORMAT = 1


def cache_key(design_digest: str, plan_dig: str, pipeline_version: str = PIPELINE_VERSION) -> str:
    """The content address of one (design, plan, pipeline) migration."""
    blob = f"{design_digest}\n{plan_dig}\n{pipeline_version}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """On-disk store of :class:`MigrationResult` objects by content key.

    Traffic counts live in a :class:`~cadinterop.obs.metrics.MetricsRegistry`
    (``cache.hits`` / ``cache.misses`` / ``cache.corrupt`` / ``cache.stores``
    counters; pass ``metrics`` to share a registry, otherwise the cache owns
    a private one).  The classic ``hits`` / ``misses`` / ``corrupt`` /
    ``stores`` attributes remain as read-only views; the farm copies them
    into its report.  ``root=None`` keeps the cache in memory only — useful
    for tests and one-shot runs.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        pipeline_version: str = PIPELINE_VERSION,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.pipeline_version = pipeline_version
        self._memory: dict = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._corrupt = self.metrics.counter("cache.corrupt")
        self._stores = self.metrics.counter("cache.stores")
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # -- traffic counters (views over the metrics registry) ---------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def corrupt(self) -> int:
        return self._corrupt.value

    @property
    def stores(self) -> int:
        return self._stores.value

    # -- keying ----------------------------------------------------------

    def key_for(self, schematic, plan) -> str:
        return cache_key(
            schematic_digest(schematic), plan_digest(plan), self.pipeline_version
        )

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.migr.pkl"

    # -- access ----------------------------------------------------------

    def get(self, key: str) -> Optional[MigrationResult]:
        """Return the cached result for ``key``, or None (counting a miss)."""
        if key in self._memory:
            self._hits.inc()
            return self._memory[key]
        if self.root is None:
            self._misses.inc()
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("key") != key
                or payload.get("format") != CACHE_FORMAT
            ):
                raise ValueError("cache payload does not match its key")
            result = payload["result"]
            if not isinstance(result, MigrationResult):
                raise ValueError("cache payload is not a MigrationResult")
        except FileNotFoundError:
            self._misses.inc()
            return None
        except Exception:
            # Corrupted / foreign / stale-format entry: drop it, treat as miss.
            self._corrupt.inc()
            self._misses.inc()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._hits.inc()
        self._memory[key] = result
        return result

    def put(self, key: str, result: MigrationResult) -> None:
        """Store a result under ``key`` (atomically when disk-backed)."""
        self._memory[key] = result
        self._stores.inc()
        if self.root is None:
            return
        payload = {"format": CACHE_FORMAT, "key": key, "result": result}
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        return sum(1 for _ in self.root.glob("*.migr.pkl"))
