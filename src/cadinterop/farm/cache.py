"""Content-addressed, on-disk cache of migration results.

A cache entry is keyed on ``sha256(design digest + plan digest +
PIPELINE_VERSION)``: editing a wire, renaming a net, changing any plan table
or flag, or bumping the pipeline version all produce a new key, so stale
results can never be served.  Entries persist across processes and runs —
re-running a corpus job after touching one design re-migrates only that
design.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so a killed run never
  leaves a half-written entry;
* *any* failure to load an entry — truncated pickle, garbage bytes, a
  payload whose recorded key disagrees with its filename — is a **miss**,
  never an error: the entry is deleted and the migration re-runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from cadinterop.schematic.migrate import (
    MigrationResult,
    PIPELINE_VERSION,
    plan_digest,
    schematic_digest,
)

#: Bump to invalidate every on-disk entry regardless of pipeline version
#: (e.g. when the pickle payload layout changes).
CACHE_FORMAT = 1


def cache_key(design_digest: str, plan_dig: str, pipeline_version: str = PIPELINE_VERSION) -> str:
    """The content address of one (design, plan, pipeline) migration."""
    blob = f"{design_digest}\n{plan_dig}\n{pipeline_version}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """On-disk store of :class:`MigrationResult` objects by content key.

    ``hits`` / ``misses`` / ``corrupt`` / ``stores`` count this instance's
    traffic (the farm copies them into its report).  ``root=None`` keeps the
    cache in memory only — useful for tests and one-shot runs.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        pipeline_version: str = PIPELINE_VERSION,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.pipeline_version = pipeline_version
        self._memory: dict = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # -- keying ----------------------------------------------------------

    def key_for(self, schematic, plan) -> str:
        return cache_key(
            schematic_digest(schematic), plan_digest(plan), self.pipeline_version
        )

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.migr.pkl"

    # -- access ----------------------------------------------------------

    def get(self, key: str) -> Optional[MigrationResult]:
        """Return the cached result for ``key``, or None (counting a miss)."""
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.root is None:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("key") != key
                or payload.get("format") != CACHE_FORMAT
            ):
                raise ValueError("cache payload does not match its key")
            result = payload["result"]
            if not isinstance(result, MigrationResult):
                raise ValueError("cache payload is not a MigrationResult")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted / foreign / stale-format entry: drop it, treat as miss.
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self._memory[key] = result
        return result

    def put(self, key: str, result: MigrationResult) -> None:
        """Store a result under ``key`` (atomically when disk-backed)."""
        self._memory[key] = result
        self.stores += 1
        if self.root is None:
            return
        payload = {"format": CACHE_FORMAT, "key": key, "result": result}
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        return sum(1 for _ in self.root.glob("*.migr.pkl"))
