"""Hardware accelerator/emulator interface variants.

Section 3.4 ("Hardware interfacing"): "The interface required between a
workstation and a special purpose hardware box such as a Quickturn emulator
or an IKOS hardware accelerator is different for different vendors.  These
interfaces differ in cabling, connectors, device drivers, installation, and
administration.  They also differ in their user interfaces.  These
differences makes it harder to change the hardware and/or software
computing environment during a project."

:class:`AcceleratorInterface` captures the five difference axes; a
:class:`Workstation` can only attach a box whose requirements it satisfies,
and :func:`migration_cost` enumerates everything that must change when
swapping boxes or hosts mid-project.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class AcceleratorInterface:
    """One vendor's hardware box interface requirements."""

    vendor: str
    cabling: str  # e.g. "scsi-2", "vme", "proprietary-parallel"
    connector: str
    driver: str
    install_steps: Tuple[str, ...]
    ui_command: str


EMU_BOX = AcceleratorInterface(
    vendor="emu-like",
    cabling="proprietary-parallel",
    connector="centronics-50",
    driver="emudrv",
    install_steps=("install driver", "patch kernel", "calibrate pods"),
    ui_command="emu_run -netlist {design}",
)

ACCEL_BOX = AcceleratorInterface(
    vendor="accel-like",
    cabling="scsi-2",
    connector="hd68",
    driver="accelsd",
    install_steps=("install driver", "assign scsi id"),
    ui_command="accelsim {design} -hw",
)

ALL_BOXES: Tuple[AcceleratorInterface, ...] = (EMU_BOX, ACCEL_BOX)


@dataclass
class Workstation:
    """A host with physical ports and installed drivers."""

    name: str
    ports: FrozenSet[str]
    installed_drivers: List[str] = field(default_factory=list)
    attached: Optional[AcceleratorInterface] = None

    def can_attach(self, box: AcceleratorInterface) -> Tuple[bool, List[str]]:
        problems: List[str] = []
        if box.cabling not in self.ports:
            problems.append(f"no {box.cabling} port on {self.name}")
        if box.driver not in self.installed_drivers:
            problems.append(f"driver {box.driver!r} not installed")
        return (not problems, problems)

    def install_driver(self, driver: str) -> None:
        if driver not in self.installed_drivers:
            self.installed_drivers.append(driver)

    def attach(self, box: AcceleratorInterface) -> None:
        ok, problems = self.can_attach(box)
        if not ok:
            raise RuntimeError(f"cannot attach {box.vendor}: {'; '.join(problems)}")
        self.attached = box

    def run_design(self, design: str) -> str:
        if self.attached is None:
            raise RuntimeError("no accelerator attached")
        return self.attached.ui_command.format(design=design)


def migration_cost(
    old_box: AcceleratorInterface,
    new_box: AcceleratorInterface,
) -> List[str]:
    """Everything that changes when swapping hardware boxes mid-project."""
    changes: List[str] = []
    if old_box.cabling != new_box.cabling:
        changes.append(f"recable: {old_box.cabling} -> {new_box.cabling}")
    if old_box.connector != new_box.connector:
        changes.append(f"new connector: {new_box.connector}")
    if old_box.driver != new_box.driver:
        changes.append(f"install driver {new_box.driver}, remove {old_box.driver}")
    for step in new_box.install_steps:
        changes.append(f"install step: {step}")
    if old_box.ui_command != new_box.ui_command:
        changes.append("retrain users: UI command changed")
    return changes
