"""Hardware/software platform transportability (paper Section 3.4)."""

from cadinterop.platform.accel import (
    ACCEL_BOX,
    ALL_BOXES,
    AcceleratorInterface,
    EMU_BOX,
    Workstation,
    migration_cost,
)
from cadinterop.platform.hosts import (
    ALL_HOSTS,
    HostProfile,
    HPUX_LIKE,
    INTENTS,
    PC_LIKE,
    SOLARIS_LIKE,
    SUNOS4_LIKE,
    command_matrix,
    divergent_intents,
    portable_intents,
)
from cadinterop.platform.scripts import (
    ScriptFinding,
    check_script,
    is_portable,
    translate_script,
)
from cadinterop.platform.versions import ReleaseEvent, ReleaseTracker

__all__ = [
    "ACCEL_BOX",
    "ALL_BOXES",
    "ALL_HOSTS",
    "AcceleratorInterface",
    "EMU_BOX",
    "HPUX_LIKE",
    "HostProfile",
    "INTENTS",
    "PC_LIKE",
    "ReleaseEvent",
    "ReleaseTracker",
    "SOLARIS_LIKE",
    "SUNOS4_LIKE",
    "ScriptFinding",
    "Workstation",
    "check_script",
    "command_matrix",
    "divergent_intents",
    "is_portable",
    "migration_cost",
    "portable_intents",
    "translate_script",
]
