"""Tool version skew tracking across platforms.

Section 3.4 ("Tool version skew"): "Even if a CAD vendor has ported a tool
to all of the platforms in use on a design project, the vendor may not
support all platforms equally.  Bug fixes and new tool releases sometimes
take weeks to propagate across all of the platforms a vendor supports.
Before purchasing a tool, the user should verify the vendor's track record
in supporting the platforms the user will be using."

:class:`ReleaseTracker` records release availability events per platform
and computes exactly the numbers a purchasing decision needs: current skew
(who is behind), per-platform propagation lag, and the vendor's track
record summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ReleaseEvent:
    """Version ``version`` became available on ``platform`` at day ``day``."""

    tool: str
    version: str
    platform: str
    day: int


class ReleaseTracker:
    """Availability history for one vendor's tools across platforms."""

    def __init__(self, platforms: List[str]) -> None:
        if not platforms:
            raise ValueError("need at least one platform")
        self.platforms = list(platforms)
        self._events: List[ReleaseEvent] = []

    def record(self, tool: str, version: str, platform: str, day: int) -> ReleaseEvent:
        if platform not in self.platforms:
            raise ValueError(f"unknown platform {platform!r}")
        event = ReleaseEvent(tool, version, platform, day)
        self._events.append(event)
        return event

    def available_version(self, tool: str, platform: str, day: int) -> Optional[str]:
        """Newest version of ``tool`` available on ``platform`` at ``day``."""
        candidates = [
            e for e in self._events
            if e.tool == tool and e.platform == platform and e.day <= day
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda e: e.day).version

    def skew(self, tool: str, day: int) -> Dict[str, Optional[str]]:
        """platform -> version visible on that platform at ``day``."""
        return {
            platform: self.available_version(tool, platform, day)
            for platform in self.platforms
        }

    def is_skewed(self, tool: str, day: int) -> bool:
        versions = set(self.skew(tool, day).values())
        return len(versions) > 1

    def propagation_lag(self, tool: str, version: str) -> Dict[str, Optional[int]]:
        """platform -> days after first release until this version arrived.

        None means the version never reached that platform.
        """
        releases = [
            e for e in self._events if e.tool == tool and e.version == version
        ]
        if not releases:
            raise ValueError(f"no release events for {tool} {version}")
        first_day = min(e.day for e in releases)
        lag: Dict[str, Optional[int]] = {}
        for platform in self.platforms:
            event = next((e for e in releases if e.platform == platform), None)
            lag[platform] = None if event is None else event.day - first_day
        return lag

    def track_record(self, tool: str) -> Dict[str, float]:
        """Mean propagation lag per platform over all versions of ``tool``.

        The number the paper says to check before purchasing.
        """
        versions = {e.version for e in self._events if e.tool == tool}
        sums: Dict[str, List[int]] = {platform: [] for platform in self.platforms}
        for version in versions:
            for platform, lag in self.propagation_lag(tool, version).items():
                if lag is not None:
                    sums[platform].append(lag)
        return {
            platform: (sum(lags) / len(lags) if lags else float("inf"))
            for platform, lags in sums.items()
        }
