"""Script portability checking across host platforms.

Section 3.4 ("Office / home computing incompatibilities"): "Portability of
scripts from one software platform to another platform is limited...  if an
engineer is using a UNIX workstation at his office and a personal computer
at home, he require two sets of scripts...  Scripts may even not be
portable between platforms running different flavors of Unix."

:func:`check_script` scans a shell script against a target
:class:`~cadinterop.platform.hosts.HostProfile`, flagging commands the
target lacks or spells differently; :func:`translate_script` produces the
"second set of scripts" mechanically where a mapping exists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.platform.hosts import HostProfile, INTENTS


@dataclass
class ScriptFinding:
    """One portability problem in a script."""

    line_number: int
    line: str
    intent: Optional[str]
    problem: str
    replacement: Optional[str] = None


def _intent_of_command(command: str, source: HostProfile) -> Optional[str]:
    for intent in INTENTS:
        if source.command_for(intent) == command:
            return intent
    return None


def check_script(
    script: str,
    source: HostProfile,
    target: HostProfile,
    log: Optional[IssueLog] = None,
) -> List[ScriptFinding]:
    """Find lines that will not run (or run differently) on ``target``.

    A line is examined when it matches one of the *source* platform's known
    administrative commands; the finding reports whether the target has no
    equivalent or a differently spelled one.
    """
    findings: List[ScriptFinding] = []
    for line_number, raw in enumerate(script.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        intent = _intent_of_command(line, source)
        if intent is None:
            continue
        target_command = target.command_for(intent)
        if target_command is None:
            findings.append(
                ScriptFinding(
                    line_number, line, intent,
                    f"{target.name} has no command for {intent}",
                )
            )
            if log is not None:
                log.add(
                    Severity.ERROR, Category.PLATFORM, intent,
                    f"line {line_number}: no {target.name} equivalent for {line!r}",
                    remedy="restructure the flow to avoid this step on that platform",
                )
        elif target_command != line:
            findings.append(
                ScriptFinding(
                    line_number, line, intent,
                    f"spelled differently on {target.name}",
                    replacement=target_command,
                )
            )
            if log is not None:
                log.add(
                    Severity.WARNING, Category.PLATFORM, intent,
                    f"line {line_number}: {line!r} must become {target_command!r}",
                    remedy="maintain per-platform script variants or translate",
                )
    return findings


def translate_script(script: str, source: HostProfile, target: HostProfile) -> Tuple[str, List[str]]:
    """Rewrite translatable lines; returns (new script, untranslatable lines)."""
    output_lines: List[str] = []
    untranslatable: List[str] = []
    for raw in script.splitlines():
        line = raw.strip()
        intent = _intent_of_command(line, source) if line and not line.startswith("#") else None
        if intent is None:
            output_lines.append(raw)
            continue
        target_command = target.command_for(intent)
        if target_command is None:
            untranslatable.append(line)
            output_lines.append(f"# UNPORTABLE ({target.name}): {raw}")
        else:
            output_lines.append(raw.replace(line, target_command))
    return "\n".join(output_lines) + "\n", untranslatable


def is_portable(script: str, source: HostProfile, targets: List[HostProfile]) -> bool:
    """True if the script runs unchanged on every target platform."""
    return all(not check_script(script, source, target) for target in targets)
