"""Host platform profiles: the nonstandard-commands problem.

Section 3.4 ("Nonstandard operating system commands"): "Certain system
commands for identification of hostname, hostid, and Ethernet id are
different across different versions of UNIX.  Similarly, the commands for
creation and expansion of swap space and for accessing remote file systems
vary across platforms.  This lack of standardization makes system
administration harder to perform."

Each :class:`HostProfile` maps *administrative intents* (get-hostname,
get-hostid, add-swap, mount-remote, ...) to that flavor's concrete command
line.  :func:`command_matrix` tabulates the divergence, and
:func:`portable_intents` shows how little survives everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The administrative intents a CAD system administrator needs everywhere.
INTENTS: Tuple[str, ...] = (
    "get-hostname",
    "get-hostid",
    "get-ethernet-id",
    "add-swap",
    "mount-remote",
    "list-processes",
)


@dataclass(frozen=True)
class HostProfile:
    """One UNIX flavor's command vocabulary."""

    name: str
    commands: Dict[str, str] = field(default_factory=dict)
    shell: str = "/bin/sh"
    path_separator: str = ":"

    def command_for(self, intent: str) -> Optional[str]:
        return self.commands.get(intent)

    def supports(self, intent: str) -> bool:
        return intent in self.commands


SUNOS4_LIKE = HostProfile(
    "sunos4-like",
    {
        "get-hostname": "hostname",
        "get-hostid": "hostid",
        "get-ethernet-id": "ifconfig le0",
        "add-swap": "mkfile 64m /swapfile && swapon /swapfile",
        "mount-remote": "mount -t nfs server:/vol /mnt",
        "list-processes": "ps aux",
    },
)

SOLARIS_LIKE = HostProfile(
    "solaris-like",
    {
        "get-hostname": "uname -n",
        "get-hostid": "hostid",
        "get-ethernet-id": "ifconfig hme0",
        "add-swap": "mkfile 64m /swapfile && swap -a /swapfile",
        "mount-remote": "mount -F nfs server:/vol /mnt",
        "list-processes": "ps -ef",
    },
)

HPUX_LIKE = HostProfile(
    "hpux-like",
    {
        "get-hostname": "hostname",
        "get-hostid": "uname -i",
        "get-ethernet-id": "lanscan",
        "add-swap": "swapon /dev/vg00/lvol8",
        "mount-remote": "mount -F nfs server:/vol /mnt",
        "list-processes": "ps -ef",
    },
)

PC_LIKE = HostProfile(
    "pc-like",
    {
        "get-hostname": "hostname",
        "list-processes": "tasklist",
    },
    shell="command.com",
    path_separator=";",
)

ALL_HOSTS: Tuple[HostProfile, ...] = (SUNOS4_LIKE, SOLARIS_LIKE, HPUX_LIKE, PC_LIKE)


def command_matrix(hosts: Tuple[HostProfile, ...] = ALL_HOSTS) -> Dict[str, Dict[str, Optional[str]]]:
    """intent -> host -> command (None if the host has no equivalent)."""
    return {
        intent: {host.name: host.command_for(intent) for host in hosts}
        for intent in INTENTS
    }


def portable_intents(hosts: Tuple[HostProfile, ...] = ALL_HOSTS) -> List[str]:
    """Intents whose command line is IDENTICAL on every host."""
    portable: List[str] = []
    for intent in INTENTS:
        commands = {host.command_for(intent) for host in hosts}
        if len(commands) == 1 and None not in commands:
            portable.append(intent)
    return portable


def divergent_intents(hosts: Tuple[HostProfile, ...] = ALL_HOSTS) -> List[str]:
    """Intents every host supports, but each with a different spelling."""
    divergent: List[str] = []
    for intent in INTENTS:
        commands = [host.command_for(intent) for host in hosts]
        if None not in commands and len(set(commands)) > 1:
            divergent.append(intent)
    return divergent
