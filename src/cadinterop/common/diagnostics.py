"""Issue reporting and the interoperability checklist.

The paper closes its abstract with a promise: "the reader can develop a
checklist of potential interoperability issues in his CAD environment, and
address these issues before they cause a design schedule slip."  Every
package in this library reports problems through the same structured
:class:`Issue` type, collected in an :class:`IssueLog`; the
:func:`render_checklist` function turns a log into exactly that checklist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Ordered severity scale; comparisons follow schedule impact."""

    INFO = 10
    NOTE = 20
    WARNING = 30
    ERROR = 40
    FATAL = 50

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class Category(enum.Enum):
    """The interoperability problem classes the paper enumerates.

    The first five are the "classic interoperability problems" named in
    Section 6 (performance, name mapping, structure mapping, semantic
    interpretation errors, and tool control); the rest cover the concrete
    mechanisms from Sections 2-5.
    """

    PERFORMANCE = "performance"
    NAME_MAPPING = "name-mapping"
    STRUCTURE_MAPPING = "structure-mapping"
    SEMANTICS = "semantic-interpretation"
    TOOL_CONTROL = "tool-control"
    SCALING = "scaling"
    PROPERTY_MAPPING = "property-mapping"
    BUS_SYNTAX = "bus-syntax"
    CONNECTIVITY = "connectivity"
    COSMETIC = "cosmetic"
    LANGUAGE_STANDARD = "language-standard"
    BACKWARD_COMPAT = "backward-compatibility"
    ENVIRONMENT = "environment"
    PLATFORM = "platform"
    VERSION_SKEW = "version-skew"
    FEATURE_GAP = "feature-gap"
    DATA_LOSS = "data-loss"
    WORKFLOW = "workflow"
    VERIFICATION = "verification"


@dataclass(frozen=True)
class Issue:
    """One interoperability finding.

    ``subject`` identifies the design object or tool pair involved;
    ``remedy`` records the workaround, mirroring the paper's issue->answer
    structure.
    """

    severity: Severity
    category: Category
    subject: str
    message: str
    tool: Optional[str] = None
    remedy: Optional[str] = None

    def format(self) -> str:
        tool = f" [{self.tool}]" if self.tool else ""
        remedy = f" => {self.remedy}" if self.remedy else ""
        return f"{self.severity.name:7} {self.category.value:24} {self.subject}{tool}: {self.message}{remedy}"


class IssueLog:
    """An append-only collection of issues with query helpers."""

    def __init__(self) -> None:
        self._issues: List[Issue] = []

    def add(
        self,
        severity: Severity,
        category: Category,
        subject: str,
        message: str,
        tool: Optional[str] = None,
        remedy: Optional[str] = None,
    ) -> Issue:
        issue = Issue(severity, category, subject, message, tool=tool, remedy=remedy)
        self._issues.append(issue)
        return issue

    def extend(self, issues: Iterable[Issue]) -> None:
        self._issues.extend(issues)

    def merge(self, other: "IssueLog") -> None:
        self._issues.extend(other._issues)

    def __iter__(self) -> Iterator[Issue]:
        return iter(self._issues)

    def __len__(self) -> int:
        return len(self._issues)

    def __bool__(self) -> bool:
        return bool(self._issues)

    @property
    def issues(self) -> Sequence[Issue]:
        return tuple(self._issues)

    def by_category(self, category: Category) -> List[Issue]:
        return [i for i in self._issues if i.category is category]

    def by_severity(self, minimum: Severity) -> List[Issue]:
        return [i for i in self._issues if i.severity >= minimum]

    def filter(self, predicate: Callable[[Issue], bool]) -> List[Issue]:
        return [i for i in self._issues if predicate(i)]

    @property
    def worst(self) -> Optional[Severity]:
        if not self._issues:
            return None
        return max(issue.severity for issue in self._issues)

    def has_errors(self) -> bool:
        return any(issue.severity >= Severity.ERROR for issue in self._issues)

    def counts(self) -> Dict[Severity, int]:
        counts: Dict[Severity, int] = {}
        for issue in self._issues:
            counts[issue.severity] = counts.get(issue.severity, 0) + 1
        return counts

    def summary(self) -> str:
        counts = self.counts()
        if not counts:
            return "no issues"
        parts = [f"{counts[sev]} {sev.name.lower()}" for sev in sorted(counts, reverse=True)]
        return ", ".join(parts)


def render_checklist(log: IssueLog, title: str = "CAD interoperability checklist") -> str:
    """Render an issue log as the checklist the paper promises its reader.

    Issues are grouped by category and sorted by descending severity so the
    most schedule-threatening items lead.  Each line is a checkbox; remedies
    become indented action items.
    """
    lines = [title, "=" * len(title), ""]
    categories = sorted({i.category for i in log}, key=lambda c: c.value)
    if not categories:
        lines.append("(no interoperability issues found)")
        return "\n".join(lines)
    for category in categories:
        items = sorted(log.by_category(category), key=lambda i: i.severity, reverse=True)
        lines.append(f"## {category.value} ({len(items)})")
        for issue in items:
            tool = f" [{issue.tool}]" if issue.tool else ""
            lines.append(f"  [ ] ({issue.severity.name}) {issue.subject}{tool}: {issue.message}")
            if issue.remedy:
                lines.append(f"        action: {issue.remedy}")
        lines.append("")
    lines.append(f"total: {len(log)} issue(s); {log.summary()}")
    return "\n".join(lines)
