"""Typed property bags with provenance.

Section 2's property mapping steps (standard and non-standard) operate on
attribute/value annotations attached to schematic objects; Section 4's pin
definitions carry "a set of connection properties".  This module provides
the shared representation: an ordered, case-preserving property bag whose
entries remember where they came from, so a migrated design can be audited
("which tool wrote this value?").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

PropertyValue = Union[str, int, float, bool]


@dataclass(frozen=True)
class Property:
    """A named annotation with optional visibility and provenance."""

    name: str
    value: PropertyValue
    visible: bool = True
    origin: str = "native"

    def renamed(self, new_name: str, origin: Optional[str] = None) -> "Property":
        return replace(self, name=new_name, origin=origin or self.origin)

    def with_value(self, value: PropertyValue, origin: Optional[str] = None) -> "Property":
        return replace(self, value=value, origin=origin or self.origin)


class PropertyBag:
    """An insertion-ordered mapping of property name -> :class:`Property`.

    Names are unique; setting an existing name replaces it in place so the
    original ordering (which some schematic tools display verbatim) is kept.
    """

    def __init__(self, properties: Optional[Dict[str, PropertyValue]] = None, origin: str = "native") -> None:
        self._items: Dict[str, Property] = {}
        if properties:
            for name, value in properties.items():
                self.set(name, value, origin=origin)

    def set(
        self,
        name: str,
        value: PropertyValue,
        visible: bool = True,
        origin: str = "native",
    ) -> Property:
        prop = Property(name, value, visible=visible, origin=origin)
        self._items[name] = prop
        return prop

    def add(self, prop: Property) -> None:
        self._items[prop.name] = prop

    def get(self, name: str, default: Optional[PropertyValue] = None) -> Optional[PropertyValue]:
        prop = self._items.get(name)
        return prop.value if prop is not None else default

    def get_property(self, name: str) -> Optional[Property]:
        return self._items.get(name)

    def remove(self, name: str) -> Optional[Property]:
        return self._items.pop(name, None)

    def rename(self, old: str, new: str, origin: Optional[str] = None) -> bool:
        """Rename a property preserving its position; returns False if absent."""
        if old not in self._items:
            return False
        rebuilt: Dict[str, Property] = {}
        for name, prop in self._items.items():
            if name == old:
                renamed = prop.renamed(new, origin=origin)
                rebuilt[new] = renamed
            else:
                rebuilt[name] = prop
        self._items = rebuilt
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Property]:
        return iter(self._items.values())

    def names(self) -> List[str]:
        return list(self._items.keys())

    def items(self) -> Iterator[Tuple[str, PropertyValue]]:
        for name, prop in self._items.items():
            yield name, prop.value

    def copy(self) -> "PropertyBag":
        bag = PropertyBag()
        for prop in self:
            bag.add(prop)
        return bag

    def as_dict(self) -> Dict[str, PropertyValue]:
        return {name: prop.value for name, prop in self._items.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyBag):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}={p.value!r}" for n, p in self._items.items())
        return f"PropertyBag({inner})"
