"""Shared substrate: geometry, diagnostics, name mapping, properties."""

from cadinterop.common.diagnostics import (
    Category,
    Issue,
    IssueLog,
    Severity,
    render_checklist,
)
from cadinterop.common.geometry import (
    Grid,
    IDENTITY,
    OffGridError,
    ORIGIN,
    Orientation,
    Point,
    Rect,
    Segment,
    Transform,
    path_segments,
)
from cadinterop.common.namemap import (
    NameCollisionError,
    NameMap,
    Rename,
    hierarchical_join,
    truncating_transform,
)
from cadinterop.common.properties import Property, PropertyBag, PropertyValue

__all__ = [
    "Category",
    "Grid",
    "IDENTITY",
    "Issue",
    "IssueLog",
    "NameCollisionError",
    "NameMap",
    "OffGridError",
    "ORIGIN",
    "Orientation",
    "Point",
    "Property",
    "PropertyBag",
    "PropertyValue",
    "Rect",
    "Rename",
    "Segment",
    "Severity",
    "Transform",
    "hierarchical_join",
    "path_segments",
    "render_checklist",
    "truncating_transform",
]
