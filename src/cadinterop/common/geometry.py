"""Planar geometry primitives shared by the schematic and physical packages.

The 1996 paper's schematic migration section turns almost entirely on
geometric bookkeeping: symbols drawn on a 1/10-inch grid must land on a
1/16-inch grid, replaced components carry origin offsets and rotation codes,
and off-page connectors must be dropped at wire ends or sheet edges.  This
module provides the exact, integer-friendly primitives those steps need:
points, rectangles, the eight Manhattan orientations, affine transforms
composed from them, and grid systems with rational rescaling.

All coordinates are kept in integer *database units* (DBU).  A
:class:`Grid` gives those units physical meaning (units per inch) so that
rescaling between vendor grids is exact whenever the grids are commensurate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An integer lattice point in database units."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: Fraction) -> "Point":
        """Scale about the origin by an exact rational factor.

        Raises :class:`OffGridError` if the result is not an integer point;
        exactness is the whole point of migrating between commensurate grids.
        """
        nx = Fraction(self.x) * factor
        ny = Fraction(self.y) * factor
        if nx.denominator != 1 or ny.denominator != 1:
            raise OffGridError(f"scaling {self} by {factor} leaves the integer lattice")
        return Point(int(nx), int(ny))

    def manhattan_to(self, other: "Point") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y


ORIGIN = Point(0, 0)


class OffGridError(ValueError):
    """A geometric operation produced a coordinate not on the target grid."""


class Orientation(Enum):
    """The eight Manhattan orientations used by schematic and layout tools.

    ``R0``–``R270`` are counter-clockwise rotations; ``MX``/``MY`` mirror
    about the X and Y axes respectively, with rotated variants.  These are
    the "rotation codes" the paper's symbol replacement maps carry.
    """

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"
    MX90 = "MX90"
    MY = "MY"
    MY90 = "MY90"

    @property
    def is_mirrored(self) -> bool:
        return self in (Orientation.MX, Orientation.MX90, Orientation.MY, Orientation.MY90)

    def matrix(self) -> Tuple[int, int, int, int]:
        """Return the 2x2 integer matrix (a, b, c, d) mapping (x,y)->(ax+by, cx+dy)."""
        return _ORIENT_MATRICES[self]

    def compose(self, other: "Orientation") -> "Orientation":
        """Return the orientation equivalent to applying ``self`` then ``other``."""
        a1, b1, c1, d1 = self.matrix()
        a2, b2, c2, d2 = other.matrix()
        composed = (
            a2 * a1 + b2 * c1,
            a2 * b1 + b2 * d1,
            c2 * a1 + d2 * c1,
            c2 * b1 + d2 * d1,
        )
        return _MATRIX_TO_ORIENT[composed]

    def inverse(self) -> "Orientation":
        for cand in Orientation:
            if self.compose(cand) is Orientation.R0:
                return cand
        raise AssertionError("orientation group is closed; unreachable")

    def apply(self, point: Point) -> Point:
        a, b, c, d = self.matrix()
        return Point(a * point.x + b * point.y, c * point.x + d * point.y)


_ORIENT_MATRICES = {
    Orientation.R0: (1, 0, 0, 1),
    Orientation.R90: (0, -1, 1, 0),
    Orientation.R180: (-1, 0, 0, -1),
    Orientation.R270: (0, 1, -1, 0),
    Orientation.MX: (1, 0, 0, -1),
    Orientation.MX90: (0, -1, -1, 0),
    Orientation.MY: (-1, 0, 0, 1),
    Orientation.MY90: (0, 1, 1, 0),
}
_MATRIX_TO_ORIENT = {m: o for o, m in _ORIENT_MATRICES.items()}


@dataclass(frozen=True)
class Transform:
    """A placement transform: rotate/mirror by ``orientation`` then translate."""

    offset: Point = ORIGIN
    orientation: Orientation = Orientation.R0

    def apply(self, point: Point) -> Point:
        rotated = self.orientation.apply(point)
        return rotated.translated(self.offset.x, self.offset.y)

    def apply_rect(self, rect: "Rect") -> "Rect":
        p1 = self.apply(Point(rect.x1, rect.y1))
        p2 = self.apply(Point(rect.x2, rect.y2))
        return Rect.spanning(p1, p2)

    def compose(self, outer: "Transform") -> "Transform":
        """Return the transform equivalent to applying ``self`` then ``outer``."""
        new_offset = outer.apply(self.offset)
        return Transform(new_offset, self.orientation.compose(outer.orientation))

    def inverse(self) -> "Transform":
        inv_orient = self.orientation.inverse()
        inv_offset = inv_orient.apply(Point(-self.offset.x, -self.offset.y))
        return Transform(inv_offset, inv_orient)


IDENTITY = Transform()


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle with ``x1 <= x2`` and ``y1 <= y2``."""

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(f"degenerate rect corners: {self}")

    @staticmethod
    def spanning(p1: Point, p2: Point) -> "Rect":
        return Rect(min(p1.x, p2.x), min(p1.y, p2.y), max(p1.x, p2.x), max(p1.y, p2.y))

    @staticmethod
    def bounding(points: Iterable[Point]) -> "Rect":
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2)

    def contains(self, point: Point) -> bool:
        return self.x1 <= point.x <= self.x2 and self.y1 <= point.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x1 > self.x2
            or other.x2 < self.x1
            or other.y1 > self.y2
            or other.y2 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect":
        if not self.intersects(other):
            raise ValueError(f"{self} and {other} do not intersect")
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def inflated(self, margin: int) -> "Rect":
        return Rect(self.x1 - margin, self.y1 - margin, self.x2 + margin, self.y2 + margin)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled(self, factor: Fraction) -> "Rect":
        p1 = Point(self.x1, self.y1).scaled(factor)
        p2 = Point(self.x2, self.y2).scaled(factor)
        return Rect.spanning(p1, p2)

    def corners(self) -> List[Point]:
        return [
            Point(self.x1, self.y1),
            Point(self.x2, self.y1),
            Point(self.x2, self.y2),
            Point(self.x1, self.y2),
        ]


@dataclass(frozen=True)
class Segment:
    """A Manhattan wire segment between two lattice points."""

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("zero-length segment")
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise ValueError(f"segment {self.a}->{self.b} is not Manhattan")

    @property
    def is_horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        return self.a.x == self.b.x

    @property
    def length(self) -> int:
        return self.a.manhattan_to(self.b)

    def endpoints(self) -> Tuple[Point, Point]:
        return (self.a, self.b)

    def canonical(self) -> "Segment":
        """Return the segment with endpoints sorted, so equality is direction-free."""
        lo, hi = sorted((self.a, self.b))
        return Segment(lo, hi)

    def contains_point(self, p: Point) -> bool:
        if self.is_horizontal:
            lo, hi = sorted((self.a.x, self.b.x))
            return p.y == self.a.y and lo <= p.x <= hi
        lo, hi = sorted((self.a.y, self.b.y))
        return p.x == self.a.x and lo <= p.y <= hi

    def touches(self, other: "Segment") -> bool:
        return (
            self.contains_point(other.a)
            or self.contains_point(other.b)
            or other.contains_point(self.a)
            or other.contains_point(self.b)
        )

    def transformed(self, transform: Transform) -> "Segment":
        return Segment(transform.apply(self.a), transform.apply(self.b))

    def scaled(self, factor: Fraction) -> "Segment":
        return Segment(self.a.scaled(factor), self.b.scaled(factor))


def path_segments(points: Sequence[Point]) -> List[Segment]:
    """Convert a polyline's vertices into Manhattan segments, dropping repeats."""
    segments: List[Segment] = []
    previous: Point | None = None
    for point in points:
        if previous is not None and point != previous:
            segments.append(Segment(previous, point))
        previous = point
    return segments


@dataclass(frozen=True)
class Grid:
    """A drawing grid defined by database units per inch and a pitch in units.

    The Viewdraw-like dialect uses a 1/10-inch grid and the Composer-like
    dialect a 1/16-inch grid; with ``units_per_inch = 160`` both pitches (16
    and 10 units) are exact integers, so migration math is exact.
    """

    name: str
    units_per_inch: int
    pitch_units: int

    def __post_init__(self) -> None:
        if self.units_per_inch <= 0 or self.pitch_units <= 0:
            raise ValueError("grid parameters must be positive")

    @property
    def pitch_inches(self) -> Fraction:
        return Fraction(self.pitch_units, self.units_per_inch)

    def is_on_grid(self, point: Point) -> bool:
        return point.x % self.pitch_units == 0 and point.y % self.pitch_units == 0

    def snap(self, point: Point) -> Point:
        """Snap a point to the nearest grid intersection (ties round up)."""

        def snap1(v: int) -> int:
            pitch = self.pitch_units
            down = (v // pitch) * pitch
            up = down + pitch
            return down if v - down < up - v else up

        return Point(snap1(point.x), snap1(point.y))

    def scale_factor_to(self, other: "Grid") -> Fraction:
        """Exact rational factor converting pitches of ``self`` to ``other``.

        This is the paper's scaling step: symbols on a 1/10-inch pitch are
        "scaled down in size to adjust to the Composer grid spacing", i.e. a
        point that sat on grid intersection *k* must land on intersection *k*
        of the target grid.
        """
        return Fraction(other.pitch_units, self.pitch_units)

    def index_of(self, point: Point) -> Tuple[int, int]:
        if not self.is_on_grid(point):
            raise OffGridError(f"{point} is not on grid {self.name}")
        return (point.x // self.pitch_units, point.y // self.pitch_units)

    def point_at(self, ix: int, iy: int) -> Point:
        return Point(ix * self.pitch_units, iy * self.pitch_units)
