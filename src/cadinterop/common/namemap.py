"""Collision-aware bidirectional name mapping.

Name mapping is one of the five "classic interoperability problems" the
paper names in Section 6, and the mechanism behind several Section 3
failures: eight-character truncation aliasing, keyword-clash renaming when
translating between Verilog and VHDL, and hierarchical flattening where "if
a problem is found in the flat representation, the user must map back to the
name used in hierarchical representation."

:class:`NameMap` is the shared answer: a forward map that guarantees
uniqueness of targets (uniquifying on demand), remembers every decision, and
can always be inverted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class NameCollisionError(ValueError):
    """Two distinct source names were forced onto the same target name."""


@dataclass(frozen=True)
class Rename:
    """A single recorded mapping decision."""

    source: str
    target: str
    reason: str


class NameMap:
    """A bidirectional source->target name map with collision handling.

    Parameters
    ----------
    transform:
        Function producing the *preferred* target for a source name.
    uniquify:
        If true, collisions are resolved by suffixing ``_2``, ``_3``, ...;
        if false, a collision raises :class:`NameCollisionError`.  The
        paper's PC-simulator truncation bug is exactly a ``uniquify=False``
        transform (tools silently aliased instead of erroring; see
        :func:`truncating_transform` and ``hdl.names`` for the demonstration).
    """

    def __init__(
        self,
        transform: Optional[Callable[[str], str]] = None,
        uniquify: bool = True,
    ) -> None:
        self._transform = transform or (lambda name: name)
        self._uniquify = uniquify
        self._forward: Dict[str, str] = {}
        self._backward: Dict[str, str] = {}
        self._renames: List[Rename] = []

    def map(self, source: str, reason: str = "") -> str:
        """Map ``source``, reusing a previous decision if one exists."""
        if source in self._forward:
            return self._forward[source]
        preferred = self._transform(source)
        target = preferred
        if target in self._backward:
            if not self._uniquify:
                raise NameCollisionError(
                    f"{source!r} and {self._backward[target]!r} both map to {target!r}"
                )
            counter = 2
            while f"{preferred}_{counter}" in self._backward:
                counter += 1
            target = f"{preferred}_{counter}"
            reason = reason or f"uniquified from {preferred!r}"
        self._forward[source] = target
        self._backward[target] = source
        if target != source or reason:
            self._renames.append(Rename(source, target, reason or "transformed"))
        return target

    def force(self, source: str, target: str, reason: str = "forced") -> None:
        """Record an explicit mapping, failing on any inconsistency."""
        if source in self._forward and self._forward[source] != target:
            raise NameCollisionError(
                f"{source!r} already maps to {self._forward[source]!r}, not {target!r}"
            )
        if target in self._backward and self._backward[target] != source:
            raise NameCollisionError(
                f"{target!r} already taken by {self._backward[target]!r}"
            )
        self._forward[source] = target
        self._backward[target] = source
        if source != target:
            self._renames.append(Rename(source, target, reason))

    def unmap(self, target: str) -> str:
        """Invert: recover the original name, the paper's flat->hierarchical need."""
        try:
            return self._backward[target]
        except KeyError:
            raise KeyError(f"no source recorded for target {target!r}") from None

    def source_of(self, target: str) -> Optional[str]:
        return self._backward.get(target)

    def target_of(self, source: str) -> Optional[str]:
        return self._forward.get(source)

    def __contains__(self, source: str) -> bool:
        return source in self._forward

    def __len__(self) -> int:
        return len(self._forward)

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._forward.items())

    @property
    def renames(self) -> List[Rename]:
        """Every mapping that changed a name, with its reason."""
        return list(self._renames)

    def aliased_groups(self) -> Dict[str, List[str]]:
        """Source names that would collide under the raw transform.

        This inspects the *preferred* (pre-uniquification) targets; a group
        of size > 1 is precisely the aliasing hazard of the paper's
        eight-character simulators (``cntr_reset1``/``cntr_reset2`` ->
        ``cntr_res``).
        """
        groups: Dict[str, List[str]] = {}
        for source in self._forward:
            groups.setdefault(self._transform(source), []).append(source)
        return {pref: srcs for pref, srcs in groups.items() if len(srcs) > 1}


def truncating_transform(significant: int) -> Callable[[str], str]:
    """Transform modelling tools that only honor the first N characters."""
    if significant <= 0:
        raise ValueError("significant character count must be positive")

    def transform(name: str) -> str:
        return name[:significant]

    return transform


def hierarchical_join(path: Tuple[str, ...], separator: str = "_") -> str:
    """Join a hierarchical instance path the way flattening tools do."""
    return separator.join(path)
