"""Command-line interface: the paper's checklist and analyzers, from a shell.

Subcommands
-----------
``cadinterop checklist [--scenario NAME]``
    Run the Section 6 environment analysis over the built-in methodology
    and tool catalog; print the interoperability checklist.
``cadinterop methodology``
    Print the 200-task methodology's statistics and scenario pruning table.
``cadinterop races FILE.v [--observe SIG ...] [--kernel {interp,compiled}]``
    Parse a Verilog-subset file and run ensemble race detection.  The
    default ``compiled`` kernel lowers the model once and fans policies
    out over it; ``--kernel interp`` forces the reference interpreter.
``cadinterop subsets FILE.v``
    Report which synthesis vendors accept the design and why not.
``cadinterop naming NAME [NAME ...]``
    Check a naming convention over a list of identifiers.
``cadinterop migrate-batch [PATH ...] [--generate N] [--jobs N]
[--cache-dir DIR] [--profile] [--out DIR] [--trace-out FILE]
[--metrics-out FILE] [--lineage-out FILE]``
    Batch-migrate a corpus of Viewdraw-like schematics (``.vl`` files,
    directories of them, and/or a generated synthetic corpus) onto the
    Composer-like libraries through the migration farm: parallel workers,
    content-hash result caching, per-stage profiling.  ``--lineage-out``
    records per-object provenance, prints the loss report, and writes a
    format-2 JSONL trace carrying the lineage records.
``cadinterop trace [--trace-out FILE] [--metrics-out FILE] CMD [ARG ...]``
    Run any other subcommand with the observability layer (tracing,
    metrics, lineage) enabled; print the span tree and flat stats
    afterwards, optionally writing the JSONL trace and a metrics snapshot
    to files.
``cadinterop stats FILE [FILE ...]``
    Pretty-print JSONL trace files written by ``trace``/``migrate-batch``;
    several files (or a shell glob) merge their metrics and span stats.
``cadinterop audit TRACE.jsonl [TRACE.jsonl ...] [--json] [--top N]``
    Aggregate the lineage records of one or more traces into the
    semantic-loss report: per-stage and per-dialect loss matrices plus
    the top lossy designs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _cmd_checklist(args: argparse.Namespace) -> int:
    from cadinterop.core import (
        analyze_environment,
        cell_based_methodology,
        environment_checklist,
        standard_scenarios,
        standard_tool_catalog,
    )

    scenarios = {s.name: s for s in standard_scenarios()}
    if args.scenario not in scenarios:
        print(f"unknown scenario {args.scenario!r}; available: {sorted(scenarios)}",
              file=sys.stderr)
        return 2
    analysis = analyze_environment(
        cell_based_methodology(), standard_tool_catalog(), scenarios[args.scenario]
    )
    print(analysis.summary())
    print()
    print(environment_checklist(analysis))
    return 0


def _cmd_methodology(args: argparse.Namespace) -> int:
    from cadinterop.core import cell_based_methodology, prune_report, standard_scenarios

    graph = cell_based_methodology()
    stats = graph.stats()
    print(f"methodology: {graph.name}")
    for key, value in stats.items():
        print(f"  {key:12} {value}")
    print(f"  loops        {graph.has_iteration_loops()}")
    print("\nscenario pruning:")
    for scenario in standard_scenarios():
        _pruned, report = prune_report(graph, scenario)
        print(f"  {scenario.name:24} tasks {report.tasks_after:4}/{report.tasks_before}"
              f"  interactions {report.edges_after:4}/{report.edges_before}")
    return 0


def _cmd_races(args: argparse.Namespace) -> int:
    from cadinterop.hdl.parser import ParseError, parse
    from cadinterop.hdl.races import detect_races

    try:
        source = open(args.file).read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        unit = parse(source)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    module = unit.top_module
    if module.instances:
        from cadinterop.hdl.flatten import flatten

        module, _name_map = flatten(unit)
    report = detect_races(
        module, observed=args.observe or None, until=args.until,
        kernel=args.kernel,
    )
    print(report.summary())
    for divergence in report.divergences:
        print(f"  {divergence.signal}: {divergence.final_values}")
    return 1 if report.has_race else 0


def _cmd_subsets(args: argparse.Namespace) -> int:
    from cadinterop.hdl.parser import ParseError, parse_module
    from cadinterop.hdl.synth import portability_report, written_in_intersection

    try:
        source = open(args.file).read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        module = parse_module(source)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    report = portability_report(module)
    print(f"module {module.name}: features {sorted(report.features)}")
    for vendor, violations in report.per_vendor.items():
        verdict = "accepts" if not violations else f"rejects: {violations}"
        print(f"  {vendor:8} {verdict}")
    portable = written_in_intersection(module)
    print(f"portable across all vendors: {portable}")
    return 0 if portable else 1


def _cmd_naming(args: argparse.Namespace) -> int:
    from cadinterop.hdl.names import NamingConvention

    convention = NamingConvention(max_length=args.max_length)
    violations = convention.violations(args.names)
    if not violations:
        print(f"{len(args.names)} name(s) clean under the convention")
        return 0
    for name, reason in violations:
        print(f"  {name}: {reason}")
    return 1


def _cmd_migrate_batch(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from cadinterop.obs import (
        disable_lineage,
        disable_metrics,
        disable_tracing,
        enable_lineage,
        enable_metrics,
        enable_tracing,
        get_lineage,
        get_metrics,
        get_tracer,
        write_trace,
    )

    # --trace-out / --metrics-out / --lineage-out imply observability even
    # without the `trace` wrapper; only own (and later tear down) what we
    # enabled here.  Lineage without tracing would leave records unlinked,
    # so --lineage-out turns the tracer on too.
    own_tracer = False
    own_metrics = False
    own_lineage = False
    if args.lineage_out and not get_lineage().enabled:
        enable_lineage()
        own_lineage = True
    if (args.trace_out or args.lineage_out) and not get_tracer().enabled:
        enable_tracing()
        own_tracer = True
    if (
        args.trace_out or args.metrics_out or args.lineage_out
    ) and not get_metrics().enabled:
        enable_metrics()
        own_metrics = True
    try:
        code = _run_migrate_batch(args)
        tracer = get_tracer()
        lineage = get_lineage().records()
        if args.trace_out and tracer.enabled:
            write_trace(
                args.trace_out, tracer.spans(), get_metrics().snapshot(),
                trace_id=tracer.trace_id, lineage=lineage,
            )
            print(f"trace written to {args.trace_out}")
        if args.lineage_out and args.lineage_out != args.trace_out:
            write_trace(
                args.lineage_out, tracer.spans(), get_metrics().snapshot(),
                trace_id=tracer.trace_id, lineage=lineage,
            )
            print(f"lineage trace written to {args.lineage_out}")
        if args.metrics_out and get_metrics().enabled:
            Path(args.metrics_out).write_text(
                json.dumps(get_metrics().snapshot(), indent=2, sort_keys=True) + "\n"
            )
            print(f"metrics written to {args.metrics_out}")
        return code
    finally:
        if own_tracer:
            disable_tracing()
        if own_metrics:
            disable_metrics()
        if own_lineage:
            disable_lineage()


def _run_migrate_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from cadinterop.farm import MigrationFarm, ResultCache
    from cadinterop.schematic import io_cd, io_vl
    from cadinterop.schematic.samples import (
        build_sample_plan,
        build_vl_libraries,
        generate_chain_schematic,
    )

    libraries = build_vl_libraries()
    designs = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.glob("*.vl"))
            if not files:
                print(f"no .vl schematics in {path}", file=sys.stderr)
                return 2
        elif path.is_file():
            files = [path]
        else:
            print(f"no such file or directory: {path}", file=sys.stderr)
            return 2
        for file in files:
            try:
                designs.append(io_vl.load_schematic(file.read_text(), libraries))
            except Exception as exc:
                print(f"cannot load {file}: {exc}", file=sys.stderr)
                return 2
    # Synthetic corpus designs (for demos and cache warm-up experiments).
    # The last field is how many wire-label anchors sit off-grid, so part
    # of the corpus exercises the snap/approximation path like hand-edited
    # real-world schematics do.
    shapes = [(1, 2, 3, 0), (2, 2, 4, 1), (1, 3, 5, 0), (2, 4, 4, 2)]
    for index in range(args.generate):
        pages, chains, stages, offgrid = shapes[index % len(shapes)]
        cell = generate_chain_schematic(
            libraries, pages=pages, chains_per_page=chains, stages=stages,
            seed=index, offgrid_labels=offgrid,
        )
        cell.name = f"gen{index:03d}_{cell.name}"
        designs.append(cell)
    if not designs:
        print("nothing to migrate: pass .vl files/directories or --generate N",
              file=sys.stderr)
        return 2

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    plan = build_sample_plan(source_libraries=libraries)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    farm = MigrationFarm(plan, jobs=args.jobs, cache=cache)
    report = farm.run(designs)

    if args.profile:
        print(report.render(per_design=True))
    else:
        print(report.summary())
    if report.loss is not None and report.loss.total:
        print()
        print(report.loss.render())

    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for item in report.items:
            if item.result is not None:
                (out_dir / f"{item.design}.cd").write_text(
                    io_cd.dump_schematic(item.result.schematic)
                )
        print(f"wrote {sum(1 for i in report.items if i.result)} translated "
              f"designs to {out_dir}")
    return 0 if report.all_clean else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from cadinterop.obs import (
        disable_lineage,
        disable_metrics,
        disable_tracing,
        enable_lineage,
        enable_metrics,
        enable_tracing,
        render_stats,
        render_tree,
        write_trace,
    )

    rest = list(args.args)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("trace: give a cadinterop command to run, e.g. "
              "`cadinterop trace migrate-batch --generate 8`", file=sys.stderr)
        return 2
    if rest[0] in ("trace", "stats"):
        print(f"trace: cannot wrap the {rest[0]!r} command", file=sys.stderr)
        return 2

    tracer = enable_tracing()
    metrics = enable_metrics()
    recorder = enable_lineage()
    try:
        with tracer.span("cli:" + rest[0], argv=" ".join(rest)) as span:
            code = main(rest)
            span.set(exit_code=code)
        spans = tracer.spans()
        snapshot = metrics.snapshot()
        lineage = recorder.records()
        print()
        print(render_tree(spans))
        print()
        print(render_stats(spans, snapshot))
        if lineage:
            print()
            print(f"lineage: {len(lineage)} records "
                  "(write --trace-out and run `cadinterop audit` for the "
                  "loss matrix)")
        if args.trace_out:
            write_trace(args.trace_out, spans, snapshot,
                        trace_id=tracer.trace_id, lineage=lineage)
            print(f"trace written to {args.trace_out}")
        if args.metrics_out:
            import json

            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"metrics written to {args.metrics_out}")
        return code
    finally:
        disable_tracing()
        disable_metrics()
        disable_lineage()


def _expand_trace_paths(patterns: Sequence[str]) -> List[str]:
    """Expand shell-style globs (for shells that do not) and keep order."""
    import glob as globmod

    paths: List[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matched = sorted(globmod.glob(pattern))
            if not matched:
                paths.append(pattern)  # let read_trace report the miss
            paths.extend(matched)
        else:
            paths.append(pattern)
    return paths


def _cmd_stats(args: argparse.Namespace) -> int:
    from cadinterop.obs import (
        MetricsRegistry,
        read_trace,
        render_stats,
        render_tree,
    )

    paths = _expand_trace_paths(args.files)
    merged = MetricsRegistry()
    all_spans: List[dict] = []
    lineage_total = 0
    for path in paths:
        try:
            trace = read_trace(path)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {path}: {exc}", file=sys.stderr)
            return 2
        all_spans.extend(trace["spans"])
        lineage_total += len(trace["lineage"])
        merged.merge(trace["metrics"])
        meta = trace["meta"]
        if meta.get("trace_id"):
            print(f"trace {meta['trace_id']} ({path})")
    if len(paths) == 1:
        print()
        print(render_tree(all_spans))
    print()
    print(render_stats(all_spans, merged.snapshot()))
    if lineage_total:
        print()
        print(f"lineage: {lineage_total} records — "
              "run `cadinterop audit` for the loss matrix")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import json

    from cadinterop.obs import LossReport, read_trace

    report = LossReport()
    for path in _expand_trace_paths(args.files):
        try:
            trace = read_trace(path)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {path}: {exc}", file=sys.stderr)
            return 2
        report.merge(LossReport.from_records(trace["lineage"]))
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(top_designs=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cadinterop",
        description="CAD tool interoperability analyzers (DAC'96 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    checklist = commands.add_parser("checklist", help="environment checklist")
    checklist.add_argument("--scenario", default="full-asic")
    checklist.set_defaults(fn=_cmd_checklist)

    methodology = commands.add_parser("methodology", help="task graph statistics")
    methodology.set_defaults(fn=_cmd_methodology)

    races = commands.add_parser("races", help="ensemble race detection")
    races.add_argument("file")
    races.add_argument("--observe", nargs="*", default=None)
    races.add_argument("--until", type=int, default=1_000_000)
    races.add_argument("--kernel", choices=("interp", "compiled"),
                       default="compiled",
                       help="simulation kernel: the closure-compiled fast "
                            "path (default) or the interpreted reference "
                            "oracle")
    races.set_defaults(fn=_cmd_races)

    subsets = commands.add_parser("subsets", help="synthesis subset portability")
    subsets.add_argument("file")
    subsets.set_defaults(fn=_cmd_subsets)

    naming = commands.add_parser("naming", help="naming convention check")
    naming.add_argument("names", nargs="+")
    naming.add_argument("--max-length", type=int, default=8)
    naming.set_defaults(fn=_cmd_naming)

    batch = commands.add_parser(
        "migrate-batch", help="batch-migrate a schematic corpus through the farm"
    )
    batch.add_argument("paths", nargs="*",
                       help=".vl schematic files or directories of them")
    batch.add_argument("--generate", type=int, default=0, metavar="N",
                       help="add N synthetic corpus designs")
    batch.add_argument("--jobs", type=int, default=1,
                       help="parallel migration workers (default 1)")
    batch.add_argument("--cache-dir", default=None,
                       help="persist migration results here; unchanged designs "
                            "are served from cache on re-runs")
    batch.add_argument("--profile", action="store_true",
                       help="print per-design outcomes and the stage profile")
    batch.add_argument("--out", default=None, metavar="DIR",
                       help="write translated .cd files to DIR")
    batch.add_argument("--trace-out", default=None, metavar="FILE",
                       help="enable tracing and write a JSONL trace to FILE")
    batch.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="enable metrics and write a JSON snapshot to FILE")
    batch.add_argument("--lineage-out", default=None, metavar="FILE",
                       help="record per-object provenance, print the loss "
                            "report, and write a format-2 JSONL trace to FILE")
    batch.set_defaults(fn=_cmd_migrate_batch)

    trace = commands.add_parser(
        "trace", help="run another subcommand with tracing + metrics enabled"
    )
    trace.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the JSONL trace to FILE")
    trace.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics snapshot (JSON) to FILE")
    trace.add_argument("args", nargs=argparse.REMAINDER,
                       help="the cadinterop command to run under tracing")
    trace.set_defaults(fn=_cmd_trace)

    stats = commands.add_parser("stats", help="pretty-print JSONL trace files")
    stats.add_argument("files", nargs="+",
                       help="trace files (globs accepted); several files "
                            "merge their metrics and span stats")
    stats.set_defaults(fn=_cmd_stats)

    audit = commands.add_parser(
        "audit", help="semantic-loss report from the lineage records of traces"
    )
    audit.add_argument("files", nargs="+",
                       help="format-2 trace files (globs accepted)")
    audit.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    audit.add_argument("--top", type=int, default=5, metavar="N",
                       help="how many lossy designs to list (default 5)")
    audit.set_defaults(fn=_cmd_audit)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
