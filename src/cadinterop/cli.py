"""Command-line interface: the paper's checklist and analyzers, from a shell.

Subcommands
-----------
``cadinterop checklist [--scenario NAME]``
    Run the Section 6 environment analysis over the built-in methodology
    and tool catalog; print the interoperability checklist.
``cadinterop methodology``
    Print the 200-task methodology's statistics and scenario pruning table.
``cadinterop races FILE.v [--observe SIG ...]``
    Parse a Verilog-subset file and run ensemble race detection.
``cadinterop subsets FILE.v``
    Report which synthesis vendors accept the design and why not.
``cadinterop naming NAME [NAME ...]``
    Check a naming convention over a list of identifiers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _cmd_checklist(args: argparse.Namespace) -> int:
    from cadinterop.core import (
        analyze_environment,
        cell_based_methodology,
        environment_checklist,
        standard_scenarios,
        standard_tool_catalog,
    )

    scenarios = {s.name: s for s in standard_scenarios()}
    if args.scenario not in scenarios:
        print(f"unknown scenario {args.scenario!r}; available: {sorted(scenarios)}",
              file=sys.stderr)
        return 2
    analysis = analyze_environment(
        cell_based_methodology(), standard_tool_catalog(), scenarios[args.scenario]
    )
    print(analysis.summary())
    print()
    print(environment_checklist(analysis))
    return 0


def _cmd_methodology(args: argparse.Namespace) -> int:
    from cadinterop.core import cell_based_methodology, prune_report, standard_scenarios

    graph = cell_based_methodology()
    stats = graph.stats()
    print(f"methodology: {graph.name}")
    for key, value in stats.items():
        print(f"  {key:12} {value}")
    print(f"  loops        {graph.has_iteration_loops()}")
    print("\nscenario pruning:")
    for scenario in standard_scenarios():
        _pruned, report = prune_report(graph, scenario)
        print(f"  {scenario.name:24} tasks {report.tasks_after:4}/{report.tasks_before}"
              f"  interactions {report.edges_after:4}/{report.edges_before}")
    return 0


def _cmd_races(args: argparse.Namespace) -> int:
    from cadinterop.hdl.parser import ParseError, parse
    from cadinterop.hdl.races import detect_races

    try:
        source = open(args.file).read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        unit = parse(source)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    module = unit.top_module
    if module.instances:
        from cadinterop.hdl.flatten import flatten

        module, _name_map = flatten(unit)
    report = detect_races(
        module, observed=args.observe or None, until=args.until
    )
    print(report.summary())
    for divergence in report.divergences:
        print(f"  {divergence.signal}: {divergence.final_values}")
    return 1 if report.has_race else 0


def _cmd_subsets(args: argparse.Namespace) -> int:
    from cadinterop.hdl.parser import ParseError, parse_module
    from cadinterop.hdl.synth import portability_report, written_in_intersection

    try:
        source = open(args.file).read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        module = parse_module(source)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    report = portability_report(module)
    print(f"module {module.name}: features {sorted(report.features)}")
    for vendor, violations in report.per_vendor.items():
        verdict = "accepts" if not violations else f"rejects: {violations}"
        print(f"  {vendor:8} {verdict}")
    portable = written_in_intersection(module)
    print(f"portable across all vendors: {portable}")
    return 0 if portable else 1


def _cmd_naming(args: argparse.Namespace) -> int:
    from cadinterop.hdl.names import NamingConvention

    convention = NamingConvention(max_length=args.max_length)
    violations = convention.violations(args.names)
    if not violations:
        print(f"{len(args.names)} name(s) clean under the convention")
        return 0
    for name, reason in violations:
        print(f"  {name}: {reason}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cadinterop",
        description="CAD tool interoperability analyzers (DAC'96 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    checklist = commands.add_parser("checklist", help="environment checklist")
    checklist.add_argument("--scenario", default="full-asic")
    checklist.set_defaults(fn=_cmd_checklist)

    methodology = commands.add_parser("methodology", help="task graph statistics")
    methodology.set_defaults(fn=_cmd_methodology)

    races = commands.add_parser("races", help="ensemble race detection")
    races.add_argument("file")
    races.add_argument("--observe", nargs="*", default=None)
    races.add_argument("--until", type=int, default=1_000_000)
    races.set_defaults(fn=_cmd_races)

    subsets = commands.add_parser("subsets", help="synthesis subset portability")
    subsets.add_argument("file")
    subsets.set_defaults(fn=_cmd_subsets)

    naming = commands.add_parser("naming", help="naming convention check")
    naming.add_argument("names", nargs="+")
    naming.add_argument("--max-length", type=int, default=8)
    naming.set_defaults(fn=_cmd_naming)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
