"""The interoperability analysis methodology (paper Section 6).

The paper's research contribution, implemented end to end: tool-independent
task modelling with normalized information items, scenario-driven graph
pruning, four-way-classified tool models with CORBA/COM-style control
interfaces, task/tool mapping with hole and overlap detection, data/control
flow diagram construction, detection of the five classic interoperability
problems, the three system-optimization levers, the ~200-task cell-based
methodology library, and the checklist generator the abstract promises.
"""

from cadinterop.core.analysis import (
    AnalysisReport,
    Finding,
    analyze,
    analyze_edge,
)
from cadinterop.core.checklist import (
    EnvironmentAnalysis,
    analyze_environment,
    environment_checklist,
)
from cadinterop.core.flows import (
    ControlFlowEdge,
    DataFlowEdge,
    FlowDiagram,
    build_flow_diagram,
    to_dot,
)
from cadinterop.core.library import (
    cell_based_methodology,
    standard_scenarios,
    standard_tool_catalog,
)
from cadinterop.core.mapping import TaskToolMap, compare_mappings, map_tasks_to_tools
from cadinterop.core.optimization import (
    OptimizationDelta,
    apply_conventions,
    measure_lever,
    repartition_boundary,
    substitute_technology,
)
from cadinterop.core.scenarios import (
    DrivingFunctions,
    PruningReport,
    Scenario,
    UserProfile,
    prune,
    prune_report,
)
from cadinterop.core.tasks import (
    InfoItem,
    MethodologyError,
    Task,
    TaskGraph,
    task,
)
from cadinterop.core.toolmodel import (
    ControlInterface,
    DataPort,
    ToolCatalog,
    ToolModel,
)

__all__ = [
    "AnalysisReport",
    "ControlFlowEdge",
    "ControlInterface",
    "DataFlowEdge",
    "DataPort",
    "DrivingFunctions",
    "EnvironmentAnalysis",
    "Finding",
    "FlowDiagram",
    "InfoItem",
    "MethodologyError",
    "OptimizationDelta",
    "PruningReport",
    "Scenario",
    "Task",
    "TaskGraph",
    "TaskToolMap",
    "ToolCatalog",
    "ToolModel",
    "UserProfile",
    "analyze",
    "analyze_edge",
    "analyze_environment",
    "apply_conventions",
    "build_flow_diagram",
    "cell_based_methodology",
    "compare_mappings",
    "environment_checklist",
    "map_tasks_to_tools",
    "measure_lever",
    "prune",
    "prune_report",
    "repartition_boundary",
    "standard_scenarios",
    "standard_tool_catalog",
    "substitute_technology",
    "task",
    "to_dot",
]
