"""System optimization: the three improvement levers (Section 6).

"There are three ways of improving this performance.  The first way is to
repartition the boundaries of tools...  by peeling back the tool's general
purpose interface, there is typically a level where a lower overhead
interchange of data and control can take place.  The second type of
improvement comes from improvements in data interoperability...  things
like internal naming conventions, bus usage conventions, etc.  The final
type of improvement is through technological innovation.  This is where
new technologies (such as formal logic verification) replace a large
number of tasks with a single task in the overall flow."

Each lever is a transformation over the analysis inputs, so its benefit is
measured the same way the problem was: re-run the analysis and compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from cadinterop.core.analysis import AnalysisReport, analyze
from cadinterop.core.flows import build_flow_diagram
from cadinterop.core.mapping import TaskToolMap, map_tasks_to_tools
from cadinterop.core.tasks import MethodologyError, Task, TaskGraph
from cadinterop.core.toolmodel import DataPort, ToolCatalog, ToolModel


@dataclass
class OptimizationDelta:
    """Before/after comparison of one optimization lever."""

    lever: str
    description: str
    findings_before: int
    findings_after: int
    cost_before: float
    cost_after: float

    @property
    def findings_removed(self) -> int:
        return self.findings_before - self.findings_after

    @property
    def improved(self) -> bool:
        return (
            self.findings_after < self.findings_before
            or self.cost_after < self.cost_before
        )


def _measure(graph: TaskGraph, catalog: ToolCatalog, scenario: str) -> AnalysisReport:
    mapping = map_tasks_to_tools(graph, catalog, scenario)
    diagram = build_flow_diagram(graph, mapping, catalog)
    return analyze(diagram)


# ---------------------------------------------------------------------------
# Lever 1: repartition tool boundaries
# ---------------------------------------------------------------------------


def repartition_boundary(
    catalog: ToolCatalog,
    producer_tool: str,
    consumer_tool: str,
    info: str,
    channel_name: str = "direct",
) -> ToolCatalog:
    """Peel back the general-purpose interface between two tools.

    Models a vendor-level integration: the consumer learns to read the
    producer's native representation for ``info`` directly (persistence,
    structure, and namespace all aligned to the producer's side), so the
    edge stops needing translation.  Only vendors (or owners of internal
    tools) can do this — which is why it is a separate lever.
    """
    producer = catalog.tool(producer_tool)
    consumer = catalog.tool(consumer_tool)
    out_port = producer.port_for(info, "out")
    in_port = consumer.port_for(info, "in")
    if out_port is None or in_port is None:
        raise MethodologyError(
            f"cannot repartition: {info!r} is not modelled on both tools"
        )
    new_catalog = ToolCatalog()
    for tool in catalog.tools():
        if tool.name != consumer_tool:
            new_catalog.add(tool)
            continue
        new_ports = [
            replace(
                port,
                persistence=out_port.persistence,
                structure=out_port.structure,
                namespace=out_port.namespace,
                semantics=out_port.semantics,
            )
            if port.info == info and port.direction == "in"
            else port
            for port in tool.data_ports
        ]
        new_catalog.add(
            ToolModel(
                name=tool.name,
                function=tool.function + f" (+{channel_name} link to {producer_tool})",
                data_ports=new_ports,
                control=list(tool.control),
                implements_tasks=set(tool.implements_tasks),
                performance=dict(tool.performance),
                vendor=tool.vendor,
            )
        )
    return new_catalog


# ---------------------------------------------------------------------------
# Lever 2: data interoperability conventions
# ---------------------------------------------------------------------------


def apply_conventions(
    catalog: ToolCatalog,
    namespace: Optional[str] = None,
    semantics: Optional[str] = None,
) -> ToolCatalog:
    """Adopt flow-wide conventions (naming, bus usage).

    Modelled as aligning the ``namespace`` (and optionally ``semantics``)
    classification of every data port to the agreed convention — what a
    project does when it writes "internal naming conventions, bus usage
    conventions, etc." into its methodology documents.
    """
    new_catalog = ToolCatalog()
    for tool in catalog.tools():
        new_ports = [
            replace(
                port,
                namespace=namespace if namespace is not None else port.namespace,
                semantics=semantics if semantics is not None else port.semantics,
            )
            for port in tool.data_ports
        ]
        new_catalog.add(
            ToolModel(
                name=tool.name,
                function=tool.function,
                data_ports=new_ports,
                control=list(tool.control),
                implements_tasks=set(tool.implements_tasks),
                performance=dict(tool.performance),
                vendor=tool.vendor,
            )
        )
    return new_catalog


# ---------------------------------------------------------------------------
# Lever 3: technology substitution
# ---------------------------------------------------------------------------


def substitute_technology(
    graph: TaskGraph,
    replaced_tasks: Sequence[str],
    replacement: Task,
) -> TaskGraph:
    """Replace N tasks with one (e.g. formal verification for regression).

    The replacement must cover the replaced tasks' external interface: it
    may consume any of their inputs and must produce every output the rest
    of the flow consumed from them.
    """
    replaced = set(replaced_tasks)
    for name in replaced:
        graph.task(name)  # existence check
    survivors = [t for t in graph.tasks() if t.name not in replaced]

    # Outputs of the replaced set still consumed elsewhere must be covered.
    replaced_outputs: Set[str] = set()
    for name in replaced:
        replaced_outputs |= graph.task(name).outputs
    still_needed = {
        info
        for info in replaced_outputs
        if any(info in t.inputs for t in survivors)
    }
    uncovered = still_needed - replacement.outputs
    if uncovered:
        raise MethodologyError(
            f"replacement task does not produce {sorted(uncovered)} still "
            "needed by the remaining flow"
        )

    new_graph = TaskGraph(graph.name + "+subst")
    for survivor in survivors:
        new_graph.add_task(survivor)
    new_graph.add_task(replacement)
    for info_name, item in graph.info_items.items():
        if any(info_name in t.inputs | t.outputs for t in new_graph.tasks()):
            new_graph.add_info(item)
    return new_graph


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------


def measure_lever(
    lever: str,
    description: str,
    graph_before: TaskGraph,
    catalog_before: ToolCatalog,
    graph_after: TaskGraph,
    catalog_after: ToolCatalog,
    scenario: str = "optimization",
) -> OptimizationDelta:
    """Quantify one lever by re-running the classic-problem analysis."""
    before = _measure(graph_before, catalog_before, scenario)
    after = _measure(graph_after, catalog_after, scenario)
    return OptimizationDelta(
        lever=lever,
        description=description,
        findings_before=len(before.findings),
        findings_after=len(after.findings),
        cost_before=before.conversion_cost,
        cost_after=after.conversion_cost,
    )
