"""Data-flow and control-flow diagrams from the task/tool map (Section 6).

"Once models have been developed, then data flow and control flow diagrams
are created for the entire task/tool map.  These diagrams are then
analyzed."

A data-flow edge connects the tool chosen for a producing task to the tool
chosen for a consuming task, carrying the normalized info item and *both
tools' data-port classifications* — the raw material the classic-problem
analysis inspects.  Control-flow edges record how each tool can be driven
by the flow integrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.core.mapping import TaskToolMap
from cadinterop.core.tasks import TaskGraph
from cadinterop.core.toolmodel import DataPort, ToolCatalog, ToolModel


@dataclass(frozen=True)
class DataFlowEdge:
    """One info item flowing from a producing tool to a consuming tool."""

    info: str
    producer_task: str
    consumer_task: str
    producer_tool: str
    consumer_tool: str
    producer_port: Optional[DataPort]
    consumer_port: Optional[DataPort]

    @property
    def crosses_tools(self) -> bool:
        return self.producer_tool != self.consumer_tool

    @property
    def fully_modelled(self) -> bool:
        return self.producer_port is not None and self.consumer_port is not None


@dataclass(frozen=True)
class ControlFlowEdge:
    """The integration channel used to drive one tool for one task."""

    task: str
    tool: str
    kind: str  # chosen control interface kind, or "none"


@dataclass
class FlowDiagram:
    """The complete data/control-flow picture for one scenario."""

    scenario: str
    data_edges: List[DataFlowEdge] = field(default_factory=list)
    control_edges: List[ControlFlowEdge] = field(default_factory=list)
    unmapped_tasks: List[str] = field(default_factory=list)

    def cross_tool_edges(self) -> List[DataFlowEdge]:
        return [e for e in self.data_edges if e.crosses_tools]

    def edges_between(self, producer_tool: str, consumer_tool: str) -> List[DataFlowEdge]:
        return [
            e
            for e in self.data_edges
            if e.producer_tool == producer_tool and e.consumer_tool == consumer_tool
        ]

    def tool_pairs(self) -> Set[Tuple[str, str]]:
        return {
            (e.producer_tool, e.consumer_tool) for e in self.cross_tool_edges()
        }


def to_dot(diagram: "FlowDiagram", problems: Optional[Dict[Tuple[str, str], int]] = None) -> str:
    """Render the data-flow diagram as Graphviz DOT text.

    Tools become nodes; each cross-tool info flow becomes an edge labelled
    with the info item.  When ``problems`` maps (producer, consumer) pairs
    to finding counts (from the analysis), troubled edges are drawn bold
    red with the count — the picture Section 6 says gets analyzed.
    """
    problems = problems or {}
    lines = [f'digraph "{diagram.scenario}" {{', "  rankdir=LR;", '  node [shape=box];']
    tools = sorted(
        {e.producer_tool for e in diagram.data_edges}
        | {e.consumer_tool for e in diagram.data_edges}
    )
    for tool in tools:
        lines.append(f'  "{tool}";')
    seen: Set[Tuple[str, str, str]] = set()
    for edge in diagram.cross_tool_edges():
        key = (edge.producer_tool, edge.consumer_tool, edge.info)
        if key in seen:
            continue
        seen.add(key)
        count = problems.get((edge.producer_tool, edge.consumer_tool), 0)
        style = ' color=red penwidth=2' if count else ""
        label = edge.info + (f" [{count}!]" if count else "")
        lines.append(
            f'  "{edge.producer_tool}" -> "{edge.consumer_tool}" '
            f'[label="{label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


#: Integration channels a flow manager can use, in preference order.
INTEGRABLE_CONTROL_KINDS: Tuple[str, ...] = ("api", "rpc", "cli", "callback")


def build_flow_diagram(
    graph: TaskGraph,
    mapping: TaskToolMap,
    catalog: ToolCatalog,
) -> FlowDiagram:
    """Construct the diagrams for a task graph under a task/tool map."""
    diagram = FlowDiagram(scenario=mapping.scenario)

    chosen: Dict[str, Optional[str]] = {
        task_name: mapping.chosen_tool(task_name) for task_name in graph.task_names()
    }
    diagram.unmapped_tasks = sorted(
        task_name for task_name, tool in chosen.items() if tool is None
    )

    for producer_task, info, consumer_task in graph.edges():
        producer_tool = chosen.get(producer_task)
        consumer_tool = chosen.get(consumer_task)
        if producer_tool is None or consumer_tool is None:
            continue
        producer_model = catalog.tool(producer_tool)
        consumer_model = catalog.tool(consumer_tool)
        diagram.data_edges.append(
            DataFlowEdge(
                info=info,
                producer_task=producer_task,
                consumer_task=consumer_task,
                producer_tool=producer_tool,
                consumer_tool=consumer_tool,
                producer_port=producer_model.port_for(info, "out"),
                consumer_port=consumer_model.port_for(info, "in"),
            )
        )

    for task_name, tool_name in chosen.items():
        if tool_name is None:
            continue
        model = catalog.tool(tool_name)
        kind = "none"
        for preferred in INTEGRABLE_CONTROL_KINDS:
            if model.controllable_by([preferred]):
                kind = preferred
                break
        if kind == "none" and model.controllable_by(["gui"]):
            kind = "gui"
        diagram.control_edges.append(ControlFlowEdge(task_name, tool_name, kind))

    return diagram
