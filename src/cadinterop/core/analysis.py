"""Flow-diagram analysis: the five classic interoperability problems.

Section 6: "In our experience, this analysis clearly identifies the
classic interoperability problems (performance, name mapping, structure
mapping, semantic interpretation errors, and tool control).  This level of
analysis is typically the most important for CAD organizations as they
typically have to deal with tools as black boxes that cannot be optimized
in and of themselves."

Detection rules, per cross-tool data edge (using the four-part data-port
classification):

* **performance** — persistence formats differ: a translation step (and
  its runtime/disk cost) is required;
* **name mapping** — namespaces differ: identifiers must be mapped and
  mapped *back*;
* **structure mapping** — structural models differ (hierarchical vs flat,
  implicit vs explicit connectivity);
* **semantic interpretation** — behavioral-semantics conventions differ
  (event ordering, value sets, sensitivity interpretation);
* **tool control** — a tool in the flow offers no integration channel the
  flow manager can drive (GUI-only), or a port is simply missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.core.flows import DataFlowEdge, FlowDiagram

#: Translation cost charged when two tools disagree on persistence.
CONVERSION_COST = 1.0
#: Extra cost when semantics also differ (translation must re-interpret).
SEMANTIC_COST = 2.0


@dataclass
class Finding:
    """One classic problem on one edge (or tool)."""

    problem: str  # performance / name-mapping / structure-mapping / semantics / tool-control
    info: str
    producer_tool: str
    consumer_tool: str
    detail: str

    PROBLEMS = (
        "performance",
        "name-mapping",
        "structure-mapping",
        "semantics",
        "tool-control",
    )


_CATEGORY_FOR = {
    "performance": Category.PERFORMANCE,
    "name-mapping": Category.NAME_MAPPING,
    "structure-mapping": Category.STRUCTURE_MAPPING,
    "semantics": Category.SEMANTICS,
    "tool-control": Category.TOOL_CONTROL,
}


@dataclass
class AnalysisReport:
    """All findings for one scenario's flow diagram."""

    scenario: str
    findings: List[Finding] = field(default_factory=list)
    log: IssueLog = field(default_factory=IssueLog)
    conversion_cost: float = 0.0

    def by_problem(self, problem: str) -> List[Finding]:
        return [f for f in self.findings if f.problem == problem]

    def problem_counts(self) -> Dict[str, int]:
        counts = {problem: 0 for problem in Finding.PROBLEMS}
        for finding in self.findings:
            counts[finding.problem] += 1
        return counts

    def worst_tool_pair(self) -> Optional[Tuple[str, str, int]]:
        pairs: Dict[Tuple[str, str], int] = {}
        for finding in self.findings:
            key = (finding.producer_tool, finding.consumer_tool)
            pairs[key] = pairs.get(key, 0) + 1
        if not pairs:
            return None
        (producer, consumer), count = max(pairs.items(), key=lambda kv: kv[1])
        return producer, consumer, count


def _record(report: AnalysisReport, finding: Finding, remedy: str) -> None:
    report.findings.append(finding)
    report.log.add(
        Severity.WARNING if finding.problem != "tool-control" else Severity.ERROR,
        _CATEGORY_FOR[finding.problem],
        finding.info,
        f"{finding.producer_tool} -> {finding.consumer_tool}: {finding.detail}",
        remedy=remedy,
    )


def analyze_edge(edge: DataFlowEdge, report: AnalysisReport) -> None:
    """Apply the classic-problem rules to one cross-tool edge."""
    if not edge.crosses_tools:
        return
    if edge.producer_port is None or edge.consumer_port is None:
        missing_side = edge.producer_tool if edge.producer_port is None else edge.consumer_tool
        _record(
            report,
            Finding(
                "tool-control", edge.info, edge.producer_tool, edge.consumer_tool,
                f"{missing_side} has no modelled port for {edge.info!r}",
            ),
            "extend the tool model or use a different tool for the task",
        )
        return

    produced, consumed = edge.producer_port, edge.consumer_port
    if produced.persistence != consumed.persistence:
        _record(
            report,
            Finding(
                "performance", edge.info, edge.producer_tool, edge.consumer_tool,
                f"format translation {produced.persistence} -> {consumed.persistence}",
            ),
            "insert a translator; budget runtime and disk for it",
        )
        report.conversion_cost += CONVERSION_COST
    if produced.namespace != consumed.namespace:
        _record(
            report,
            Finding(
                "name-mapping", edge.info, edge.producer_tool, edge.consumer_tool,
                f"namespace {produced.namespace} vs {consumed.namespace}",
            ),
            "define a reversible name map; audit scripts that use old names",
        )
    if produced.structure != consumed.structure:
        _record(
            report,
            Finding(
                "structure-mapping", edge.info, edge.producer_tool, edge.consumer_tool,
                f"structure {produced.structure} vs {consumed.structure}",
            ),
            "flatten/rebuild hierarchy or synthesize explicit connectivity",
        )
    if produced.semantics != consumed.semantics:
        _record(
            report,
            Finding(
                "semantics", edge.info, edge.producer_tool, edge.consumer_tool,
                f"semantics {produced.semantics} vs {consumed.semantics}",
            ),
            "verify behavior across the boundary; expect legitimate disagreement",
        )
        report.conversion_cost += SEMANTIC_COST


def analyze(diagram: FlowDiagram) -> AnalysisReport:
    """Analyze a whole flow diagram."""
    report = AnalysisReport(scenario=diagram.scenario)
    for edge in diagram.data_edges:
        analyze_edge(edge, report)
    for control in diagram.control_edges:
        if control.kind == "none":
            _record(
                report,
                Finding(
                    "tool-control", control.task, control.tool, control.tool,
                    "no integration channel at all",
                ),
                "wrap the tool or replace it",
            )
        elif control.kind == "gui":
            _record(
                report,
                Finding(
                    "tool-control", control.task, control.tool, control.tool,
                    "GUI-only: cannot be driven by the workflow manager",
                ),
                "request a batch interface from the vendor",
            )
    if diagram.unmapped_tasks:
        for task_name in diagram.unmapped_tasks:
            report.log.add(
                Severity.ERROR, Category.FEATURE_GAP, task_name,
                "no tool implements this task (functionality hole)",
                remedy="purchase/build a tool or restructure the methodology",
            )
    return report
