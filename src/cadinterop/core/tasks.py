"""User tasks and the task graph (paper Section 6, system specification).

"The basic approach is to model the CAD user's design methodology as a set
of well defined tasks.  A task consists of a textual description of what
work is performed, the set of inputs required in order to perform the
task, and the set of outputs produced by the task.  Note that tasks are
defined in a tool independent way...  During the task development process,
it is important that task inputs and outputs be normalized.  Normalization
means that the fundamental information being consumed or produced is
identified, rather than the file format which some tool may use to
represent it."

"Tasks are represented as nodes in a directed graph which are linked
together through the specified inputs and outputs.  Interestingly, task
graphs more faithfully represent the designer's choices ... because they
[do not] simplify the problem to one which is linear in nature."  The graph
may therefore legitimately contain cycles (design iteration loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class MethodologyError(Exception):
    """Structural problem in a task/tool specification."""


@dataclass(frozen=True)
class InfoItem:
    """One normalized piece of design information (NOT a file format)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or " " in self.name:
            raise MethodologyError(f"info item names are kebab tokens, got {self.name!r}")


@dataclass(frozen=True)
class Task:
    """A tool-independent unit of design work.

    ``phase`` groups tasks by methodology stage; ``kind`` classifies into
    the paper's "design creation, analysis, and validation steps".
    """

    name: str
    description: str
    inputs: FrozenSet[str]
    outputs: FrozenSet[str]
    phase: str = "general"
    kind: str = "creation"  # creation / analysis / validation

    KINDS = ("creation", "analysis", "validation")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise MethodologyError(f"bad task kind {self.kind!r} on {self.name!r}")
        if not self.outputs and self.kind != "validation":
            raise MethodologyError(
                f"non-validation task {self.name!r} must produce something"
            )


def task(
    name: str,
    description: str,
    inputs: Sequence[str] = (),
    outputs: Sequence[str] = (),
    phase: str = "general",
    kind: str = "creation",
) -> Task:
    """Ergonomic constructor used by the methodology library."""
    return Task(
        name=name,
        description=description,
        inputs=frozenset(inputs),
        outputs=frozenset(outputs),
        phase=phase,
        kind=kind,
    )


class TaskGraph:
    """Tasks linked through shared information items."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self.info_items: Dict[str, InfoItem] = {}

    # -- construction -------------------------------------------------------

    def add_info(self, item: InfoItem) -> InfoItem:
        existing = self.info_items.get(item.name)
        if existing is not None and existing.description and item.description \
                and existing.description != item.description:
            raise MethodologyError(f"conflicting descriptions for info {item.name!r}")
        if existing is None or item.description:
            self.info_items[item.name] = item
        return self.info_items[item.name]

    def add_task(self, new_task: Task) -> Task:
        if new_task.name in self._tasks:
            raise MethodologyError(f"duplicate task {new_task.name!r}")
        self._tasks[new_task.name] = new_task
        for info_name in new_task.inputs | new_task.outputs:
            if info_name not in self.info_items:
                self.info_items[info_name] = InfoItem(info_name)
        return new_task

    # -- queries -----------------------------------------------------------------

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise MethodologyError(f"no task named {name!r}") from None

    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    def task_names(self) -> List[str]:
        return list(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def producers_of(self, info_name: str) -> List[Task]:
        return [t for t in self._tasks.values() if info_name in t.outputs]

    def consumers_of(self, info_name: str) -> List[Task]:
        return [t for t in self._tasks.values() if info_name in t.inputs]

    def successors(self, task_name: str) -> Set[str]:
        current = self.task(task_name)
        result: Set[str] = set()
        for info_name in current.outputs:
            result.update(t.name for t in self.consumers_of(info_name))
        result.discard(task_name)
        return result

    def predecessors(self, task_name: str) -> Set[str]:
        current = self.task(task_name)
        result: Set[str] = set()
        for info_name in current.inputs:
            result.update(t.name for t in self.producers_of(info_name))
        result.discard(task_name)
        return result

    def edges(self) -> List[Tuple[str, str, str]]:
        """(producer task, info item, consumer task) triples."""
        result: List[Tuple[str, str, str]] = []
        for info_name in self.info_items:
            producers = self.producers_of(info_name)
            consumers = self.consumers_of(info_name)
            for producer in producers:
                for consumer in consumers:
                    if producer.name != consumer.name:
                        result.append((producer.name, info_name, consumer.name))
        return result

    def external_inputs(self) -> Set[str]:
        """Info consumed but never produced (comes from outside the flow)."""
        consumed = {i for t in self._tasks.values() for i in t.inputs}
        produced = {o for t in self._tasks.values() for o in t.outputs}
        return consumed - produced

    def final_outputs(self) -> Set[str]:
        produced = {o for t in self._tasks.values() for o in t.outputs}
        consumed = {i for t in self._tasks.values() for i in t.inputs}
        return produced - consumed

    def backward_closure(self, outputs: Iterable[str]) -> Set[str]:
        """All tasks needed (transitively) to produce the given info items."""
        needed_info: List[str] = list(outputs)
        seen_info: Set[str] = set()
        selected: Set[str] = set()
        while needed_info:
            info_name = needed_info.pop()
            if info_name in seen_info:
                continue
            seen_info.add(info_name)
            for producer in self.producers_of(info_name):
                if producer.name not in selected:
                    selected.add(producer.name)
                    needed_info.extend(producer.inputs)
        return selected

    def subgraph(self, task_names: Iterable[str]) -> "TaskGraph":
        names = set(task_names)
        result = TaskGraph(f"{self.name}-sub")
        for name in self._tasks:
            if name in names:
                result.add_task(self._tasks[name])
        for info_name, item in self.info_items.items():
            if any(
                info_name in t.inputs | t.outputs for t in result.tasks()
            ):
                result.add_info(item)
        return result

    def has_iteration_loops(self) -> bool:
        """True if the graph has cycles — design iteration, not an error."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._tasks}

        def visit(name: str) -> bool:
            color[name] = GRAY
            for successor in self.successors(name):
                if color[successor] == GRAY:
                    return True
                if color[successor] == WHITE and visit(successor):
                    return True
            color[name] = BLACK
            return False

        return any(color[name] == WHITE and visit(name) for name in self._tasks)

    def stats(self) -> Dict[str, int]:
        kinds: Dict[str, int] = {}
        phases: Set[str] = set()
        for current in self._tasks.values():
            kinds[current.kind] = kinds.get(current.kind, 0) + 1
            phases.add(current.phase)
        return {
            "tasks": len(self._tasks),
            "info_items": len(self.info_items),
            "edges": len(self.edges()),
            "phases": len(phases),
            "creation": kinds.get("creation", 0),
            "analysis": kinds.get("analysis", 0),
            "validation": kinds.get("validation", 0),
        }

    def validate(self) -> List[str]:
        """Specification hygiene problems (empty = clean)."""
        problems: List[str] = []
        for current in self._tasks.values():
            overlap = current.inputs & current.outputs
            if overlap:
                # Legal (iteration on the same item) but worth surfacing.
                continue
        produced: Dict[str, List[str]] = {}
        for current in self._tasks.values():
            for output in current.outputs:
                produced.setdefault(output, []).append(current.name)
        orphan_outputs = self.final_outputs()
        if not orphan_outputs:
            problems.append("methodology has no final outputs (fully cyclic?)")
        return problems
