"""Tool models: the Section 6 system-analysis representation of a tool.

"A tool model is similar in structure to the user task.  It contains a
description of the function, data inputs, data outputs, control inputs,
and control outputs.  Data input and output is classified into four parts,
persistence, behavioral semantics, structural model, and namespace.
Control is defined as a set of interfaces.  This interface model is
analogous to the software component models like Corba and Com."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from cadinterop.core.tasks import MethodologyError


@dataclass(frozen=True)
class DataPort:
    """One data input or output of a tool, classified four ways.

    * ``persistence`` — the on-disk representation (file format name);
    * ``semantics`` — the behavioral interpretation convention (e.g. which
      event ordering, which value set);
    * ``structure`` — the structural model (hierarchical vs flat, explicit
      vs implicit connectivity);
    * ``namespace`` — the identifier rules the data obeys.
    """

    info: str  # the normalized info item this port carries
    direction: str  # "in" or "out"
    persistence: str
    semantics: str
    structure: str
    namespace: str

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise MethodologyError(f"bad port direction {self.direction!r}")


@dataclass(frozen=True)
class ControlInterface:
    """How a tool is driven or reports back (CORBA/COM-analogous)."""

    name: str
    kind: str  # "cli" / "api" / "rpc" / "gui" / "callback"
    direction: str  # "in" (tool is controlled) or "out" (tool notifies)
    operations: Tuple[str, ...] = ()

    KINDS = ("cli", "api", "rpc", "gui", "callback")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise MethodologyError(f"bad control kind {self.kind!r}")
        if self.direction not in ("in", "out"):
            raise MethodologyError(f"bad control direction {self.direction!r}")


@dataclass
class ToolModel:
    """One tool, modelled for interoperability analysis.

    ``implements_tasks`` names the user tasks this tool can perform;
    ``performance`` optionally estimates relative runtime cost per task.
    """

    name: str
    function: str
    data_ports: List[DataPort] = field(default_factory=list)
    control: List[ControlInterface] = field(default_factory=list)
    implements_tasks: Set[str] = field(default_factory=set)
    performance: Dict[str, float] = field(default_factory=dict)
    vendor: str = ""

    def inputs(self) -> List[DataPort]:
        return [p for p in self.data_ports if p.direction == "in"]

    def outputs(self) -> List[DataPort]:
        return [p for p in self.data_ports if p.direction == "out"]

    def port_for(self, info: str, direction: str) -> Optional[DataPort]:
        for port in self.data_ports:
            if port.info == info and port.direction == direction:
                return port
        return None

    def controllable_by(self, kinds: Iterable[str]) -> bool:
        wanted = set(kinds)
        return any(
            c.kind in wanted for c in self.control if c.direction == "in"
        )

    def task_cost(self, task_name: str) -> float:
        return self.performance.get(task_name, 1.0)


class ToolCatalog:
    """All tools available to an analysis."""

    def __init__(self) -> None:
        self._tools: Dict[str, ToolModel] = {}

    def add(self, tool: ToolModel) -> ToolModel:
        if tool.name in self._tools:
            raise MethodologyError(f"duplicate tool {tool.name!r}")
        self._tools[tool.name] = tool
        return tool

    def tool(self, name: str) -> ToolModel:
        try:
            return self._tools[name]
        except KeyError:
            raise MethodologyError(f"no tool named {name!r}") from None

    def tools(self) -> List[ToolModel]:
        return list(self._tools.values())

    def __len__(self) -> int:
        return len(self._tools)

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def tools_implementing(self, task_name: str) -> List[ToolModel]:
        return [t for t in self._tools.values() if task_name in t.implements_tasks]

    def subset(self, names: Iterable[str]) -> "ToolCatalog":
        catalog = ToolCatalog()
        for name in names:
            catalog.add(self.tool(name))
        return catalog
