"""Scenarios: boundary conditions that prune the task graph (Section 6).

"After tasks have been specified, then a set of scenarios is defined.  A
scenario is a set of boundary conditions to be applied to the set of tasks
previously defined.  A scenario typically includes: end user profile (team
size, experience, etc.), tools that must be used (already purchased or
developed), and end user driving functions (product cost, size,
performance, and technology to be used)...  The purpose of the scenarios
is to prune the task graph, and reduce the number of interactions the
tasks have with each other to a practical subset."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from cadinterop.core.tasks import MethodologyError, TaskGraph


@dataclass(frozen=True)
class UserProfile:
    """Who will run the flow."""

    team_size: int
    experience: str  # "novice" / "mixed" / "expert"

    EXPERIENCE = ("novice", "mixed", "expert")

    def __post_init__(self) -> None:
        if self.team_size <= 0:
            raise MethodologyError("team size must be positive")
        if self.experience not in self.EXPERIENCE:
            raise MethodologyError(f"bad experience level {self.experience!r}")


@dataclass(frozen=True)
class DrivingFunctions:
    """What the end product optimizes for (1 = don't care .. 5 = critical)."""

    cost: int = 3
    size: int = 3
    performance: int = 3
    technology: str = "cell-based"

    def __post_init__(self) -> None:
        for value in (self.cost, self.size, self.performance):
            if not 1 <= value <= 5:
                raise MethodologyError("driving function weights are 1..5")


@dataclass(frozen=True)
class Scenario:
    """One unique context in which the CAD system will be used."""

    name: str
    profile: UserProfile
    driving: DrivingFunctions
    mandated_tools: Tuple[str, ...] = ()
    #: info items the scenario must ultimately deliver
    required_outputs: Tuple[str, ...] = ()
    #: task phases this scenario excludes entirely (e.g. no analog team)
    excluded_phases: Tuple[str, ...] = ()
    #: optional-task phases kept only when a driving function demands them
    performance_phases: Tuple[str, ...] = ()

    def keeps_performance_phases(self) -> bool:
        return self.driving.performance >= 4


def prune(graph: TaskGraph, scenario: Scenario) -> TaskGraph:
    """Apply a scenario's boundary conditions to the task graph.

    Pruning keeps the backward closure of the scenario's required outputs,
    drops excluded phases, and drops performance-only phases unless the
    driving functions demand them.  The result is the "practical subset" of
    task interactions.
    """
    if not scenario.required_outputs:
        raise MethodologyError(f"scenario {scenario.name!r} requires no outputs")
    missing = [
        output
        for output in scenario.required_outputs
        if not graph.producers_of(output)
    ]
    if missing:
        raise MethodologyError(
            f"scenario {scenario.name!r} requires outputs nobody produces: {missing}"
        )

    selected = graph.backward_closure(scenario.required_outputs)

    def keep(task_name: str) -> bool:
        current = graph.task(task_name)
        if current.phase in scenario.excluded_phases:
            return False
        if (
            current.phase in scenario.performance_phases
            and not scenario.keeps_performance_phases()
        ):
            return False
        return True

    return graph.subgraph({name for name in selected if keep(name)})


@dataclass
class PruningReport:
    """Before/after statistics for one scenario."""

    scenario: str
    tasks_before: int
    tasks_after: int
    edges_before: int
    edges_after: int

    @property
    def task_reduction(self) -> float:
        return 1.0 - self.tasks_after / self.tasks_before if self.tasks_before else 0.0

    @property
    def interaction_reduction(self) -> float:
        return 1.0 - self.edges_after / self.edges_before if self.edges_before else 0.0


def prune_report(graph: TaskGraph, scenario: Scenario) -> Tuple[TaskGraph, PruningReport]:
    pruned = prune(graph, scenario)
    report = PruningReport(
        scenario=scenario.name,
        tasks_before=len(graph),
        tasks_after=len(pruned),
        edges_before=len(graph.edges()),
        edges_after=len(pruned.edges()),
    )
    return pruned, report
