"""Task-to-tool mapping: holes and overlaps (Section 6, system analysis).

"The first step in the analysis is to perform a task to tool mapping.
During this step each scenario is analyzed with a specific set of tools...
The result of this step is a mapping of tools to tasks.  Typically, this
is the first point where holes and overlaps of functionality are
identified."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from cadinterop.core.tasks import TaskGraph
from cadinterop.core.toolmodel import ToolCatalog, ToolModel


@dataclass
class TaskToolMap:
    """The mapping of tools to tasks for one scenario."""

    scenario: str
    assignments: Dict[str, List[str]] = field(default_factory=dict)  # task -> tools

    def tools_for(self, task_name: str) -> List[str]:
        return self.assignments.get(task_name, [])

    def chosen_tool(self, task_name: str) -> Optional[str]:
        tools = self.assignments.get(task_name, [])
        return tools[0] if tools else None

    @property
    def holes(self) -> List[str]:
        """Tasks no tool implements — functionality gaps."""
        return sorted(t for t, tools in self.assignments.items() if not tools)

    @property
    def overlaps(self) -> Dict[str, List[str]]:
        """Tasks more than one tool implements — redundancy/choice points."""
        return {
            t: tools
            for t, tools in self.assignments.items()
            if len(tools) > 1
        }

    @property
    def covered(self) -> List[str]:
        return sorted(t for t, tools in self.assignments.items() if tools)

    def coverage_ratio(self) -> float:
        if not self.assignments:
            return 0.0
        return len(self.covered) / len(self.assignments)

    def summary(self) -> str:
        return (
            f"{self.scenario}: {len(self.covered)}/{len(self.assignments)} tasks "
            f"covered, {len(self.holes)} holes, {len(self.overlaps)} overlaps"
        )


def map_tasks_to_tools(
    graph: TaskGraph,
    catalog: ToolCatalog,
    scenario_name: str = "default",
    prefer: Optional[Sequence[str]] = None,
) -> TaskToolMap:
    """Build the task/tool map for a (pruned) graph and a tool set.

    ``prefer`` orders tool names so mandated tools win overlaps: "a broad
    based CAD vendor may perform one analysis with only its tools and a
    second with key third party tools included".
    """
    preference = {name: index for index, name in enumerate(prefer or [])}
    mapping = TaskToolMap(scenario=scenario_name)
    for current in graph.tasks():
        tools = catalog.tools_implementing(current.name)
        names = sorted(
            (t.name for t in tools),
            key=lambda n: (preference.get(n, len(preference)), n),
        )
        mapping.assignments[current.name] = names
    return mapping


def compare_mappings(a: TaskToolMap, b: TaskToolMap) -> Dict[str, Tuple[Optional[str], Optional[str]]]:
    """Tasks whose chosen tool differs between two mappings."""
    tasks = set(a.assignments) | set(b.assignments)
    differences: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
    for task_name in tasks:
        chosen_a = a.chosen_tool(task_name)
        chosen_b = b.chosen_tool(task_name)
        if chosen_a != chosen_b:
            differences[task_name] = (chosen_a, chosen_b)
    return differences
