"""The cell-based methodology library: ~200 tasks, scenarios, tool catalog.

Section 6: "In our experience, we found that it takes approximately 200
tasks to describe a cell based design methodology that spans from product
specification to final mask tapeout."

:func:`cell_based_methodology` builds exactly that: a task graph from
product specification to mask tapeout, organized in sixteen phases, with
normalized information items and deliberate iteration loops (timing
feedback into synthesis, verification feedback into RTL).

:func:`standard_tool_catalog` models the tools built elsewhere in this
library (schematic editors and migrator, simulators, synthesizers, P&R
tools and backplane, workflow manager) as Section 6 tool models, so the
analysis pipeline exercises the very substrates whose behaviors the other
packages implement.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from cadinterop.core.scenarios import DrivingFunctions, Scenario, UserProfile
from cadinterop.core.tasks import InfoItem, Task, TaskGraph, task
from cadinterop.core.toolmodel import (
    ControlInterface,
    DataPort,
    ToolCatalog,
    ToolModel,
)

# ---------------------------------------------------------------------------
# The ~200-task methodology (specification -> tapeout)
# ---------------------------------------------------------------------------

#: (name, description, inputs, outputs, kind) per phase.  Kind defaults to
#: "creation"; a leading "?" marks analysis, "!" marks validation.
_PHASES: Dict[str, List[Tuple[str, str, Sequence[str], Sequence[str]]]] = {
    "specification": [
        ("gather-market-reqs", "collect market requirements", [], ["market-reqs"]),
        ("write-product-spec", "author the product specification", ["market-reqs"], ["product-spec"]),
        ("define-feature-list", "enumerate features", ["product-spec"], ["feature-list"]),
        ("set-cost-target", "set unit cost target", ["product-spec"], ["cost-target"]),
        ("set-performance-target", "set speed/power targets", ["product-spec"], ["performance-target"]),
        ("select-process", "choose fab process", ["cost-target", "performance-target"], ["process-choice"]),
        ("select-package", "choose package", ["cost-target", "pin-budget"], ["package-choice"]),
        ("estimate-die-size", "early die size estimate", ["feature-list", "process-choice"], ["die-estimate"]),
        ("estimate-pin-count", "early pin budget", ["feature-list"], ["pin-budget"]),
        ("?review-spec", "cross-functional spec review", ["product-spec", "feature-list"], ["spec-review-notes"]),
        ("!signoff-spec", "management sign-off of the spec", ["product-spec", "spec-review-notes"], ["spec-signoff"]),
        ("plan-schedule", "build the project schedule", ["spec-signoff"], ["project-schedule"]),
    ],
    "architecture": [
        ("partition-system", "partition into chips/blocks", ["product-spec", "spec-signoff"], ["block-partition"]),
        ("define-block-interfaces", "pin/protocol per block", ["block-partition"], ["block-interfaces"]),
        ("write-arch-spec", "architecture specification", ["block-partition", "block-interfaces"], ["arch-spec"]),
        ("model-performance", "architectural performance model", ["arch-spec", "performance-target"], ["perf-model"]),
        ("?analyze-bandwidth", "bus bandwidth analysis", ["perf-model"], ["bandwidth-report"]),
        ("define-clocking", "clock domains and frequencies", ["arch-spec"], ["clock-plan"]),
        ("define-power-domains", "power architecture", ["arch-spec"], ["power-plan"]),
        ("define-test-strategy", "DFT strategy choice", ["arch-spec"], ["test-strategy"]),
        ("define-memory-map", "address map", ["arch-spec"], ["memory-map"]),
        ("choose-ip-blocks", "make/buy per block", ["block-partition", "cost-target"], ["ip-choices"]),
        ("define-bus-conventions", "bus naming/width conventions", ["arch-spec"], ["bus-conventions"]),
        ("define-naming-conventions", "project naming rules", ["arch-spec"], ["naming-conventions"]),
        ("?review-architecture", "architecture review", ["arch-spec", "perf-model"], ["arch-review-notes"]),
        ("!signoff-architecture", "architecture sign-off", ["arch-spec", "arch-review-notes"], ["arch-signoff"]),
    ],
    "schematic": [
        ("build-symbol-library", "draw/qualify schematic symbols", ["naming-conventions"], ["symbol-library"]),
        ("capture-analog-schematic", "draw analog schematics", ["arch-spec", "symbol-library"], ["analog-schematic"]),
        ("capture-io-schematic", "draw pad ring schematics", ["block-interfaces", "symbol-library"], ["io-schematic"]),
        ("capture-top-schematic", "draw top-level schematic", ["block-partition", "symbol-library"], ["top-schematic"]),
        ("annotate-properties", "attach simulation properties", ["analog-schematic"], ["annotated-schematic"]),
        ("?check-schematic-rules", "schematic rule check", ["top-schematic"], ["schematic-check-report"]),
        ("extract-schematic-netlist", "netlist from schematics", ["top-schematic", "annotated-schematic"], ["schematic-netlist"]),
        ("migrate-legacy-schematics", "translate legacy vendor schematics", ["legacy-schematics", "symbol-library"], ["top-schematic"]),
        ("!verify-schematic-migration", "independent migration verification", ["legacy-schematics", "top-schematic"], ["migration-report"]),
        ("crossprobe-setup", "enable back-end crossprobing", ["top-schematic"], ["crossprobe-map"]),
        ("document-schematics", "schematic documentation pages", ["top-schematic"], ["schematic-docs"]),
        ("archive-schematics", "check schematics into DM", ["top-schematic"], ["schematic-archive"]),
    ],
    "rtl": [
        ("write-rtl-blockA", "RTL for datapath block", ["arch-spec", "naming-conventions"], ["rtl-blockA"]),
        ("write-rtl-blockB", "RTL for control block", ["arch-spec", "naming-conventions"], ["rtl-blockB"]),
        ("write-rtl-blockC", "RTL for interface block", ["block-interfaces", "naming-conventions"], ["rtl-blockC"]),
        ("integrate-rtl-top", "assemble top-level RTL", ["rtl-blockA", "rtl-blockB", "rtl-blockC"], ["rtl-top"]),
        ("write-behavioral-models", "behavioral models of IP", ["ip-choices"], ["behavioral-models"]),
        ("wrap-legacy-models", "wrap legacy HDL models", ["legacy-models"], ["behavioral-models"]),
        ("?lint-rtl", "RTL lint/naming check", ["rtl-top", "naming-conventions"], ["lint-report"]),
        ("?check-synthesizable-subset", "portability to all synthesis tools", ["rtl-top"], ["subset-report"]),
        ("?check-sensitivity-lists", "sensitivity list completeness", ["rtl-top"], ["sensitivity-report"]),
        ("fix-rtl-issues", "rework RTL from reports", ["lint-report", "sensitivity-report", "regression-report"], ["rtl-top"]),
        ("define-rtl-coding-rules", "RTL style guide", ["naming-conventions"], ["rtl-coding-rules"]),
        ("translate-rtl-language", "translate models between HDLs", ["rtl-top"], ["rtl-top-vhdl"]),
        ("?audit-translation-scripts", "script impact of renames", ["rtl-top-vhdl"], ["script-impact-report"]),
        ("parameterize-rtl", "make blocks reusable", ["rtl-blockA"], ["rtl-params"]),
        ("document-rtl", "RTL documentation", ["rtl-top"], ["rtl-docs"]),
        ("archive-rtl", "check RTL into DM", ["rtl-top"], ["rtl-archive"]),
        ("freeze-rtl", "declare RTL frozen", ["rtl-top", "regression-report"], ["rtl-freeze"]),
        ("estimate-gate-count", "gate count from RTL", ["rtl-top"], ["gate-estimate"]),
    ],
    "verification": [
        ("write-test-plan", "verification plan", ["arch-spec", "feature-list"], ["test-plan"]),
        ("build-testbench", "top-level testbench", ["test-plan", "rtl-top"], ["testbench"]),
        ("write-directed-tests", "directed test cases", ["test-plan"], ["directed-tests"]),
        ("write-random-tests", "pseudo-random generators", ["test-plan"], ["random-tests"]),
        ("build-reference-model", "golden reference model", ["arch-spec"], ["reference-model"]),
        ("run-unit-sims", "unit-level simulation", ["rtl-blockA", "testbench"], ["unit-sim-results"]),
        ("run-top-sims", "full-chip simulation", ["rtl-top", "testbench", "directed-tests"], ["top-sim-results"]),
        ("run-random-regression", "random regression", ["rtl-top", "random-tests"], ["regression-report"]),
        ("run-gate-sims", "gate-level simulation", ["gate-netlist", "testbench"], ["gate-sim-results"]),
        ("run-cosimulation", "mixed-language co-simulation", ["rtl-top", "behavioral-models"], ["cosim-results"]),
        ("?detect-races", "ensemble race detection", ["rtl-top"], ["race-report"]),
        ("?compare-simulators", "cross-simulator comparison", ["top-sim-results"], ["sim-compare-report"]),
        ("?measure-coverage", "coverage collection", ["top-sim-results", "random-tests"], ["coverage-report"]),
        ("close-coverage-holes", "add tests for holes", ["coverage-report"], ["directed-tests"]),
        ("debug-failures", "debug failing tests", ["top-sim-results"], ["bug-reports"]),
        ("fix-testbench-issues", "rework the bench", ["bug-reports"], ["testbench"]),
        ("run-timing-sims", "back-annotated timing simulation", ["gate-netlist", "sdf-delays", "testbench"], ["timing-sim-results"]),
        ("?check-timing-compat", "simulator version timing drift", ["timing-sim-results"], ["timing-compat-report"]),
        ("write-assertions", "embedded checkers", ["test-plan"], ["assertions"]),
        ("run-emulation", "hardware emulation runs", ["gate-netlist", "emulator-setup"], ["emulation-results"]),
        ("setup-emulator", "install/cable the emulator", ["test-strategy"], ["emulator-setup"]),
        ("!verify-against-reference", "compare against golden model", ["top-sim-results", "reference-model"], ["verification-signoff"]),
        ("!final-regression", "full regression before freeze", ["rtl-top", "directed-tests", "random-tests"], ["regression-report"]),
        ("archive-verification", "archive the bench and results", ["testbench", "regression-report"], ["verification-archive"]),
    ],
    "synthesis": [
        ("write-synthesis-constraints", "clocks/delays constraints", ["clock-plan", "performance-target"], ["synthesis-constraints"]),
        ("migrate-constraints", "port constraints between tools", ["synthesis-constraints"], ["synthesis-constraints-alt"]),
        ("select-target-library", "pick the cell library", ["process-choice"], ["target-library"]),
        ("synthesize-blockA", "synthesize datapath", ["rtl-blockA", "synthesis-constraints", "target-library"], ["gates-blockA"]),
        ("synthesize-blockB", "synthesize control", ["rtl-blockB", "synthesis-constraints", "target-library"], ["gates-blockB"]),
        ("synthesize-blockC", "synthesize interface", ["rtl-blockC", "synthesis-constraints-alt", "target-library"], ["gates-blockC"]),
        ("assemble-gate-netlist", "stitch block netlists", ["gates-blockA", "gates-blockB", "gates-blockC"], ["gate-netlist"]),
        ("?check-latch-inference", "latch inference audit", ["gates-blockB"], ["latch-report"]),
        ("?analyze-synth-timing", "pre-layout static timing", ["gate-netlist", "synthesis-constraints"], ["synth-timing-report"]),
        ("optimize-critical-paths", "re-synthesize hot paths", ["synth-timing-report", "rtl-blockA"], ["gates-blockA"]),
        ("?compare-rtl-gate", "RTL vs gates equivalence", ["rtl-top", "gate-netlist"], ["equivalence-report"]),
        ("set-dont-touch", "protect qualified cells", ["target-library"], ["dont-touch-list"]),
        ("generate-synthesis-reports", "area/power reports", ["gate-netlist"], ["synthesis-reports"]),
        ("?review-synthesis", "synthesis QOR review", ["synthesis-reports"], ["synthesis-review-notes"]),
        ("archive-netlist", "check netlist into DM", ["gate-netlist"], ["netlist-archive"]),
        ("!signoff-netlist", "netlist release", ["equivalence-report", "synthesis-review-notes"], ["netlist-signoff"]),
    ],
    "dft": [
        ("insert-scan", "scan chain insertion", ["gate-netlist", "test-strategy"], ["scan-netlist"]),
        ("insert-bist", "memory BIST insertion", ["scan-netlist", "memory-map"], ["bist-netlist"]),
        ("generate-atpg", "ATPG pattern generation", ["scan-netlist"], ["test-patterns"]),
        ("?measure-fault-coverage", "fault coverage analysis", ["test-patterns"], ["fault-coverage-report"]),
        ("add-jtag", "boundary scan/JTAG", ["bist-netlist", "package-choice"], ["jtag-netlist"]),
        ("write-test-protocols", "tester protocol files", ["test-patterns"], ["tester-protocols"]),
        ("?verify-scan-chains", "scan chain simulation", ["scan-netlist"], ["scan-verify-report"]),
        ("plan-burn-in", "burn-in test plan", ["test-strategy"], ["burn-in-plan"]),
        ("!signoff-dft", "DFT sign-off", ["fault-coverage-report", "scan-verify-report"], ["dft-signoff"]),
        ("archive-test-data", "archive patterns/protocols", ["test-patterns", "tester-protocols"], ["test-archive"]),
    ],
    "floorplanning": [
        ("create-floorplan", "initial floorplan", ["die-estimate", "block-partition", "jtag-netlist"], ["floorplan"]),
        ("place-macros", "place RAMs/macros", ["floorplan", "ip-choices"], ["macro-placement"]),
        ("plan-power-grid", "power ring/trunk plan", ["floorplan", "power-plan"], ["power-grid-plan"]),
        ("plan-clock-distribution", "clock spine/tree plan", ["floorplan", "clock-plan"], ["clock-distribution-plan"]),
        ("define-pin-locations", "die pin placement", ["floorplan", "package-choice"], ["pin-placement"]),
        ("define-keepouts", "keep-out zones", ["macro-placement"], ["keepout-map"]),
        ("write-net-rules", "critical net width/spacing/shield", ["clock-plan", "performance-target"], ["net-topology-rules"]),
        ("?estimate-routability", "congestion estimate", ["floorplan", "gate-estimate"], ["congestion-report"]),
        ("refine-block-aspects", "re-shape blocks", ["congestion-report", "floorplan"], ["floorplan"]),
        ("convey-constraints", "export constraints to P&R tools", ["floorplan", "net-topology-rules", "pin-placement"], ["pnr-constraints"]),
        ("?audit-constraint-loss", "what each P&R tool dropped", ["pnr-constraints"], ["constraint-loss-report"]),
        ("!signoff-floorplan", "floorplan review", ["floorplan", "congestion-report"], ["floorplan-signoff"]),
    ],
    "placement": [
        ("prepare-placement-libraries", "abstracts for the placer", ["target-library"], ["cell-abstracts"]),
        ("run-global-placement", "global placement", ["jtag-netlist", "pnr-constraints", "cell-abstracts"], ["global-placement"]),
        ("legalize-placement", "row legalization", ["global-placement"], ["legal-placement"]),
        ("place-spares", "spare cell insertion", ["legal-placement"], ["legal-placement"]),
        ("?analyze-placement-timing", "placement-based timing", ["legal-placement", "synthesis-constraints"], ["placement-timing-report"]),
        ("optimize-placement", "timing-driven refinement", ["placement-timing-report", "legal-placement"], ["legal-placement"]),
        ("?check-placement-rules", "site/orientation legality", ["legal-placement"], ["placement-check-report"]),
        ("!signoff-placement", "placement release", ["placement-check-report", "placement-timing-report"], ["placement-signoff"]),
    ],
    "routing": [
        ("route-power-grid", "power routing", ["legal-placement", "power-grid-plan"], ["power-routes"]),
        ("route-clock", "clock distribution routing", ["legal-placement", "clock-distribution-plan"], ["clock-routes"]),
        ("route-critical-nets", "route rule-carrying nets first", ["legal-placement", "net-topology-rules"], ["critical-routes"]),
        ("route-signal-nets", "global+detail signal routing", ["legal-placement", "critical-routes"], ["signal-routes"]),
        ("insert-shields", "shield critical nets", ["critical-routes", "net-topology-rules"], ["shield-routes"]),
        ("?check-routing-drc", "router-level DRC", ["signal-routes"], ["route-drc-report"]),
        ("repair-routing", "fix opens/shorts", ["route-drc-report", "signal-routes"], ["signal-routes"]),
        ("?measure-congestion", "post-route congestion", ["signal-routes"], ["route-congestion-report"]),
        ("export-routed-design", "write routed database", ["signal-routes", "power-routes", "clock-routes", "shield-routes"], ["routed-design"]),
        ("!signoff-routing", "routing release", ["route-drc-report", "routed-design"], ["routing-signoff"]),
    ],
    "extraction": [
        ("extract-parasitics", "RC extraction", ["routed-design"], ["parasitics"]),
        ("?analyze-coupling", "coupling capacitance analysis", ["parasitics", "net-topology-rules"], ["coupling-report"]),
        ("generate-sdf", "delay annotation file", ["parasitics", "gate-netlist"], ["sdf-delays"]),
        ("?run-post-layout-sta", "post-layout static timing", ["sdf-delays", "synthesis-constraints"], ["sta-report"]),
        ("?analyze-ir-drop", "power grid IR drop", ["power-routes", "parasitics"], ["ir-drop-report"]),
        ("?analyze-electromigration", "EM current density", ["power-routes", "parasitics"], ["em-report"]),
        ("?analyze-crosstalk-noise", "noise/glitch analysis", ["coupling-report"], ["noise-report"]),
        ("fix-timing-violations", "ECO for timing", ["sta-report", "routed-design"], ["routed-design"]),
        ("fix-noise-violations", "spacing/shield ECO", ["noise-report", "routed-design"], ["routed-design"]),
        ("?verify-clock-skew", "clock tree skew check", ["clock-routes", "parasitics"], ["skew-report"]),
        ("?recheck-timing-after-eco", "incremental STA", ["routed-design", "synthesis-constraints"], ["sta-report"]),
        ("characterize-io-timing", "chip-level IO timing", ["sta-report", "pin-placement"], ["io-timing-model"]),
        ("publish-timing-model", "block timing model out", ["io-timing-model"], ["timing-model"]),
        ("!signoff-timing", "timing sign-off", ["sta-report", "skew-report"], ["timing-signoff"]),
    ],
    "physical-verification": [
        ("merge-layout", "merge block layouts/macros", ["routed-design", "analog-layout"], ["full-layout"]),
        ("?run-drc", "design rule check", ["full-layout", "process-choice"], ["drc-report"]),
        ("?run-lvs", "layout vs schematic", ["full-layout", "schematic-netlist", "gate-netlist"], ["lvs-report"]),
        ("?run-antenna-check", "antenna rule check", ["full-layout"], ["antenna-report"]),
        ("?run-density-check", "metal density check", ["full-layout"], ["density-report"]),
        ("fix-drc-violations", "layout DRC fixes", ["drc-report", "full-layout"], ["full-layout"]),
        ("fix-lvs-mismatches", "connectivity fixes", ["lvs-report", "full-layout"], ["full-layout"]),
        ("insert-fill", "dummy metal fill", ["density-report", "full-layout"], ["full-layout"]),
        ("?rerun-signoff-checks", "final DRC/LVS pass", ["full-layout"], ["signoff-check-report"]),
        ("generate-netlist-from-layout", "extracted netlist", ["full-layout"], ["extracted-netlist"]),
        ("!signoff-physical", "physical verification sign-off", ["signoff-check-report"], ["physical-signoff"]),
        ("archive-layout", "layout into DM", ["full-layout"], ["layout-archive"]),
    ],
    "analog": [
        ("design-analog-cells", "transistor-level design", ["annotated-schematic", "process-choice"], ["analog-design"]),
        ("run-spice-sims", "analog simulation", ["analog-design"], ["spice-results"]),
        ("?analyze-corners", "process corner analysis", ["spice-results"], ["corner-report"]),
        ("layout-analog-cells", "analog layout", ["analog-design"], ["analog-layout"]),
        ("?extract-analog-parasitics", "analog RC extraction", ["analog-layout"], ["analog-parasitics"]),
        ("rerun-spice-with-parasitics", "post-layout analog sim", ["analog-design", "analog-parasitics"], ["spice-results"]),
        ("?match-devices", "device matching analysis", ["analog-layout"], ["matching-report"]),
        ("create-analog-abstract", "abstract for P&R", ["analog-layout"], ["cell-abstracts"]),
        ("document-analog", "analog design docs", ["analog-design"], ["analog-docs"]),
        ("!signoff-analog", "analog sign-off", ["corner-report", "matching-report"], ["analog-signoff"]),
    ],
    "tapeout": [
        ("assemble-mask-data", "final mask database", ["full-layout", "physical-signoff"], ["mask-data"]),
        ("add-mask-text", "mask level text/logos", ["mask-data"], ["mask-data"]),
        ("?verify-mask-data", "mask data verification", ["mask-data"], ["mask-verify-report"]),
        ("generate-fracture-data", "fracture for mask shop", ["mask-data"], ["fracture-data"]),
        ("write-tapeout-checklist", "tapeout checklist", ["timing-signoff", "dft-signoff", "physical-signoff", "analog-signoff", "verification-signoff"], ["tapeout-checklist"]),
        ("!final-tapeout-review", "tapeout review meeting", ["tapeout-checklist", "mask-verify-report"], ["tapeout-approval"]),
        ("ship-mask-data", "deliver to mask shop", ["fracture-data", "tapeout-approval"], ["final-mask-data"]),
        ("archive-tapeout", "full design archive", ["final-mask-data"], ["tapeout-archive"]),
    ],
    "library-development": [
        ("define-cell-list", "standard cell list", ["process-choice"], ["cell-list"]),
        ("design-cell-circuits", "cell transistor design", ["cell-list"], ["cell-circuits"]),
        ("layout-cells", "cell layout", ["cell-circuits"], ["cell-layouts"]),
        ("characterize-cells", "timing/power characterization", ["cell-layouts"], ["cell-characterization"]),
        ("build-timing-library", "synthesis timing views", ["cell-characterization"], ["target-library"]),
        ("build-abstracts", "P&R abstract views", ["cell-layouts"], ["cell-abstracts"]),
        ("?qualify-library", "library QA", ["target-library", "cell-abstracts"], ["library-qa-report"]),
        ("build-simulation-models", "cell sim models", ["cell-circuits"], ["behavioral-models"]),
        ("document-library", "library databook", ["cell-characterization"], ["library-docs"]),
        ("version-library", "release/version the library", ["library-qa-report"], ["library-release"]),
        ("distribute-library", "install at design sites", ["library-release"], ["library-install"]),
        ("!audit-library-versions", "check site version skew", ["library-install"], ["library-skew-report"]),
    ],
    "methodology-management": [
        ("capture-workflow", "capture the flow as a template", ["project-schedule"], ["workflow-template"]),
        ("deploy-workflow", "deploy template per block", ["workflow-template", "block-partition"], ["workflow-instances"]),
        ("collect-flow-metrics", "collect step status/metrics", ["workflow-instances"], ["flow-metrics"]),
        ("?tune-process", "closed-loop process tuning", ["flow-metrics"], ["process-improvements"]),
        ("setup-data-management", "choose/configure DM", ["project-schedule"], ["dm-setup"]),
        ("define-permissions", "who may run what", ["workflow-template"], ["permission-policy"]),
        ("?audit-tool-versions", "tool version skew audit", ["dm-setup"], ["tool-version-report"]),
        ("write-integration-scripts", "glue scripts between tools", ["workflow-template"], ["integration-scripts"]),
    ],
}

_KIND_MARKERS = {"?": "analysis", "!": "validation"}


def cell_based_methodology() -> TaskGraph:
    """Build the full specification-to-tapeout task graph (~200 tasks)."""
    graph = TaskGraph("cell-based-methodology")
    for phase, entries in _PHASES.items():
        for name, description, inputs, outputs in entries:
            kind = "creation"
            if name[0] in _KIND_MARKERS:
                kind = _KIND_MARKERS[name[0]]
                name = name[1:]
            graph.add_task(
                task(name, description, inputs, outputs, phase=phase, kind=kind)
            )
    return graph


# ---------------------------------------------------------------------------
# Standard scenarios
# ---------------------------------------------------------------------------


def standard_scenarios() -> List[Scenario]:
    """The unique contexts the paper suggests scenarios should span."""
    return [
        Scenario(
            name="full-asic",
            profile=UserProfile(team_size=40, experience="mixed"),
            driving=DrivingFunctions(cost=3, size=3, performance=5),
            required_outputs=("final-mask-data", "tapeout-archive"),
        ),
        Scenario(
            name="netlist-handoff",
            profile=UserProfile(team_size=12, experience="expert"),
            driving=DrivingFunctions(cost=4, size=3, performance=3),
            required_outputs=("netlist-signoff", "verification-signoff"),
            excluded_phases=("analog", "tapeout", "physical-verification"),
        ),
        Scenario(
            name="digital-only-lowcost",
            profile=UserProfile(team_size=8, experience="novice"),
            driving=DrivingFunctions(cost=5, size=4, performance=2),
            required_outputs=("final-mask-data",),
            excluded_phases=("analog",),
            performance_phases=("extraction",),
        ),
    ]


# ---------------------------------------------------------------------------
# The tool catalog: the tools this library itself implements, as models
# ---------------------------------------------------------------------------


def _port(info: str, direction: str, persistence: str, semantics: str,
          structure: str, namespace: str) -> DataPort:
    return DataPort(info, direction, persistence, semantics, structure, namespace)


def standard_tool_catalog() -> ToolCatalog:
    """Tool models for the substrates built in the other packages."""
    catalog = ToolCatalog()

    catalog.add(ToolModel(
        name="viewdraw-like",
        function="schematic capture (source system)",
        vendor="legacy",
        data_ports=[
            _port("top-schematic", "out", "vl-text", "implicit-crosspage", "multi-page", "vl-names"),
            _port("legacy-schematics", "in", "vl-text", "implicit-crosspage", "multi-page", "vl-names"),
            _port("symbol-library", "in", "vl-text", "implicit-crosspage", "flat", "vl-names"),
        ],
        control=[ControlInterface("netlist", "cli", "in", ("open", "netlist"))],
        implements_tasks={"capture-top-schematic", "capture-io-schematic"},
    ))

    catalog.add(ToolModel(
        name="composer-like",
        function="schematic capture (target system)",
        vendor="cdn",
        data_ports=[
            _port("top-schematic", "in", "cd-sexpr", "explicit-connectors", "multi-page", "cd-names"),
            _port("annotated-schematic", "out", "cd-sexpr", "explicit-connectors", "multi-page", "cd-names"),
            _port("schematic-netlist", "out", "cdl-netlist", "explicit-connectors", "hierarchical", "cd-names"),
            _port("symbol-library", "in", "cd-sexpr", "explicit-connectors", "flat", "cd-names"),
        ],
        control=[ControlInterface("al", "api", "in", ("open", "annotate", "netlist"))],
        implements_tasks={
            "annotate-properties", "extract-schematic-netlist", "crossprobe-setup",
            "capture-analog-schematic",
        },
    ))

    catalog.add(ToolModel(
        name="schematic-migrator",
        function="vendor schematic translation with verification",
        vendor="ccaes",
        data_ports=[
            _port("legacy-schematics", "in", "vl-text", "implicit-crosspage", "multi-page", "vl-names"),
            _port("top-schematic", "out", "cd-sexpr", "explicit-connectors", "multi-page", "cd-names"),
            _port("migration-report", "out", "report-text", "n/a", "flat", "cd-names"),
        ],
        control=[ControlInterface("batch", "cli", "in", ("migrate", "verify"))],
        implements_tasks={"migrate-legacy-schematics", "verify-schematic-migration"},
    ))

    catalog.add(ToolModel(
        name="xl-like-sim",
        function="event-driven HDL simulator (FIFO ordering)",
        vendor="cdn",
        data_ports=[
            _port("rtl-top", "in", "verilog-subset", "fifo-order-4value", "hierarchical", "verilog-names"),
            _port("testbench", "in", "verilog-subset", "fifo-order-4value", "hierarchical", "verilog-names"),
            _port("top-sim-results", "out", "wave-dump", "fifo-order-4value", "flat", "verilog-names"),
            _port("gate-netlist", "in", "gates-text", "fifo-order-4value", "flat", "verilog-names"),
            _port("sdf-delays", "in", "sdf-text", "fifo-order-4value", "flat", "verilog-names"),
            _port("timing-sim-results", "out", "wave-dump", "fifo-order-4value", "flat", "verilog-names"),
        ],
        control=[ControlInterface("plusargs", "cli", "in", ("compile", "run")),
                 ControlInterface("pli", "callback", "out", ("monitor",))],
        implements_tasks={"run-top-sims", "run-unit-sims", "run-gate-sims",
                          "run-timing-sims", "run-random-regression"},
    ))

    catalog.add(ToolModel(
        name="turbo-like-sim",
        function="competing HDL simulator (LIFO ordering, 9-value hybrid)",
        vendor="third-party",
        data_ports=[
            _port("rtl-top", "in", "verilog-subset", "lifo-order-9value", "hierarchical", "verilog-names"),
            _port("behavioral-models", "in", "vhdl-subset", "lifo-order-9value", "hierarchical", "vhdl-names"),
            _port("cosim-results", "out", "wave-dump", "lifo-order-9value", "flat", "vhdl-names"),
        ],
        control=[ControlInterface("tcl", "api", "in", ("elaborate", "run"))],
        implements_tasks={"run-cosimulation", "compare-simulators",
                          "run-top-sims", "run-random-regression"},
    ))

    catalog.add(ToolModel(
        name="race-analyzer",
        function="ensemble race detection over scheduling policies",
        vendor="cadinterop",
        data_ports=[
            _port("rtl-top", "in", "verilog-subset", "policy-ensemble", "flat", "verilog-names"),
            _port("race-report", "out", "report-text", "n/a", "flat", "verilog-names"),
        ],
        control=[ControlInterface("batch", "cli", "in", ("analyze",))],
        implements_tasks={"detect-races", "check-sensitivity-lists"},
    ))

    catalog.add(ToolModel(
        name="synthA-like",
        function="RTL synthesis (permissive subset)",
        vendor="vendorA",
        data_ports=[
            _port("rtl-blockA", "in", "verilog-subset", "full-sensitivity", "hierarchical", "verilog-names"),
            _port("rtl-blockB", "in", "verilog-subset", "full-sensitivity", "hierarchical", "verilog-names"),
            _port("synthesis-constraints", "in", "sdc-like", "n/a", "flat", "verilog-names"),
            _port("gates-blockA", "out", "gates-text", "zero-delay", "flat", "truncated-names"),
            _port("gates-blockB", "out", "gates-text", "zero-delay", "flat", "truncated-names"),
            _port("target-library", "in", "liberty-like", "n/a", "flat", "lib-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("read", "compile", "write"))],
        implements_tasks={"synthesize-blockA", "synthesize-blockB",
                          "optimize-critical-paths", "check-latch-inference",
                          "check-synthesizable-subset"},
    ))

    catalog.add(ToolModel(
        name="synthB-like",
        function="RTL synthesis (strict subset, different constraints)",
        vendor="vendorB",
        data_ports=[
            _port("rtl-blockC", "in", "verilog-subset", "strict-sensitivity", "hierarchical", "verilog-names"),
            _port("synthesis-constraints-alt", "in", "ini-like", "n/a", "flat", "verilog-names"),
            _port("gates-blockC", "out", "gates-text", "zero-delay", "flat", "verilog-names"),
            _port("target-library", "in", "liberty-like", "n/a", "flat", "lib-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("load", "map", "save"))],
        implements_tasks={"synthesize-blockC", "migrate-constraints"},
    ))

    catalog.add(ToolModel(
        name="hld-backplane",
        function="floorplanner driving a P&R backplane",
        vendor="hld",
        data_ports=[
            _port("floorplan", "out", "fp-db", "n/a", "hierarchical", "fp-names"),
            _port("net-topology-rules", "out", "fp-db", "n/a", "flat", "fp-names"),
            _port("pnr-constraints", "out", "per-tool-dialect", "n/a", "flat", "fp-names"),
            _port("constraint-loss-report", "out", "report-text", "n/a", "flat", "fp-names"),
            _port("die-estimate", "in", "report-text", "n/a", "flat", "fp-names"),
        ],
        control=[ControlInterface("gui", "gui", "in", ("edit",)),
                 ControlInterface("batch", "cli", "in", ("export",))],
        implements_tasks={"create-floorplan", "place-macros", "define-pin-locations",
                          "define-keepouts", "write-net-rules", "convey-constraints",
                          "audit-constraint-loss", "refine-block-aspects",
                          "plan-power-grid", "plan-clock-distribution",
                          "estimate-routability"},
    ))

    catalog.add(ToolModel(
        name="toolP-like",
        function="place and route (rich dialect)",
        vendor="vendorP",
        data_ports=[
            _port("pnr-constraints", "in", "per-tool-dialect", "n/a", "flat", "fp-names"),
            _port("jtag-netlist", "in", "gates-text", "zero-delay", "flat", "truncated-names"),
            _port("cell-abstracts", "in", "lef-like", "n/a", "flat", "lib-names"),
            _port("legal-placement", "out", "def-like", "n/a", "flat", "pnr-names"),
            _port("routed-design", "out", "def-like", "n/a", "flat", "pnr-names"),
            _port("signal-routes", "out", "def-like", "n/a", "flat", "pnr-names"),
            _port("critical-routes", "out", "def-like", "n/a", "flat", "pnr-names"),
        ],
        control=[ControlInterface("tcl", "api", "in", ("place", "route"))],
        implements_tasks={"run-global-placement", "legalize-placement",
                          "route-critical-nets", "route-signal-nets",
                          "insert-shields", "route-power-grid", "route-clock",
                          "repair-routing", "export-routed-design",
                          "optimize-placement", "place-spares"},
    ))

    catalog.add(ToolModel(
        name="toolQ-like",
        function="place and route (weaker dialect, overlaps toolP)",
        vendor="vendorQ",
        data_ports=[
            _port("pnr-constraints", "in", "q-constraints", "n/a", "flat", "q-names"),
            _port("jtag-netlist", "in", "gates-text", "zero-delay", "flat", "truncated-names"),
            _port("cell-abstracts", "in", "lef-like", "n/a", "flat", "lib-names"),
            _port("legal-placement", "out", "q-db", "n/a", "flat", "q-names"),
            _port("routed-design", "out", "q-db", "n/a", "flat", "q-names"),
            _port("signal-routes", "out", "q-db", "n/a", "flat", "q-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("place", "route"))],
        implements_tasks={"run-global-placement", "legalize-placement",
                          "route-signal-nets", "route-power-grid"},
    ))

    catalog.add(ToolModel(
        name="extract-like",
        function="parasitic extraction and analysis",
        vendor="vendorX",
        data_ports=[
            _port("routed-design", "in", "def-like", "n/a", "flat", "pnr-names"),
            _port("parasitics", "out", "spef-like", "n/a", "flat", "pnr-names"),
            _port("sdf-delays", "out", "sdf-text", "n/a", "flat", "verilog-names"),
            _port("coupling-report", "out", "report-text", "n/a", "flat", "pnr-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("extract",))],
        implements_tasks={"extract-parasitics", "analyze-coupling", "generate-sdf"},
    ))

    catalog.add(ToolModel(
        name="sta-like",
        function="static timing analysis",
        vendor="vendorX",
        data_ports=[
            _port("sdf-delays", "in", "sdf-text", "n/a", "flat", "verilog-names"),
            _port("synthesis-constraints", "in", "sdc-like", "n/a", "flat", "verilog-names"),
            _port("sta-report", "out", "report-text", "n/a", "flat", "verilog-names"),
        ],
        control=[ControlInterface("tcl", "api", "in", ("load", "report"))],
        implements_tasks={"run-post-layout-sta", "recheck-timing-after-eco",
                          "analyze-synth-timing"},
    ))

    catalog.add(ToolModel(
        name="formal-like",
        function="formal equivalence checking",
        vendor="vendorF",
        data_ports=[
            _port("rtl-top", "in", "verilog-subset", "formal-semantics", "hierarchical", "verilog-names"),
            _port("gate-netlist", "in", "gates-text", "formal-semantics", "flat", "truncated-names"),
            _port("equivalence-report", "out", "report-text", "n/a", "flat", "verilog-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("prove",))],
        implements_tasks={"compare-rtl-gate"},
    ))

    catalog.add(ToolModel(
        name="workflow-mgr",
        function="workflow management suite",
        vendor="mgc",
        data_ports=[
            _port("workflow-template", "out", "flow-db", "n/a", "hierarchical", "flow-names"),
            _port("workflow-instances", "out", "flow-db", "n/a", "hierarchical", "flow-names"),
            _port("flow-metrics", "out", "report-text", "n/a", "flat", "flow-names"),
        ],
        control=[ControlInterface("api", "api", "in", ("capture", "deploy", "run")),
                 ControlInterface("events", "callback", "out", ("notify",))],
        implements_tasks={"capture-workflow", "deploy-workflow",
                          "collect-flow-metrics", "tune-process",
                          "define-permissions", "setup-data-management"},
    ))

    catalog.add(ToolModel(
        name="rtl-editor",
        function="RTL authoring and integration",
        vendor="in-house",
        data_ports=[
            _port("rtl-blockA", "out", "verilog-subset", "fifo-order-4value", "hierarchical", "verilog-names"),
            _port("rtl-blockB", "out", "verilog-subset", "fifo-order-4value", "hierarchical", "verilog-names"),
            _port("rtl-blockC", "out", "verilog-subset", "fifo-order-4value", "hierarchical", "verilog-names"),
            _port("rtl-top", "out", "verilog-subset", "fifo-order-4value", "hierarchical", "verilog-names"),
            _port("lint-report", "in", "report-text", "n/a", "flat", "verilog-names"),
        ],
        control=[ControlInterface("editor", "cli", "in", ("edit", "integrate"))],
        implements_tasks={"write-rtl-blockA", "write-rtl-blockB", "write-rtl-blockC",
                          "integrate-rtl-top", "fix-rtl-issues", "document-rtl"},
    ))

    catalog.add(ToolModel(
        name="dft-like",
        function="scan/BIST insertion and ATPG",
        vendor="vendorD",
        data_ports=[
            _port("gate-netlist", "in", "gates-text", "zero-delay", "hierarchical", "dft-names"),
            _port("scan-netlist", "out", "gates-text", "zero-delay", "hierarchical", "dft-names"),
            _port("jtag-netlist", "out", "gates-text", "zero-delay", "hierarchical", "dft-names"),
            _port("test-patterns", "out", "wgl-like", "n/a", "flat", "dft-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("insert", "atpg"))],
        implements_tasks={"insert-scan", "insert-bist", "add-jtag",
                          "generate-atpg", "measure-fault-coverage"},
    ))

    catalog.add(ToolModel(
        name="signoff-like",
        function="physical verification (DRC/LVS) and mask prep",
        vendor="vendorS",
        data_ports=[
            _port("routed-design", "in", "gds-like", "n/a", "flat", "layout-names"),
            _port("full-layout", "out", "gds-like", "n/a", "flat", "layout-names"),
            _port("drc-report", "out", "report-text", "n/a", "flat", "layout-names"),
            _port("lvs-report", "out", "report-text", "n/a", "flat", "layout-names"),
            _port("mask-data", "out", "mebes-like", "n/a", "flat", "layout-names"),
        ],
        control=[ControlInterface("shell", "cli", "in", ("drc", "lvs", "fracture"))],
        implements_tasks={"run-drc", "run-lvs", "merge-layout", "insert-fill",
                          "assemble-mask-data", "verify-mask-data",
                          "generate-fracture-data", "rerun-signoff-checks"},
    ))

    catalog.add(ToolModel(
        name="waveview-gui",
        function="waveform viewer (GUI only)",
        vendor="third-party",
        data_ports=[
            _port("top-sim-results", "in", "wave-dump", "n/a", "flat", "verilog-names"),
            _port("bug-reports", "out", "report-text", "n/a", "flat", "verilog-names"),
        ],
        control=[ControlInterface("window", "gui", "in", ("open", "zoom"))],
        implements_tasks={"debug-failures"},
    ))

    return catalog
