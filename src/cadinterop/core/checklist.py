"""The end-to-end analysis pipeline and the reader's checklist.

The abstract promises: "Using this paper, the reader can develop a
checklist of potential interoperability issues in his CAD environment, and
address these issues before they cause a design schedule slip."

:func:`analyze_environment` runs the full Section 6 pipeline — prune the
methodology by a scenario, map tasks to the tool catalog, build the flow
diagrams, detect the five classic problems — and
:func:`environment_checklist` renders it all as that checklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity, render_checklist
from cadinterop.core.analysis import AnalysisReport, analyze
from cadinterop.core.flows import FlowDiagram, build_flow_diagram
from cadinterop.core.mapping import TaskToolMap, map_tasks_to_tools
from cadinterop.core.scenarios import PruningReport, Scenario, prune_report
from cadinterop.core.tasks import TaskGraph
from cadinterop.core.toolmodel import ToolCatalog


@dataclass
class EnvironmentAnalysis:
    """Everything the pipeline produced for one scenario."""

    scenario: Scenario
    pruned_graph: TaskGraph
    pruning: PruningReport
    mapping: TaskToolMap
    diagram: FlowDiagram
    report: AnalysisReport

    @property
    def log(self) -> IssueLog:
        return self.report.log

    def summary(self) -> str:
        counts = self.report.problem_counts()
        problem_text = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        return (
            f"scenario {self.scenario.name!r}: "
            f"{self.pruning.tasks_after}/{self.pruning.tasks_before} tasks kept, "
            f"{len(self.mapping.holes)} holes, {len(self.mapping.overlaps)} overlaps, "
            f"{len(self.report.findings)} classic-problem findings "
            f"({problem_text or 'none'}), "
            f"conversion cost {self.report.conversion_cost:.1f}"
        )


def analyze_environment(
    graph: TaskGraph,
    catalog: ToolCatalog,
    scenario: Scenario,
    prefer_tools: Optional[Sequence[str]] = None,
) -> EnvironmentAnalysis:
    """Run specification -> analysis for one scenario and tool set."""
    pruned, pruning = prune_report(graph, scenario)
    mapping = map_tasks_to_tools(
        pruned, catalog, scenario.name,
        prefer=list(scenario.mandated_tools) + list(prefer_tools or []),
    )
    diagram = build_flow_diagram(pruned, mapping, catalog)
    report = analyze(diagram)

    # Fold mapping holes into the log so the checklist is complete.
    for hole in mapping.holes:
        report.log.add(
            Severity.ERROR, Category.FEATURE_GAP, hole,
            "no tool in the environment implements this task",
            remedy="buy/build a tool, or restructure the methodology",
        )
    for task_name, tools in mapping.overlaps.items():
        report.log.add(
            Severity.NOTE, Category.ENVIRONMENT, task_name,
            f"multiple tools implement this task: {tools}",
            remedy="pick one per scenario to avoid divergent results",
        )
    return EnvironmentAnalysis(
        scenario=scenario,
        pruned_graph=pruned,
        pruning=pruning,
        mapping=mapping,
        diagram=diagram,
        report=report,
    )


def environment_checklist(analysis: EnvironmentAnalysis) -> str:
    """Render the analysis as the paper's promised checklist."""
    title = (
        f"CAD interoperability checklist — scenario {analysis.scenario.name!r}"
    )
    return render_checklist(analysis.log, title=title)
