"""Cross-section integration: schematics into place-and-route.

The second half of the Exar story: once the schematics live in the target
system, physical design consumes them.  This bridge extracts the geometric
netlist from a schematic (Section 2 substrate) and lowers it onto a P&R
cell library (Section 4 substrate) through explicit *bindings* — symbol
(library, name) to cell name plus a pin-name map, because (of course) the
schematic symbols and the layout abstracts disagree on pin names.  Every
unbindable symbol or unmappable pin is reported, never dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.obs import get_lineage
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.design import PnRDesign, PnRInstance, inst_terminal, pad_terminal
from cadinterop.schematic.dialects import get_dialect
from cadinterop.schematic.model import Schematic
from cadinterop.schematic.netlist import extract


@dataclass(frozen=True)
class CellBinding:
    """One schematic symbol bound to one layout cell."""

    symbol_library: str
    symbol_name: str
    cell_name: str
    pin_map: Tuple[Tuple[str, str], ...] = ()  # (schematic pin, cell pin)

    def map_pin(self, schematic_pin: str) -> str:
        for source, target in self.pin_map:
            if source == schematic_pin:
                return target
        return schematic_pin


class BindingTable:
    """All symbol->cell bindings for one technology."""

    def __init__(self, bindings: Tuple[CellBinding, ...] = ()) -> None:
        self._bindings: Dict[Tuple[str, str], CellBinding] = {}
        for binding in bindings:
            self.add(binding)

    def add(self, binding: CellBinding) -> CellBinding:
        key = (binding.symbol_library, binding.symbol_name)
        if key in self._bindings:
            raise ValueError(f"duplicate binding for {key}")
        self._bindings[key] = binding
        return binding

    def lookup(self, library: str, name: str) -> Optional[CellBinding]:
        return self._bindings.get((library, name))


def sample_binding_table() -> BindingTable:
    """Bindings from the Composer-like sample symbols to the P&R stdlib."""
    table = BindingTable()
    table.add(CellBinding("cd_basic", "nand2", "nand2",
                          (("IN1", "A"), ("IN2", "B"), ("OUT", "Y"))))
    table.add(CellBinding("cd_basic", "inv", "inv",
                          (("IN", "A"), ("OUT", "Y"))))
    return table


@dataclass
class SchematicConversion:
    """Result of lowering a schematic into a P&R design."""

    design: PnRDesign
    port_pads: List[str] = field(default_factory=list)
    global_nets: List[str] = field(default_factory=list)
    log: IssueLog = field(default_factory=IssueLog)
    skipped_instances: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.log.has_errors()


def schematic_to_pnr(
    schematic: Schematic,
    bindings: BindingTable,
    library: CellLibrary,
    log: Optional[IssueLog] = None,
) -> SchematicConversion:
    """Lower one schematic cell onto a P&R library.

    Connector and global symbols carry no layout cell; connector nets are
    already merged by extraction, and global nets are reported (they route
    via power strategies, not signal routing).  Ports become pads on their
    named nets.
    """
    log = log if log is not None else IssueLog()
    conversion = SchematicConversion(design=PnRDesign(schematic.name), log=log)
    lineage = get_lineage()
    netlist = extract(schematic, get_dialect(schematic.dialect))
    log.merge(netlist.log)

    # Instances: bind each component symbol to a cell.
    bound: Dict[str, CellBinding] = {}
    for _page, instance in schematic.all_instances():
        if instance.symbol.kind != "component":
            continue
        binding = bindings.lookup(instance.symbol.library, instance.symbol.name)
        if binding is None:
            conversion.skipped_instances.append(instance.name)
            log.add(
                Severity.ERROR, Category.STRUCTURE_MAPPING, instance.name,
                f"no layout cell bound to symbol "
                f"{instance.symbol.library}/{instance.symbol.name}",
                remedy="extend the binding table",
            )
            lineage.record(
                "instance", instance.name, "schematic2pnr", "dropped",
                detail=f"no layout cell bound to "
                f"{instance.symbol.library}/{instance.symbol.name}",
                design=schematic.name,
            )
            continue
        if binding.cell_name not in library:
            log.add(
                Severity.ERROR, Category.STRUCTURE_MAPPING, instance.name,
                f"binding targets unknown cell {binding.cell_name!r}",
            )
            lineage.record(
                "instance", instance.name, "schematic2pnr", "dropped",
                detail=f"binding targets unknown cell {binding.cell_name!r}",
                design=schematic.name,
            )
            continue
        cell = library.cell(binding.cell_name)
        conversion.design.add_instance(PnRInstance(instance.name, cell))
        bound[instance.name] = binding
        lineage.record(
            "instance", instance.name, "schematic2pnr", "transformed",
            detail=f"{instance.symbol.library}/{instance.symbol.name} -> "
            f"cell {cell.name}",
            design=schematic.name,
        )
        # Validate the pin map against both sides.
        for pin in instance.symbol.pins:
            mapped = binding.map_pin(pin.name)
            if not cell.has_pin(mapped):
                log.add(
                    Severity.ERROR, Category.NAME_MAPPING,
                    f"{instance.name}.{pin.name}",
                    f"symbol pin maps to {mapped!r}, absent on cell "
                    f"{cell.name!r}",
                    remedy="fix the binding's pin map",
                )

    port_names = {port.name for port in schematic.ports}
    for net in netlist.nets.values():
        terminals = []
        for instance_name, pin_name in sorted(net.terminals):
            binding = bound.get(instance_name)
            if binding is None:
                continue  # connector/global/unbound instance
            mapped = binding.map_pin(pin_name)
            cell = conversion.design.instance(instance_name).cell
            if not cell.has_pin(mapped):
                # Already reported during binding validation; keep the
                # design constructible so every problem surfaces at once.
                continue
            terminals.append(inst_terminal(instance_name, mapped))
        if net.is_global:
            conversion.global_nets.append(net.name)
            log.add(
                Severity.NOTE, Category.CONNECTIVITY, net.name,
                "global net excluded from signal routing (route via a "
                "power/ground strategy)",
            )
            lineage.record(
                "net", net.name, "schematic2pnr", "preserved",
                detail="global net carried by power/ground strategy",
                design=schematic.name,
            )
            continue
        matching_ports = sorted(net.labels & port_names)
        for port in matching_ports:
            terminals.append(pad_terminal(port))
            if port not in conversion.port_pads:
                conversion.port_pads.append(port)
                lineage.record(
                    "pad", port, "schematic2pnr", "synthesized",
                    detail="pad created for schematic port",
                    design=schematic.name,
                )
        if len(terminals) >= 2:
            conversion.design.add_net(net.name, terminals)
    return conversion
