"""Cross-section integration: RTL through synthesis into place-and-route.

The paper's premise is a *flow*: data leaves one tool class and enters the
next, and every hand-off is an interoperability surface.  This module wires
the library's own substrates together the way a methodology would —
HDL RTL (Section 3) → synthesized gate netlist → P&R design (Section 4) —
and, being a hand-off, it surfaces exactly the paper's issues on the way:

* gate types must map onto library cells (a structure-mapping problem:
  multi-input gates decompose into 2-input cells);
* signal names cross from the HDL namespace into the P&R namespace through
  a collision-aware :class:`~cadinterop.common.namemap.NameMap`;
* anything the target library cannot express is reported, not dropped
  silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from cadinterop.common.diagnostics import Category, IssueLog, Severity
from cadinterop.common.namemap import NameMap
from cadinterop.hdl.ast_nodes import GateInst, HDLError, Module
from cadinterop.obs import get_lineage
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.design import PnRDesign, PnRInstance, inst_terminal, pad_terminal

@dataclass
class NetlistConversion:
    """Result of lowering a gate-level HDL module into a P&R design."""

    design: PnRDesign
    name_map: NameMap
    log: IssueLog = field(default_factory=IssueLog)
    decomposed_gates: int = 0
    cells_emitted: int = 0

    @property
    def ok(self) -> bool:
        return not self.log.has_errors()


class _Lowerer:
    """Stateful gate-to-cell lowering with decomposition."""

    def __init__(self, module: Module, library: CellLibrary, log: IssueLog) -> None:
        self.module = module
        self.library = library
        self.log = log
        self.design = PnRDesign(module.name)
        self.name_map = NameMap()
        self._cell_counter = 0
        self._net_counter = 0
        #: net -> list of terminals accumulated while emitting cells
        self._net_terminals: Dict[str, List[Tuple[str, str, str]]] = {}
        self.decomposed = 0

    # -- helpers -----------------------------------------------------------

    def fresh_net(self) -> str:
        self._net_counter += 1
        name = f"dec${self._net_counter}"
        mapped = self.name_map.map(name)
        get_lineage().record(
            "net", mapped, "rtl2gds", "synthesized",
            detail="decomposition net", design=self.module.name,
        )
        return mapped

    def emit_cell(self, cell_name: str, pins: Dict[str, str]) -> str:
        """Instantiate one library cell; returns the instance name."""
        cell = self.library.cell(cell_name)
        self._cell_counter += 1
        instance_name = f"g{self._cell_counter}"
        self.design.add_instance(PnRInstance(instance_name, cell))
        for pin_name, net in pins.items():
            self._net_terminals.setdefault(net, []).append(
                inst_terminal(instance_name, pin_name)
            )
        return instance_name

    # -- gate lowering -------------------------------------------------------

    def lower_gate(self, gate: GateInst) -> None:
        inputs = [self.name_map.map(pin) for pin in gate.inputs]
        output = self.name_map.map(gate.output)

        if gate.gate == "nand" and len(inputs) == 2 and "nand2" in self.library:
            self.emit_cell("nand2", {"A": inputs[0], "B": inputs[1], "Y": output})
            return
        if gate.gate in ("not", "buf") and "inv" in self.library:
            if gate.gate == "not":
                self.emit_cell("inv", {"A": inputs[0], "Y": output})
            else:
                middle = self.fresh_net()
                self.emit_cell("inv", {"A": inputs[0], "Y": middle})
                self.emit_cell("inv", {"A": middle, "Y": output})
                self.decomposed += 1
            return
        if gate.gate == "and" and "nand2" in self.library and "inv" in self.library:
            self._lower_tree("and", inputs, output)
            return
        if gate.gate == "or" and "nand2" in self.library and "inv" in self.library:
            self._lower_tree("or", inputs, output)
            return
        if gate.gate == "nand" and len(inputs) > 2:
            middle = self.fresh_net()
            self._lower_tree("and", inputs, middle)
            self.emit_cell("inv", {"A": middle, "Y": output})
            self.decomposed += 1
            return
        if gate.gate == "nor":
            middle = self.fresh_net()
            self._lower_tree("or", inputs, middle)
            self.emit_cell("inv", {"A": middle, "Y": output})
            self.decomposed += 1
            return
        if gate.gate in ("xor", "xnor") and "nand2" in self.library:
            self._lower_xor(inputs, output, invert=(gate.gate == "xnor"))
            return

        self.log.add(
            Severity.ERROR, Category.STRUCTURE_MAPPING, gate.name,
            f"no mapping for gate type {gate.gate!r} in library "
            f"{self.library.name!r}",
            remedy="extend the cell map or re-synthesize to supported gates",
        )

    def _lower_and2(self, a: str, b: str, output: str) -> None:
        middle = self.fresh_net()
        self.emit_cell("nand2", {"A": a, "B": b, "Y": middle})
        self.emit_cell("inv", {"A": middle, "Y": output})

    def _lower_or2(self, a: str, b: str, output: str) -> None:
        na, nb = self.fresh_net(), self.fresh_net()
        self.emit_cell("inv", {"A": a, "Y": na})
        self.emit_cell("inv", {"A": b, "Y": nb})
        self.emit_cell("nand2", {"A": na, "B": nb, "Y": output})

    def _lower_tree(self, op: str, inputs: List[str], output: str) -> None:
        """Balanced reduction of an n-input and/or onto 2-input cells."""
        if len(inputs) == 1:
            middle = self.fresh_net()
            self.emit_cell("inv", {"A": inputs[0], "Y": middle})
            self.emit_cell("inv", {"A": middle, "Y": output})
            return
        self.decomposed += max(0, len(inputs) - 2)
        current = list(inputs)
        while len(current) > 2:
            next_level: List[str] = []
            for index in range(0, len(current) - 1, 2):
                net = self.fresh_net()
                if op == "and":
                    self._lower_and2(current[index], current[index + 1], net)
                else:
                    self._lower_or2(current[index], current[index + 1], net)
                next_level.append(net)
            if len(current) % 2:
                next_level.append(current[-1])
            current = next_level
        if op == "and":
            self._lower_and2(current[0], current[1], output)
        else:
            self._lower_or2(current[0], current[1], output)

    def _lower_xor(self, inputs: List[str], output: str, invert: bool) -> None:
        if len(inputs) != 2:
            self.log.add(
                Severity.ERROR, Category.STRUCTURE_MAPPING, output,
                f"xor decomposition supports 2 inputs, got {len(inputs)}",
            )
            return
        a, b = inputs
        # Classic 4-nand XOR.
        m = self.fresh_net()
        x = self.fresh_net()
        y = self.fresh_net()
        self.decomposed += 1
        self.emit_cell("nand2", {"A": a, "B": b, "Y": m})
        self.emit_cell("nand2", {"A": a, "B": m, "Y": x})
        self.emit_cell("nand2", {"A": b, "B": m, "Y": y})
        if invert:
            pre = self.fresh_net()
            self.emit_cell("nand2", {"A": x, "B": y, "Y": pre})
            self.emit_cell("inv", {"A": pre, "Y": output})
        else:
            self.emit_cell("nand2", {"A": x, "B": y, "Y": output})

    # -- driver ---------------------------------------------------------------

    def run(self) -> NetlistConversion:
        module = self.module
        if module.always_blocks or module.assigns or module.instances:
            raise HDLError(
                f"module {module.name!r} is not a pure gate netlist; "
                "synthesize and flatten first"
            )
        lineage = get_lineage()
        for gate in module.gates:
            cells_before = self._cell_counter
            self.lower_gate(gate)
            emitted = self._cell_counter - cells_before
            if emitted:
                lineage.record(
                    "gate", gate.name, "rtl2gds", "transformed",
                    detail=f"{gate.gate} -> {emitted} cell(s)",
                    design=module.name,
                )
            else:
                lineage.record(
                    "gate", gate.name, "rtl2gds", "dropped",
                    detail=f"no mapping for gate type {gate.gate!r}",
                    design=module.name,
                )

        # Ports become pads on their nets.
        for port in module.ports:
            net = self.name_map.map(port.name)
            self._net_terminals.setdefault(net, []).append(pad_terminal(port.name))

        for net, terminals in sorted(self._net_terminals.items()):
            self.design.add_net(net, terminals)

        conversion = NetlistConversion(
            design=self.design,
            name_map=self.name_map,
            log=self.log,
            decomposed_gates=self.decomposed,
            cells_emitted=self._cell_counter,
        )
        return conversion


def gate_netlist_to_pnr(
    module: Module,
    library: CellLibrary,
    log: Optional[IssueLog] = None,
) -> NetlistConversion:
    """Lower a gate-level HDL module onto a P&R cell library.

    The module must be a pure structural netlist (the output of
    :func:`cadinterop.hdl.synth.synthesize` on combinational logic, with
    initial/testbench constructs stripped).  Gate primitives are mapped to
    cells, decomposing multi-input gates onto the 2-input library.
    """
    return _Lowerer(module, library, log if log is not None else IssueLog()).run()


#: How the sample library's cells read back as HDL gate primitives.
_CELL_TO_GATE: Dict[str, Tuple[str, Tuple[str, ...], str]] = {
    "nand2": ("nand", ("A", "B"), "Y"),
    "inv": ("not", ("A",), "Y"),
}


def pnr_to_gate_netlist(design: PnRDesign, name: str = "") -> Module:
    """Re-derive a simulatable HDL netlist from a lowered P&R design.

    The inverse hand-off, used to *verify* the lowering: simulate the
    original RTL and the re-derived cell netlist under the same stimulus
    and compare — the LVS-style closure of this flow.
    """
    module = Module(name or design.name + "_back")
    # Pads become ports; nets become wires.
    terminal_net: Dict[Tuple[str, str], str] = {}
    for net, terminals in design.nets.items():
        module.add_net(net, "wire")
        for kind, who, pin in terminals:
            if kind == "pad":
                if who not in {p.name for p in module.ports}:
                    module.add_port(who, "inout")
                # Tie the pad name to the net via a buf if names differ.
                if who != net:
                    module.add_gate(GateInst(f"pad${who}", "buf", net, [who]))
            else:
                terminal_net[(who, pin)] = net

    for instance in design.instances.values():
        mapping = _CELL_TO_GATE.get(instance.cell.name)
        if mapping is None:
            raise HDLError(
                f"cell {instance.cell.name!r} has no HDL gate equivalent"
            )
        gate_type, input_pins, output_pin = mapping
        inputs = [terminal_net[(instance.name, pin)] for pin in input_pins]
        output = terminal_net[(instance.name, output_pin)]
        module.add_gate(GateInst(instance.name, gate_type, output, inputs))
    module.validate()
    return module


def strip_testbench(module: Module) -> Module:
    """Copy a module without initial blocks (hardware only)."""
    stripped = Module(module.name)
    for port in module.ports:
        stripped.add_port(port.name, port.direction)
    for name, decl in module.nets.items():
        stripped.add_net(name, decl.kind)
    for assign in module.assigns:
        stripped.add_assign(assign.target, assign.expr, assign.delay)
    for gate in module.gates:
        stripped.add_gate(GateInst(gate.name, gate.gate, gate.output,
                                   list(gate.inputs), gate.delay))
    for block in module.always_blocks:
        stripped.add_always(block.sensitivity, block.body)
    return stripped
