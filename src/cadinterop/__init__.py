"""cadinterop — a working reproduction of the systems described in
"Issues and Answers in CAD Tool Interoperability" (DAC 1996).

Subpackages
-----------
``common``
    Geometry, diagnostics/checklists, name maps, property bags.
``schematic``
    Section 2: schematic migration between vendor dialects.
``hdl``
    Section 3: simulators, synthesis subsets, naming, co-simulation.
``pnr``
    Section 4: floorplanning and the place-and-route backplane.
``workflow``
    Section 5: workflow management engine.
``platform``
    Section 3.4: hardware/software platform transportability.
``core``
    Section 6: the interoperability analysis methodology (tasks,
    scenarios, tool models, data/control-flow analysis, optimization).
"""

__version__ = "1.0.0"

__all__ = [
    "common",
    "schematic",
    "hdl",
    "pnr",
    "workflow",
    "platform",
    "core",
]
