"""Unified observability: tracing, metrics, span-aware logging, exporters.

The paper's Section 6 methodology analyzes *a CAD system in operation* —
task graphs and data/control-flow traces of real tool runs.  This package
gives every pipeline in the reproduction one way to report what it did:

* :mod:`~cadinterop.obs.trace` — hierarchical spans (context manager /
  decorator), contextvar nesting, thread-safe buffering, process-worker
  merge; off by default via a no-op singleton tracer;
* :mod:`~cadinterop.obs.metrics` — counters, gauges, fixed-bucket
  histograms with mergeable plain-dict snapshots;
* :mod:`~cadinterop.obs.lineage` — per-object provenance records at tool
  boundaries (preserved / transformed / approximated / dropped /
  synthesized) with a :class:`~cadinterop.obs.lineage.LossReport`
  aggregator behind ``cadinterop audit``;
* :mod:`~cadinterop.obs.logger` — ``get_logger(name)``, stamping the
  current trace/span ids onto every record;
* :mod:`~cadinterop.obs.export` — JSONL trace files, span-tree and flat
  stats renderers;
* :mod:`~cadinterop.obs.validate` — schema checking for emitted traces
  (``python -m cadinterop.obs.validate``).

The instrumented pipelines are ``schematic.migrate`` (per-stage spans),
``farm`` (scheduler spans merged across workers, cache/stage metrics),
``workflow.engine`` (run/step spans, step counters), and ``hdl``
(elaboration/simulation/co-simulation spans, event counters).  Drive them
from the shell via ``cadinterop trace <cmd> ...`` and ``cadinterop stats``.
"""

from cadinterop.obs.export import (
    READABLE_FORMATS,
    TRACE_FORMAT,
    read_trace,
    render_stats,
    render_tree,
    span_stats,
    trace_records,
    write_trace,
)
from cadinterop.obs.lineage import (
    LOSS_VERBS,
    NULL_LINEAGE,
    VERBS,
    LineageRecorder,
    LossReport,
    NullLineage,
    disable_lineage,
    enable_lineage,
    get_lineage,
    set_lineage,
)
from cadinterop.obs.logger import SpanContextFilter, get_logger
from cadinterop.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    disable_metrics,
    enable_metrics,
    get_metrics,
    render_metrics,
    set_metrics,
)
from cadinterop.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_span_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    traced,
)

def __getattr__(name):
    # Lazy so that ``python -m cadinterop.obs.validate`` does not find the
    # submodule pre-imported by its own package (runpy RuntimeWarning).
    if name == "validate_trace":
        from cadinterop.obs.validate import validate_trace

        return validate_trace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LOSS_VERBS",
    "LineageRecorder",
    "LossReport",
    "MetricsRegistry",
    "NULL_LINEAGE",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullLineage",
    "NullMetrics",
    "NullTracer",
    "READABLE_FORMATS",
    "Span",
    "SpanContextFilter",
    "TRACE_FORMAT",
    "Tracer",
    "VERBS",
    "current_span_id",
    "disable_lineage",
    "disable_metrics",
    "disable_tracing",
    "enable_lineage",
    "enable_metrics",
    "enable_tracing",
    "get_lineage",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "read_trace",
    "set_lineage",
    "render_metrics",
    "render_stats",
    "render_tree",
    "set_metrics",
    "set_tracer",
    "span_stats",
    "trace_records",
    "traced",
    "validate_trace",
    "write_trace",
]
