"""Schema validation for emitted JSONL trace files.

Usage: ``python -m cadinterop.obs.validate TRACE.jsonl [...]`` — exits 0
when every file honors the trace contract, 1 otherwise (printing one line
per violation).  CI runs this against a trace produced by
``cadinterop.cli trace migrate-batch`` so the exporter, the worker span
merge, the lineage recorder, and this schema can never drift apart
silently.

The contract (see :mod:`cadinterop.obs.export`):

* line 1 is a ``meta`` record with a known integer ``format`` (1 or 2)
  and a ``trace_id``;
* every ``span`` record has a unique string ``span_id``, a ``name``,
  numeric ``start``/``seconds`` (``seconds >= 0``), a ``status`` of
  ``ok``/``error``, a ``parent_id`` that is null or resolves to another
  span in the same file, and attributes whose values are JSON primitives
  (spans sanitize at finish time; a list/object attr means a producer
  bypassed that);
* every ``lineage`` record (format 2) has string ``object_kind`` /
  ``object_id`` / ``stage``, a ``verb`` from the closed provenance set,
  a string ``detail``, and a ``span_id`` that is null or resolves to a
  span in the same file;
* every ``metric`` record has a ``name`` and a counter/gauge/histogram
  payload whose fields are mutually consistent (histogram ``counts`` has
  one more entry than ``buckets``; totals add up).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from cadinterop.obs.lineage import VERBS

VALID_STATUS = ("ok", "error")
VALID_METRIC_TYPES = ("counter", "gauge", "histogram")
VALID_FORMATS = (1, 2)

#: JSON-primitive attribute values; anything else should have been
#: sanitized away when the span finished.
_PRIMITIVES = (str, int, float, bool, type(None))


def _check_span(record: Dict[str, Any], line: int, errors: List[str]) -> Optional[str]:
    span_id = record.get("span_id")
    if not isinstance(span_id, str) or not span_id:
        errors.append(f"line {line}: span without a string span_id")
        span_id = None
    if not isinstance(record.get("name"), str) or not record["name"]:
        errors.append(f"line {line}: span without a name")
    for field in ("start", "seconds"):
        if not isinstance(record.get(field), (int, float)):
            errors.append(f"line {line}: span {field!r} is not a number")
    if isinstance(record.get("seconds"), (int, float)) and record["seconds"] < 0:
        errors.append(f"line {line}: span has negative duration")
    if record.get("status") not in VALID_STATUS:
        errors.append(f"line {line}: span status {record.get('status')!r} invalid")
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        errors.append(f"line {line}: span parent_id is neither null nor a string")
    attrs = record.get("attrs")
    if attrs is not None and not isinstance(attrs, dict):
        errors.append(f"line {line}: span attrs is not an object")
    elif isinstance(attrs, dict):
        for key, value in attrs.items():
            if not isinstance(value, _PRIMITIVES):
                errors.append(
                    f"line {line}: span attr {key!r} is not a primitive "
                    f"({type(value).__name__}); sanitize at span finish"
                )
    return span_id


def _check_lineage(record: Dict[str, Any], line: int, errors: List[str]) -> None:
    for field in ("object_kind", "object_id", "stage"):
        if not isinstance(record.get(field), str) or not record[field]:
            errors.append(f"line {line}: lineage record without a string {field}")
    if record.get("verb") not in VERBS:
        errors.append(
            f"line {line}: lineage verb {record.get('verb')!r} invalid "
            f"(expected one of {', '.join(VERBS)})"
        )
    if not isinstance(record.get("detail", ""), str):
        errors.append(f"line {line}: lineage detail is not a string")
    span = record.get("span_id")
    if span is not None and not isinstance(span, str):
        errors.append(f"line {line}: lineage span_id is neither null nor a string")
    for field in ("design", "dialect"):
        value = record.get(field)
        if value is not None and not isinstance(value, str):
            errors.append(f"line {line}: lineage {field} is neither null nor a string")


def _check_metric(record: Dict[str, Any], line: int, errors: List[str]) -> None:
    if not isinstance(record.get("name"), str) or not record["name"]:
        errors.append(f"line {line}: metric without a name")
    kind = record.get("type")
    if kind not in VALID_METRIC_TYPES:
        errors.append(f"line {line}: metric type {kind!r} invalid")
        return
    if kind in ("counter", "gauge"):
        if not isinstance(record.get("value"), (int, float)):
            errors.append(f"line {line}: {kind} value is not a number")
        return
    buckets = record.get("buckets")
    counts = record.get("counts")
    if not isinstance(buckets, list) or not isinstance(counts, list):
        errors.append(f"line {line}: histogram needs buckets and counts lists")
        return
    if len(counts) != len(buckets) + 1:
        errors.append(
            f"line {line}: histogram has {len(counts)} counts for "
            f"{len(buckets)} buckets (want buckets+1)"
        )
    if list(buckets) != sorted(buckets):
        errors.append(f"line {line}: histogram buckets are not sorted")
    if any(not isinstance(c, int) or c < 0 for c in counts):
        errors.append(f"line {line}: histogram counts must be non-negative ints")
    elif record.get("count") != sum(counts):
        errors.append(f"line {line}: histogram count does not equal sum(counts)")


def validate_trace(path) -> List[str]:
    """Every violation in one trace file, as human-readable strings."""
    errors: List[str] = []
    span_ids: List[Optional[str]] = []
    parents: List[tuple] = []
    lineage_links: List[tuple] = []
    metric_names: List[str] = []
    saw_meta = False
    line = 0
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    with handle:
        for line, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                errors.append(f"line {line}: invalid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                errors.append(f"line {line}: record is not an object")
                continue
            kind = record.get("record")
            if kind == "meta":
                if saw_meta:
                    errors.append(f"line {line}: duplicate meta record")
                elif line != 1 and not errors:
                    errors.append(f"line {line}: meta record is not first")
                saw_meta = True
                version = record.get("format")
                if not isinstance(version, int):
                    errors.append(f"line {line}: meta record without integer format")
                elif version not in VALID_FORMATS:
                    errors.append(
                        f"line {line}: unknown trace format {version} "
                        f"(expected one of {VALID_FORMATS})"
                    )
                if not isinstance(record.get("trace_id"), str):
                    errors.append(f"line {line}: meta record without a trace_id")
            elif kind == "span":
                span_id = _check_span(record, line, errors)
                if span_id is not None:
                    span_ids.append(span_id)
                parents.append((line, record.get("parent_id")))
            elif kind == "lineage":
                _check_lineage(record, line, errors)
                lineage_links.append((line, record.get("span_id")))
            elif kind == "metric":
                _check_metric(record, line, errors)
                if isinstance(record.get("name"), str):
                    metric_names.append(record["name"])
            else:
                errors.append(f"line {line}: unknown record type {kind!r}")
    if line == 0:
        errors.append("file is empty")
    if not saw_meta:
        errors.append("no meta record")
    if not span_ids:
        errors.append("trace contains no spans")
    known = set(span_ids)
    if len(known) != len(span_ids):
        errors.append("duplicate span ids")
    for at_line, parent in parents:
        if isinstance(parent, str) and parent not in known:
            errors.append(f"line {at_line}: parent_id {parent!r} not in this trace")
    for at_line, span in lineage_links:
        if isinstance(span, str) and span not in known:
            errors.append(
                f"line {at_line}: lineage span_id {span!r} not in this trace"
            )
    if len(set(metric_names)) != len(metric_names):
        errors.append("duplicate metric names")
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m cadinterop.obs.validate",
        description="Validate JSONL trace files emitted by cadinterop.obs",
    )
    parser.add_argument("files", nargs="+", help="trace files to validate")
    args = parser.parse_args(argv)
    failed = False
    for path in args.files:
        errors = validate_trace(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            from cadinterop.obs.export import read_trace

            data = read_trace(path)
            print(
                f"{path}: OK — {len(data['spans'])} spans, "
                f"{len(data['lineage'])} lineage records, "
                f"{len(data['metrics'])} metrics, trace {data['meta'].get('trace_id')}"
            )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
