"""Exporters for traces and metrics: JSONL file, span tree, stats tables.

One trace file is JSON Lines: a ``meta`` record first, then one ``span``
record per finished span, one ``lineage`` record per provenance event
(format 2), then one ``metric`` record per instrument.  Everything is
primitives, so any log pipeline (or ``cadinterop stats``/``audit``) can
consume it; :mod:`cadinterop.obs.validate` checks the contract.

Format history:

* **1** — meta + span + metric records.
* **2** — adds ``lineage`` records (:mod:`cadinterop.obs.lineage`); span
  attributes are sanitized to primitives at span-finish time, so the
  writer no longer stringifies values on the way out.  Format-1 files
  still read (their ``lineage`` list is simply empty).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from cadinterop.obs.metrics import render_metrics

#: Format version stamped into every trace file's meta record.
TRACE_FORMAT = 2

#: Format versions :func:`read_trace` knows how to parse.
READABLE_FORMATS = (1, 2)


def trace_records(
    spans: Iterable[Dict[str, Any]],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    trace_id: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
    lineage: Optional[Iterable[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """The record stream a trace file is made of (meta, spans, lineage,
    metrics)."""
    records: List[Dict[str, Any]] = [
        {"record": "meta", "format": TRACE_FORMAT, "trace_id": trace_id or "",
         **(meta or {})}
    ]
    for span in spans:
        records.append({"record": "span", **span})
    for entry in (lineage or ()):
        records.append({"record": "lineage", **entry})
    for name, data in sorted((metrics or {}).items()):
        records.append({"record": "metric", "name": name, **data})
    return records


def write_trace(
    path,
    spans: Iterable[Dict[str, Any]],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
    trace_id: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
    lineage: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write a JSONL trace file; returns the number of records written.

    Records must already be primitives (spans sanitize their attributes at
    finish time) — a non-serializable value raises instead of being
    silently stringified.
    """
    records = trace_records(spans, metrics, trace_id, meta, lineage)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def read_trace(path) -> Dict[str, Any]:
    """Parse a JSONL trace file into ``{"meta", "spans", "lineage",
    "metrics"}``.

    Reads every format in :data:`READABLE_FORMATS` (format-1 files simply
    have no lineage records); raises :class:`ValueError` naming the line
    for truncated/corrupt JSON, unknown record types, and meta records
    declaring a format this reader does not know.
    """
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    lineage: List[Dict[str, Any]] = []
    metrics: Dict[str, Dict[str, Any]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"line {number}: invalid JSON ({exc.msg}) — truncated file?"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(f"line {number}: record is not an object")
            kind = record.pop("record", None)
            if kind == "meta":
                version = record.get("format")
                if version not in READABLE_FORMATS:
                    raise ValueError(
                        f"line {number}: unsupported trace format {version!r} "
                        f"(this reader understands {READABLE_FORMATS})"
                    )
                meta = record
            elif kind == "span":
                spans.append(record)
            elif kind == "lineage":
                lineage.append(record)
            elif kind == "metric":
                metrics[record.pop("name")] = record
            else:
                raise ValueError(f"line {number}: unknown trace record type {kind!r}")
    spans.sort(key=lambda span: span.get("start", 0.0))
    return {"meta": meta, "spans": spans, "lineage": lineage, "metrics": metrics}


# ---------------------------------------------------------------------------
# Human-readable renderers
# ---------------------------------------------------------------------------


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    return "  {" + inner + "}"


def render_tree(spans: List[Dict[str, Any]], max_spans: int = 500) -> str:
    """The trace as an indented tree, children ordered by start time."""
    if not spans:
        return "(empty trace)"
    ordered = sorted(spans, key=lambda span: span.get("start", 0.0))
    known = {span["span_id"] for span in ordered}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in ordered:
        parent = span.get("parent_id")
        if parent not in known:
            parent = None  # orphan (e.g. a truncated file): promote to root
        children.setdefault(parent, []).append(span)

    lines: List[str] = []
    truncated = [False]

    def walk(span: Dict[str, Any], prefix: str, last: bool) -> None:
        if len(lines) >= max_spans:
            truncated[0] = True
            return
        branch = "└─ " if last else "├─ "
        status = "" if span.get("status", "ok") == "ok" else " [ERROR]"
        lines.append(
            f"{prefix}{branch}{span['name']} {span.get('seconds', 0.0) * 1e3:.2f} ms"
            f"{status}{_format_attrs(span.get('attrs') or {})}"
        )
        kids = children.get(span["span_id"], [])
        extend = "   " if last else "│  "
        for index, kid in enumerate(kids):
            walk(kid, prefix + extend, index == len(kids) - 1)

    roots = children.get(None, [])
    total = sum(span.get("seconds", 0.0) for span in roots)
    lines.append(f"trace: {len(ordered)} spans, {total * 1e3:.1f} ms in root spans")
    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1)
    if truncated[0]:
        lines.append(f"... truncated at {max_spans} spans")
    return "\n".join(lines)


def span_stats(spans: Iterable[Dict[str, Any]]) -> Dict[str, Tuple[int, float]]:
    """Aggregate spans by name -> (calls, total seconds)."""
    stats: Dict[str, Tuple[int, float]] = {}
    for span in spans:
        calls, seconds = stats.get(span["name"], (0, 0.0))
        stats[span["name"]] = (calls + 1, seconds + span.get("seconds", 0.0))
    return stats


def render_stats(
    spans: List[Dict[str, Any]],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
) -> str:
    """Flat stats: per-span-name aggregates plus the metrics table."""
    lines = [f"{'span':26} {'calls':>6} {'total ms':>10} {'mean ms':>9}  share"]
    stats = span_stats(spans)
    grand_total = sum(seconds for _calls, seconds in stats.values()) or 1.0
    for name, (calls, seconds) in sorted(stats.items(), key=lambda kv: -kv[1][1]):
        lines.append(
            f"{name:26} {calls:6d} {seconds * 1e3:10.2f} "
            f"{seconds * 1e3 / calls:9.3f}  {seconds / grand_total:5.1%}"
        )
    if metrics:
        lines.append("")
        lines.append(render_metrics(metrics))
    return "\n".join(lines)
