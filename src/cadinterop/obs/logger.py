"""Span-aware logging: one logger factory for every cadinterop module.

:func:`get_logger` replaces ad-hoc per-module ``logging`` setup.  Every
record carries ``trace_id`` and ``span_id`` fields (``-`` when tracing is
off), so a log line emitted deep inside a migration stage can be joined
against the JSONL trace of the same run.

Configuration happens once, on the ``cadinterop`` root logger: a stderr
handler whose level comes from ``CADINTEROP_LOG`` (default ``WARNING``,
so instrumented modules stay silent in tests and benchmarks).
"""

from __future__ import annotations

import logging
import os

from cadinterop.obs.trace import current_span_id, get_tracer

#: Root of every logger this factory hands out.
ROOT_LOGGER = "cadinterop"

LOG_FORMAT = "%(levelname)s %(name)s [%(trace_id)s/%(span_id)s] %(message)s"

_configured = False


class SpanContextFilter(logging.Filter):
    """Stamps the current trace/span ids onto every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        tracer = get_tracer()
        record.trace_id = tracer.trace_id if tracer.enabled else "-"
        record.span_id = current_span_id() or "-"
        return True


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(ROOT_LOGGER)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        handler.addFilter(SpanContextFilter())
        root.addHandler(handler)
        root.setLevel(os.environ.get("CADINTEROP_LOG", "WARNING").upper())
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """A ``cadinterop.<name>`` logger whose records carry span context."""
    _ensure_configured()
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    logger = logging.getLogger(name)
    # The filter rides on the logger too (not just the root handler), so
    # user-attached handlers and caplog-style captures see span ids.
    if not any(isinstance(f, SpanContextFilter) for f in logger.filters):
        logger.addFilter(SpanContextFilter())
    return logger
