"""Per-object provenance: what happened to design data at tool boundaries.

The paper's central claim is that interoperability failures are
*information losses* at tool boundaries — grid snapping, bus-syntax
rewrites, dropped physical intents, cosim value coercions.  Spans
(:mod:`cadinterop.obs.trace`) say where *time* went; this module says
where *design data* went: every boundary crossing emits one lineage
record per affected object,

``(object_kind, object_id, stage, verb, detail, span_id)``

where ``verb`` is one of :data:`VERBS`:

* ``preserved`` — crossed the boundary untouched;
* ``transformed`` — rewritten losslessly (bus-syntax rename, symbol swap);
* ``approximated`` — semantics weakened (off-grid snap, naive value
  coercion, derived-vs-declared pin access);
* ``dropped`` — the target cannot express it; the object did not cross;
* ``synthesized`` — created at the boundary (connectors, pads, decomposition
  nets) with no source-side original.

Records link to the innermost open trace span through the same contextvar
the tracer uses, so a JSONL trace file (format 2) carries both trees and
``cadinterop audit`` can answer *which objects were transformed,
approximated, or dropped, by which stage, and why*.  Like the tracer, the
recorder is **off by default** (:data:`NULL_LINEAGE`), buffers thread-safely,
and merges across process workers via :meth:`LineageRecorder.drain` /
:meth:`LineageRecorder.adopt`.

Ambient attribution — which design and which dialect pair a record belongs
to — travels through :meth:`LineageRecorder.context`, so deep helpers
(e.g. the grid snapper) need not thread design names through their
signatures.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from cadinterop.obs.metrics import get_metrics
from cadinterop.obs.trace import current_span_id

#: The closed provenance verb set; the validator rejects anything else.
VERBS: Tuple[str, ...] = (
    "preserved", "transformed", "approximated", "dropped", "synthesized"
)

#: Verbs that count as information loss in a :class:`LossReport`.
LOSS_VERBS: Tuple[str, ...] = ("approximated", "dropped")

#: Ambient attribution fields (design, dialect) merged into each record.
_CONTEXT: ContextVar[Tuple[Optional[str], Optional[str]]] = ContextVar(
    "cadinterop_obs_lineage_ctx", default=(None, None)
)


class LineageRecorder:
    """Collects lineage records; thread-safe; mergeable across processes."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []

    # -- recording -------------------------------------------------------

    def record(
        self,
        object_kind: str,
        object_id: str,
        stage: str,
        verb: str,
        detail: str = "",
        design: Optional[str] = None,
        dialect: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Emit one provenance record, linked to the active trace span."""
        if verb not in VERBS:
            raise ValueError(f"unknown lineage verb {verb!r}; expected one of {VERBS}")
        ambient_design, ambient_dialect = _CONTEXT.get()
        record = {
            "object_kind": object_kind,
            "object_id": object_id,
            "stage": stage,
            "verb": verb,
            "detail": detail,
            "span_id": current_span_id(),
            "design": design if design is not None else ambient_design,
            "dialect": dialect if dialect is not None else ambient_dialect,
        }
        with self._lock:
            self._records.append(record)
        get_metrics().counter(f"lineage.{verb}").inc()
        return record

    @contextmanager
    def context(
        self, design: Optional[str] = None, dialect: Optional[str] = None
    ) -> Iterator[None]:
        """Set ambient attribution for every record emitted inside."""
        current_design, current_dialect = _CONTEXT.get()
        token = _CONTEXT.set(
            (
                design if design is not None else current_design,
                dialect if dialect is not None else current_dialect,
            )
        )
        try:
            yield
        finally:
            _CONTEXT.reset(token)

    # -- collection ------------------------------------------------------

    def adopt(self, records: Iterable[Dict[str, Any]]) -> None:
        """Merge records exported by another recorder (a process worker)."""
        with self._lock:
            self._records.extend(records)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every buffered record (workers ship these back)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of every record, in emission/adoption order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _NullContext:
    """Reusable no-op context manager (cheaper than contextlib.nullcontext)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullLineage:
    """The do-nothing recorder installed while lineage is disabled."""

    enabled = False

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def context(self, design=None, dialect=None) -> _NullContext:
        return _NULL_CONTEXT

    def adopt(self, records) -> None:
        pass

    def drain(self) -> List[Dict[str, Any]]:
        return []

    def records(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


NULL_LINEAGE = NullLineage()

_LINEAGE = NULL_LINEAGE


def get_lineage():
    """The installed recorder — :data:`NULL_LINEAGE` unless enabled."""
    return _LINEAGE


def set_lineage(recorder):
    global _LINEAGE
    _LINEAGE = recorder
    return recorder


def enable_lineage() -> LineageRecorder:
    """Install (and return) a fresh real lineage recorder."""
    return set_lineage(LineageRecorder())


def disable_lineage() -> None:
    """Restore the no-op recorder."""
    set_lineage(NULL_LINEAGE)


# ---------------------------------------------------------------------------
# Loss aggregation
# ---------------------------------------------------------------------------


def _verb_row() -> Dict[str, int]:
    return {verb: 0 for verb in VERBS}


class LossReport:
    """Lineage records rolled up per stage, per design, and per dialect.

    Built from raw record dicts (a recorder snapshot or the ``lineage``
    list of a parsed trace file); answers the fleet-level questions the
    paper's data-flow analysis asks: how much was lost, where, and for
    which designs and dialect pairs.
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_verb: Dict[str, int] = _verb_row()
        #: stage -> verb -> count (the per-stage loss matrix).
        self.matrix: Dict[str, Dict[str, int]] = {}
        #: design -> verb -> count.
        self.designs: Dict[str, Dict[str, int]] = {}
        #: dialect pair -> verb -> count.
        self.dialects: Dict[str, Dict[str, int]] = {}
        self.unlinked = 0  # records without a span_id

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]) -> "LossReport":
        report = cls()
        for record in records:
            report.add(record)
        return report

    def add(self, record: Dict[str, Any]) -> None:
        verb = record.get("verb")
        if verb not in VERBS:
            raise ValueError(f"lineage record with unknown verb {verb!r}")
        self.total += 1
        self.by_verb[verb] += 1
        stage = record.get("stage") or "?"
        self.matrix.setdefault(stage, _verb_row())[verb] += 1
        design = record.get("design")
        if design:
            self.designs.setdefault(design, _verb_row())[verb] += 1
        dialect = record.get("dialect")
        if dialect:
            self.dialects.setdefault(dialect, _verb_row())[verb] += 1
        if not record.get("span_id"):
            self.unlinked += 1

    # -- queries ---------------------------------------------------------

    @property
    def losses(self) -> int:
        """Records whose verb is a loss (approximated or dropped)."""
        return sum(self.by_verb[verb] for verb in LOSS_VERBS)

    def stage_count(self, stage: str, verb: str) -> int:
        return self.matrix.get(stage, {}).get(verb, 0)

    def top_lossy_designs(self, limit: int = 5) -> List[Tuple[str, int]]:
        """Designs ordered by loss count, worst first (losers only)."""
        ranked = sorted(
            (
                (name, sum(row[verb] for verb in LOSS_VERBS))
                for name, row in self.designs.items()
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return [(name, count) for name, count in ranked if count][:limit]

    def merge(self, other: "LossReport") -> None:
        self.total += other.total
        self.unlinked += other.unlinked
        for verb, count in other.by_verb.items():
            self.by_verb[verb] += count
        for table, source in (
            (self.matrix, other.matrix),
            (self.designs, other.designs),
            (self.dialects, other.dialects),
        ):
            for key, row in source.items():
                target = table.setdefault(key, _verb_row())
                for verb, count in row.items():
                    target[verb] += count

    # -- rendering -------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict export (JSON-safe)."""
        return {
            "total": self.total,
            "losses": self.losses,
            "unlinked": self.unlinked,
            "by_verb": dict(self.by_verb),
            "matrix": {stage: dict(row) for stage, row in self.matrix.items()},
            "designs": {name: dict(row) for name, row in self.designs.items()},
            "dialects": {pair: dict(row) for pair, row in self.dialects.items()},
        }

    def summary(self) -> str:
        verbs = ", ".join(
            f"{count} {verb}" for verb, count in self.by_verb.items() if count
        )
        return (
            f"lineage: {self.total} records, {self.losses} losses"
            + (f" ({verbs})" if verbs else "")
        )

    def _matrix_lines(
        self, table: Dict[str, Dict[str, int]], label: str
    ) -> List[str]:
        width = max([len(label)] + [len(key) for key in table]) + 1
        header = f"{label:{width}}" + "".join(f"{verb:>13}" for verb in VERBS)
        lines = [header]
        for key in sorted(table):
            row = table[key]
            lines.append(
                f"{key:{width}}" + "".join(f"{row[verb]:13d}" for verb in VERBS)
            )
        return lines

    def render(self, top_designs: int = 5) -> str:
        """The human-readable audit report: matrices and worst offenders."""
        if not self.total:
            return "(no lineage records)"
        lines = [self.summary(), ""]
        lines.extend(self._matrix_lines(self.matrix, "stage"))
        if self.dialects:
            lines.append("")
            lines.extend(self._matrix_lines(self.dialects, "dialect"))
        lossy = self.top_lossy_designs(top_designs)
        if lossy:
            lines.append("")
            lines.append("top lossy designs:")
            for name, count in lossy:
                row = self.designs[name]
                detail = "  ".join(
                    f"{verb}={row[verb]}" for verb in LOSS_VERBS if row[verb]
                )
                lines.append(f"  {name:28} {count:4d} losses  ({detail})")
        if self.unlinked:
            lines.append("")
            lines.append(f"warning: {self.unlinked} record(s) without a span link")
        return "\n".join(lines)
