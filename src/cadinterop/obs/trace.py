"""Hierarchical span tracing for the CAD pipelines.

The paper's Section 6 methodology is *analysis of a CAD system in
operation*: task graphs and data/control-flow traces of real tool runs.
This module is the runtime half of that analysis — a tracer that records
what the pipelines actually did, as a tree of timed **spans**:

* a span is one timed operation (``migrate:scaling``, ``farm:run``,
  ``workflow:step``) with attributes, a status, and a parent link;
* the *current* span is tracked through :mod:`contextvars`, so nesting
  works across ``with`` blocks, decorated calls, and (because each worker
  attaches or re-roots explicitly) thread and process pools;
* finished spans buffer inside the :class:`Tracer` (a lock guards the
  buffer, so thread workers share one tracer); process workers run their
  own tracer and ship span dicts back for :meth:`Tracer.adopt`.

Tracing is **off by default** and zero-cost when off: the module-level
tracer is the :data:`NULL_TRACER` singleton whose ``span()`` hands back
one shared no-op span — call sites pay a dict build and two method calls,
nothing else.  :func:`enable_tracing` swaps in a real :class:`Tracer`.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterable, List, Optional

#: The span id the *next* span in this execution context will parent to.
_CURRENT_ID: ContextVar[Optional[str]] = ContextVar("cadinterop_obs_span", default=None)

_IDS = itertools.count(1)

#: Sentinel distinguishing "no parent given" from "explicitly parentless".
_UNSET = object()

#: Attribute value types that survive span finish untouched; anything else
#: is stringified *at finish time* so the exported trace never depends on
#: ``json.dumps`` fallbacks silently rewriting attributes on the way out.
_PRIMITIVE_ATTRS = (str, int, float, bool, type(None))


def sanitize_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce a span's attributes to JSON primitives (non-str keys and
    non-primitive values become their ``str()`` forms, explicitly)."""
    clean: Dict[str, Any] = {}
    for key, value in attrs.items():
        if not isinstance(key, str):
            key = str(key)
        clean[key] = value if isinstance(value, _PRIMITIVE_ATTRS) else str(value)
    return clean


def _new_span_id() -> str:
    """Process-unique monotonic id (pid-prefixed so pools cannot collide)."""
    return f"{os.getpid():x}-{next(_IDS):x}"


def current_span_id() -> Optional[str]:
    """Id of the innermost open span in this context, or None."""
    return _CURRENT_ID.get()


class Span:
    """One timed operation; a context manager that tracks nesting."""

    __slots__ = (
        "name", "span_id", "parent_id", "start", "seconds", "status",
        "attrs", "_tracer", "_t0", "_token",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start = 0.0
        self.seconds = 0.0
        self.status = "ok"
        self.attrs = attrs
        self._tracer = tracer
        self._t0 = 0.0
        self._token = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start = time.time()
        self._t0 = time.perf_counter()
        self._token = _CURRENT_ID.set(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _CURRENT_ID.reset(self._token)
            self._token = None
        self._tracer._finish(self)
        return False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "seconds": self.seconds,
            "status": self.status,
            "attrs": sanitize_attrs(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    enabled = False
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    name = ""
    seconds = 0.0
    status = "ok"

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; thread-safe; mergeable across processes."""

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._lock = threading.Lock()
        self._finished: List[Dict[str, Any]] = []

    # -- span creation ---------------------------------------------------

    def span(self, name: str, parent: Any = _UNSET, **attrs: Any) -> Span:
        """Open a span (use as a context manager).

        ``parent`` defaults to the context's current span; pass a span, a
        span id, or None to override (None makes an explicit root).
        """
        if parent is _UNSET:
            parent_id = _CURRENT_ID.get()
        elif isinstance(parent, (Span, _NullSpan)):
            parent_id = parent.span_id
        else:
            parent_id = parent
        return Span(self, name, parent_id, attrs)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span.as_dict())

    # -- explicit context plumbing (for worker threads) -------------------

    def attach(self, span_or_id: Any):
        """Make ``span_or_id`` the ambient parent in this context; returns
        a token for :meth:`detach`.  Thread workers call this so spans they
        open parent to the submitting side's span."""
        span_id = (
            span_or_id.span_id
            if isinstance(span_or_id, (Span, _NullSpan))
            else span_or_id
        )
        return _CURRENT_ID.set(span_id)

    def detach(self, token) -> None:
        _CURRENT_ID.reset(token)

    # -- collection ------------------------------------------------------

    def adopt(
        self,
        span_dicts: Iterable[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> None:
        """Merge spans exported by another tracer (e.g. a process worker);
        orphan roots are re-parented under ``parent_id``."""
        with self._lock:
            for record in span_dicts:
                if parent_id is not None and record.get("parent_id") is None:
                    record = dict(record, parent_id=parent_id)
                self._finished.append(record)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every buffered span (workers ship these back)."""
        with self._lock:
            spans, self._finished = self._finished, []
        return spans

    def spans(self) -> List[Dict[str, Any]]:
        """Snapshot of every finished span, ordered by start time."""
        with self._lock:
            spans = list(self._finished)
        return sorted(spans, key=lambda s: s.get("start", 0.0))

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


class NullTracer:
    """The do-nothing tracer installed while tracing is disabled."""

    enabled = False
    trace_id: Optional[str] = None

    def span(self, name: str, parent: Any = _UNSET, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def attach(self, span_or_id: Any):
        return None

    def detach(self, token) -> None:
        pass

    def adopt(self, span_dicts, parent_id=None) -> None:
        pass

    def drain(self) -> List[Dict[str, Any]]:
        return []

    def spans(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

_TRACER = NULL_TRACER


def get_tracer():
    """The installed tracer — :data:`NULL_TRACER` unless tracing is on."""
    return _TRACER


def set_tracer(tracer):
    global _TRACER
    _TRACER = tracer
    return tracer


def enable_tracing(trace_id: Optional[str] = None) -> Tracer:
    """Install (and return) a fresh real tracer."""
    return set_tracer(Tracer(trace_id))


def disable_tracing() -> None:
    """Restore the no-op tracer."""
    set_tracer(NULL_TRACER)


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator: run the function under a span (named after it by default)."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with get_tracer().span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
