"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Complements :mod:`cadinterop.obs.trace`: spans say *where time went on
this run*, metrics say *how often and how much* across runs — cache hit
rates, stage latency distributions, simulator event counts.

Design rules:

* **Fixed bucket boundaries.**  Histograms declare their boundaries up
  front (default: a latency ladder from 1 ms to 10 s), so snapshots from
  different workers and different runs merge by adding counts — no
  rebinning, no quantile sketches.
* **Mergeable snapshots.**  ``registry.snapshot()`` is plain dicts of
  primitives (JSON- and pickle-safe); ``registry.merge(snapshot)`` folds
  one registry's traffic into another, which is how per-run and
  per-worker registries roll up.
* **Zero-cost when off.**  The module-level registry defaults to
  :data:`NULL_METRICS`, whose instruments are one shared no-op object.
  Components that must always count (e.g. the farm's result cache) own a
  private real :class:`MetricsRegistry` instead of the global one.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries (seconds): a wall-clock latency ladder.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)


class _Instrument:
    """Shared pickling rule: the registry lock never crosses the boundary
    (the registry's ``__setstate__`` re-binds a fresh one)."""

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_lock"] = None
        return state


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        self.inc(data["value"])


class Gauge(_Instrument):
    """Last-written value (e.g. corpus size, worker count).

    Every ``set`` stamps a monotonic sequence (``time.monotonic_ns``,
    strictly increased within the process) and snapshots carry it, so
    :meth:`merge` keeps the *newest* write instead of the last snapshot
    merged — worker roll-up no longer depends on pool join order.
    """

    kind = "gauge"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self.seq = 0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.seq = max(time.monotonic_ns(), self.seq + 1)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "seq": self.seq}

    def merge(self, data: Dict[str, Any]) -> None:
        # Pre-seq snapshots (format-1 trace files) carry no stamp; treat
        # them as "as old as possible" so any local write wins over them.
        seq = data.get("seq", 0)
        with self._lock:
            if seq >= self.seq:
                self.value = data["value"]
                self.seq = seq


class Histogram(_Instrument):
    """Distribution with fixed bucket boundaries (plus an overflow bucket)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket boundary")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect_right(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, data: Dict[str, Any]) -> None:
        if tuple(data["buckets"]) != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket boundaries differ"
            )
        with self._lock:
            for index, count in enumerate(data["counts"]):
                self.counts[index] += count
            self.sum += data["sum"]
            self.count += data["count"]


class MetricsRegistry:
    """Named instruments, created on first use; snapshot/merge for roll-up."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    # The lock cannot cross a pickle boundary (reports and snapshots may);
    # a freshly unpickled registry just grows a new one.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
        for instrument in self._instruments.values():
            instrument._lock = self._lock

    def _get(self, name: str, factory) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        instrument = self._get(name, lambda: Counter(name, self._lock))
        if instrument.kind != "counter":
            raise TypeError(f"{name!r} is a {instrument.kind}, not a counter")
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get(name, lambda: Gauge(name, self._lock))
        if instrument.kind != "gauge":
            raise TypeError(f"{name!r} is a {instrument.kind}, not a gauge")
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._get(name, lambda: Histogram(name, self._lock, buckets))
        if instrument.kind != "histogram":
            raise TypeError(f"{name!r} is a {instrument.kind}, not a histogram")
        return instrument

    def instruments(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict export of every instrument (JSON/pickle-safe)."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self.instruments().items())
        }

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's snapshot into this one."""
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).merge(data)
            elif kind == "gauge":
                self.gauge(name).merge(data)
            elif kind == "histogram":
                self.histogram(name, buckets=data["buckets"]).merge(data)
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")

    def render_table(self) -> str:
        return render_metrics(self.snapshot())


def render_metrics(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Human-readable flat table of a metrics snapshot."""
    lines = [f"{'metric':40} {'type':10} value"]
    for name, data in sorted(snapshot.items()):
        kind = data.get("type", "?")
        if kind == "histogram":
            count = data.get("count", 0)
            total = data.get("sum", 0.0)
            mean = total / count if count else 0.0
            value = f"n={count} sum={total * 1e3:.2f}ms mean={mean * 1e3:.3f}ms"
        else:
            value = f"{data.get('value', 0):g}"
        lines.append(f"{name:40} {kind:10} {value}")
    return "\n".join(lines)


class _NullInstrument:
    """One shared object standing in for every disabled instrument."""

    __slots__ = ()
    kind = "null"
    value = 0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The do-nothing registry installed while metrics are disabled."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> Dict[str, Any]:
        return {}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def merge(self, snapshot) -> None:
        pass

    def render_table(self) -> str:
        return render_metrics({})


NULL_METRICS = NullMetrics()

_METRICS = NULL_METRICS


def get_metrics():
    """The installed registry — :data:`NULL_METRICS` unless enabled."""
    return _METRICS


def set_metrics(registry):
    global _METRICS
    _METRICS = registry
    return registry


def enable_metrics() -> MetricsRegistry:
    """Install (and return) a fresh real metrics registry."""
    return set_metrics(MetricsRegistry())


def disable_metrics() -> None:
    """Restore the no-op registry."""
    set_metrics(NULL_METRICS)
