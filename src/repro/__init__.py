"""Compatibility alias: ``repro`` re-exports the ``cadinterop`` package."""

from cadinterop import *  # noqa: F401,F403
from cadinterop import __version__  # noqa: F401
