"""E18 — compiled kernel speedup on the race-ensemble workload.

The closure-compiled kernel exists for one reason: ensemble runs
(``detect_races``, co-simulation sweeps) execute the *same model* many
times, and re-elaborating plus tree-walking per run repeats work whose
result cannot change.  Rows: interpreter vs compiled wall time and
activations/second on a personality-ensemble workload over a pipeline
with combinational clouds and deliberate write races.  Expected shape:
compiled >= 3x interpreter throughput, identical race verdicts, and obs
traces showing exactly one ``hdl:compile`` span serving all runs.
"""

import time

from cadinterop.hdl.compile import compile_calls
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.races import detect_races
from cadinterop.obs import disable_tracing, enable_tracing

MIN_SPEEDUP = 3.0
REPEATS = 3


def build_workload(stages=10, toggles=40):
    """A pipeline with per-stage combinational clouds and two racy writers.

    Deep-ish expressions are the representative case: real models compute
    something between flops, and expression evaluation is exactly where
    tree-walking interpretation pays per activation.
    """
    lines = ["module ensemble_bench;", "  reg clk; reg d0;"]
    for i in range(1, stages + 1):
        lines.append(f"  reg q{i};")
        lines.append(f"  wire c{i};")
    lines.append("  initial begin clk = 0; d0 = 0; end")
    body = []
    for k in range(toggles):
        body.append(f"#5 clk = {k % 2 ^ 1};")
        if k % 3 == 0:
            body.append(f"d0 = {k % 2};")
    lines.append("  initial begin " + " ".join(body) + " end")
    for i in range(1, stages + 1):
        src = "d0" if i == 1 else f"q{i-1}"
        lines.append(
            f"  assign c{i} = ({src} ^ clk) | "
            f"(~{src} & (clk ^ {src})) ^ ({src} & ~clk);"
        )
        lines.append(f"  always @(posedge clk) q{i} = c{i} ^ {src};")
    lines.append("  reg r;")
    lines.append("  always @(posedge clk) r = q1;")
    lines.append(f"  always @(posedge clk) r = q{stages};")
    lines.append("endmodule")
    return parse_module("\n".join(lines))


def _time_ensemble(module, kernel, rounds):
    detect_races(module, until=10_000, kernel=kernel)  # warmup
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(rounds):
            report = detect_races(module, until=10_000, kernel=kernel)
        best = min(best, time.perf_counter() - start)
    return best, report


class TestKernelSpeedup:
    def test_compiled_kernel_beats_interpreter_3x(self, bench_scale):
        module = build_workload()
        rounds = 4 * bench_scale
        interp_time, interp_report = _time_ensemble(module, "interp", rounds)
        compiled_time, compiled_report = _time_ensemble(
            module, "compiled", rounds
        )
        speedup = interp_time / compiled_time

        # Same verdicts first — a fast wrong kernel is worthless.
        assert interp_report.has_race and compiled_report.has_race
        assert interp_report.racy_signals == compiled_report.racy_signals

        rows = [
            ("interp", f"{interp_time * 1000:.1f}ms"),
            ("compiled", f"{compiled_time * 1000:.1f}ms"),
            ("speedup", f"{speedup:.2f}x"),
        ]
        print(f"\nE18 rows: {rows}")
        assert speedup >= MIN_SPEEDUP, (
            f"compiled kernel only {speedup:.2f}x over interpreter "
            f"(interp {interp_time * 1000:.1f}ms, "
            f"compiled {compiled_time * 1000:.1f}ms)"
        )

    def test_activation_rates_and_counts_match(self, bench_scale):
        # Activations are the unit of simulation work; both kernels must
        # do the same number of them (same schedule), so the speedup is
        # pure per-activation cost, not work skipped.
        from cadinterop.hdl.personalities import DEFAULT_ENSEMBLE, run_personality
        from cadinterop.hdl.compile import compile_model

        module = build_workload()
        compiled = compile_model(module)
        rates = {}
        for kernel in ("interp", "compiled"):
            shared = compiled if kernel == "compiled" else None
            total = 0
            start = time.perf_counter()
            for _ in range(2 * bench_scale):
                for personality in DEFAULT_ENSEMBLE:
                    sim = run_personality(
                        module, personality, until=10_000,
                        kernel=kernel, compiled=shared,
                    )
                    total += sim.activations
            elapsed = time.perf_counter() - start
            rates[kernel] = (total, total / elapsed)
        interp_total, interp_rate = rates["interp"]
        compiled_total, compiled_rate = rates["compiled"]
        assert interp_total == compiled_total
        print(
            f"\nE18 rates: interp {interp_rate:,.0f} acts/s, "
            f"compiled {compiled_rate:,.0f} acts/s"
        )
        assert compiled_rate > interp_rate


class TestCompileOnceObservability:
    def test_trace_shows_one_compile_serving_all_runs(self):
        module = build_workload(stages=4, toggles=10)
        tracer = enable_tracing()
        try:
            before = compile_calls()
            detect_races(module, until=1000, kernel="compiled")
            spans = tracer.spans()
        finally:
            disable_tracing()
        assert compile_calls() == before + 1
        compile_spans = [s for s in spans if s["name"] == "hdl:compile"]
        sim_spans = [s for s in spans if s["name"] == "hdl:sim"]
        assert len(compile_spans) == 1
        assert len(sim_spans) >= 4  # one per personality in the ensemble
        assert all(s["attrs"]["kernel"] == "compiled" for s in sim_spans)
