"""E11 — interconnect topology control and coupling capacitance.

Paper Section 4: coupling "can be controlled by shortening wire length,
increasing spacing, or even by shielding", but "some tools can not support
these requirements".  Regenerated rows: critical-net coupling under each
tool dialect on the bus-corridor scenario.  Expected shape: a strict
ordering — full rules << width-only << no rules.
"""

import pytest

from cadinterop.pnr.backplane import run_flow
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.dialects import ALL_TOOLS, TOOL_P, TOOL_Q, TOOL_R
from cadinterop.pnr.parasitics import TopologyComparison, extract
from cadinterop.pnr.routing import GridRouter
from cadinterop.pnr.samples import build_bus_scenario


def coupling_under(tech, tool):
    floorplan, design, pads = build_bus_scenario()
    flow = run_flow(tech, floorplan, CellLibrary("none"), design, tool,
                    pad_positions=pads)
    assert flow.routing.failed == []
    return flow.parasitics.coupling_of("crit"), flow


class TestTopologyRows:
    def test_coupling_ordering(self, pnr_tech):
        rows = {}
        for tool in ALL_TOOLS:
            coupling, flow = coupling_under(pnr_tech, tool)
            rows[tool.name] = {
                "coupling_fF": round(coupling, 2),
                "shield_tracks": flow.routing.shield_nodes,
                "rules_dropped": len(flow.dropped),
            }
        print(f"\nE11 rows: {rows}")
        assert (
            rows["toolP"]["coupling_fF"]
            < rows["toolQ"]["coupling_fF"]
            < rows["toolR"]["coupling_fF"]
        )
        assert rows["toolP"]["shield_tracks"] > 0
        assert rows["toolR"]["shield_tracks"] == 0

    def test_victim_improvement_factor(self, pnr_tech):
        controlled, _ = coupling_under(pnr_tech, TOOL_P)
        uncontrolled, _ = coupling_under(pnr_tech, TOOL_R)
        comparison = TopologyComparison(
            controlled_coupling=controlled,
            uncontrolled_coupling=uncontrolled,
            victim="crit",
            controlled_victim_coupling=controlled,
            uncontrolled_victim_coupling=uncontrolled,
        )
        print(f"E11 victim improvement: {comparison.victim_improvement:.1f}x")
        # Order-of-magnitude class improvement from spacing + shields.
        assert comparison.victim_improvement > 5.0

    def test_shield_terminates_field(self, pnr_tech):
        """With shields, the nearest neighbor seen by the victim is the
        grounded shield, not an aggressor."""
        floorplan, design, pads = build_bus_scenario()
        router = GridRouter(pnr_tech, floorplan, pads)
        routing = router.route_design(design)
        report = extract(pnr_tech, routing, router.occupancy)
        crit = report.net("crit")
        assert "aggr0" not in crit.coupling or crit.coupling["aggr0"] < 5.0


class TestRoutingPerformance:
    def test_bench_full_rule_routing(self, benchmark, pnr_tech):
        def run():
            floorplan, design, pads = build_bus_scenario()
            router = GridRouter(pnr_tech, floorplan, pads)
            return router.route_design(design)

        result = benchmark(run)
        assert result.failed == []

    def test_bench_extraction(self, benchmark, pnr_tech):
        floorplan, design, pads = build_bus_scenario()
        router = GridRouter(pnr_tech, floorplan, pads)
        routing = router.route_design(design)
        report = benchmark(lambda: extract(pnr_tech, routing, router.occupancy))
        assert report.total_cap > 0
