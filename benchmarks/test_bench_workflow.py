"""E12 — workflow engine behaviors and overhead.

Paper Section 5.  Regenerated rows: default-vs-explicit status outcomes,
dependency/trigger correctness on a block-level flow, and engine overhead
per step (the integration layer must be cheap relative to the tools).
"""

import pytest

from cadinterop.workflow import (
    FlowTemplate,
    MetricsCollector,
    PythonAction,
    StepDef,
    StepState,
    WorkflowEngine,
)


def build_wide_flow(width=20):
    """A fan-out/fan-in flow: prepare -> N parallel steps -> collect."""
    template = FlowTemplate(f"wide{width}")
    template.add_step(StepDef("prepare", action=PythonAction(lambda api: 0)))
    for index in range(width):
        template.add_step(
            StepDef(f"work{index}", action=PythonAction(lambda api: 0),
                    start_after=("prepare",))
        )
    template.add_step(
        StepDef(
            "collect",
            action=PythonAction(lambda api: 0),
            start_after=tuple(f"work{i}" for i in range(width)),
        )
    )
    return template


class TestPolicyRows:
    def test_default_vs_explicit_rows(self):
        engine = WorkflowEngine()

        def exit_zero(api):
            return 0

        def exit_two(api):
            return 2

        def explicit_ok(api):
            api.set_state(StepState.SUCCEEDED, "log says 0 errors")
            return 2  # exit code would have failed under the default policy

        template = FlowTemplate("policy")
        template.add_step(StepDef("default-zero", action=PythonAction(exit_zero)))
        template.add_step(StepDef("default-two", action=PythonAction(exit_two)))
        template.add_step(
            StepDef("explicit-two", action=PythonAction(explicit_ok), explicit_status=True)
        )
        instance = engine.instantiate(template)
        engine.run(instance)
        rows = {name: record.state.value for name, record in instance.records.items()}
        print(f"\nE12 policy rows: {rows}")
        assert rows == {
            "default-zero": "succeeded",
            "default-two": "failed",
            "explicit-two": "succeeded",
        }

    def test_dependency_ordering_row(self):
        engine = WorkflowEngine()
        template = build_wide_flow(8)
        instance = engine.instantiate(template)
        summary = engine.run(instance)
        assert summary.ok
        # collect ran last: all its dependencies finished first.
        collect = instance.record("collect")
        for index in range(8):
            work = instance.record(f"work{index}")
            assert work.finished_at <= collect.started_at


class TestEngineOverhead:
    @pytest.mark.parametrize("width", [10, 50])
    def test_bench_flow_execution(self, benchmark, width):
        template = build_wide_flow(width)
        engine = WorkflowEngine()

        def run():
            instance = engine.instantiate(template)
            return engine.run(instance)

        summary = benchmark(run)
        assert summary.ok
        benchmark.extra_info["steps"] = width + 2

    def test_bench_metrics_collection(self, benchmark):
        engine = WorkflowEngine()
        instances = []
        template = build_wide_flow(20)
        for _ in range(10):
            instance = engine.instantiate(template)
            engine.run(instance)
            instances.append(instance)

        def collect():
            collector = MetricsCollector()
            for instance in instances:
                collector.collect(instance)
            return collector

        collector = benchmark(collect)
        assert collector.step("collect").runs == 10
