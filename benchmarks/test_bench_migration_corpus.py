"""E2 — migration pipeline throughput and zero-cleanup rate.

The paper reports "a high degree of automation with no manual post
translation cleanup".  Regenerated rows: for a sweep of corpus sizes, the
fraction of migrations that complete clean (verified, no errors) and the
pipeline throughput.  Expected shape: 100% clean across the corpus.
"""

import pytest

from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.samples import build_sample_plan, generate_chain_schematic

CORPUS = [
    (2, 2, 3),
    (2, 4, 5),
    (3, 4, 6),
    (4, 6, 6),
]


class TestCleanRate:
    def test_zero_manual_cleanup_across_corpus(self, vl_libraries):
        rows = {}
        for pages, chains, stages in CORPUS:
            cell = generate_chain_schematic(
                vl_libraries, pages=pages, chains_per_page=chains, stages=stages
            )
            result = Migrator(build_sample_plan(source_libraries=vl_libraries)).migrate(cell)
            rows[cell.name] = {
                "instances": cell.instance_count(),
                "clean": result.clean,
                "verified": result.verification.equivalent,
            }
        print(f"\nE2 rows: {rows}")
        assert all(row["clean"] for row in rows.values())
        assert all(row["verified"] for row in rows.values())


class TestThroughput:
    @pytest.mark.parametrize("pages,chains,stages", CORPUS[:2])
    def test_bench_corpus_migration(self, benchmark, vl_libraries, pages, chains, stages):
        cell = generate_chain_schematic(
            vl_libraries, pages=pages, chains_per_page=chains, stages=stages
        )
        plan = build_sample_plan(source_libraries=vl_libraries)

        result = benchmark(lambda: Migrator(plan).migrate(cell))
        benchmark.extra_info["instances"] = cell.instance_count()
        benchmark.extra_info["clean"] = result.clean

    def test_bench_verification_only(self, benchmark, vl_libraries):
        from cadinterop.schematic.verify import verify_migration

        cell = generate_chain_schematic(vl_libraries, pages=3, chains_per_page=4, stages=6)
        plan = build_sample_plan(source_libraries=vl_libraries, verify=False)
        result = Migrator(plan).migrate(cell)
        verification = benchmark(
            lambda: verify_migration(cell, result.schematic, plan.symbol_map, plan.global_map)
        )
        assert verification.equivalent
