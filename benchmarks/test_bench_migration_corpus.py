"""E2 — migration pipeline throughput and zero-cleanup rate.
E15 — batch farm: serial vs parallel vs warm-cache corpus migration.

The paper reports "a high degree of automation with no manual post
translation cleanup".  Regenerated rows: for a sweep of corpus sizes, the
fraction of migrations that complete clean (verified, no errors) and the
pipeline throughput.  Expected shape: 100% clean across the corpus.

E15 turns the same workload corpus-scale: a 32-design corpus through the
migration farm, comparing the naive serial loop, ``jobs=4`` process
workers, and a warm-cache incremental re-run after touching one design.
Expected shape: parallel beats serial wherever more than one core is
visible (pool overhead stays bounded on a single core), and the warm
re-run performs exactly one migration.
"""

import os
import time

import pytest

from cadinterop.common.geometry import Point
from cadinterop.farm import MigrationFarm, ResultCache
from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.model import TextLabel
from cadinterop.schematic.samples import build_sample_plan, generate_chain_schematic

CORPUS = [
    (2, 2, 3),
    (2, 4, 5),
    (3, 4, 6),
    (4, 6, 6),
]


class TestCleanRate:
    def test_zero_manual_cleanup_across_corpus(self, vl_libraries):
        rows = {}
        for pages, chains, stages in CORPUS:
            cell = generate_chain_schematic(
                vl_libraries, pages=pages, chains_per_page=chains, stages=stages
            )
            result = Migrator(build_sample_plan(source_libraries=vl_libraries)).migrate(cell)
            rows[cell.name] = {
                "instances": cell.instance_count(),
                "clean": result.clean,
                "verified": result.verification.equivalent,
            }
        print(f"\nE2 rows: {rows}")
        assert all(row["clean"] for row in rows.values())
        assert all(row["verified"] for row in rows.values())


class TestThroughput:
    @pytest.mark.parametrize("pages,chains,stages", CORPUS[:2])
    def test_bench_corpus_migration(self, benchmark, vl_libraries, pages, chains, stages):
        cell = generate_chain_schematic(
            vl_libraries, pages=pages, chains_per_page=chains, stages=stages
        )
        plan = build_sample_plan(source_libraries=vl_libraries)

        result = benchmark(lambda: Migrator(plan).migrate(cell))
        benchmark.extra_info["instances"] = cell.instance_count()
        benchmark.extra_info["clean"] = result.clean

    def test_bench_verification_only(self, benchmark, vl_libraries):
        from cadinterop.schematic.verify import verify_migration

        cell = generate_chain_schematic(vl_libraries, pages=3, chains_per_page=4, stages=6)
        plan = build_sample_plan(source_libraries=vl_libraries, verify=False)
        result = Migrator(plan).migrate(cell)
        verification = benchmark(
            lambda: verify_migration(cell, result.schematic, plan.symbol_map, plan.global_map)
        )
        assert verification.equivalent


def _build_farm_corpus(vl_libraries, count=32):
    """``count`` distinct multi-page designs (names and contents differ)."""
    shapes = [(1, 2, 3), (2, 2, 4), (1, 3, 4), (2, 3, 3)]
    corpus = []
    for index in range(count):
        pages, chains, stages = shapes[index % len(shapes)]
        cell = generate_chain_schematic(
            vl_libraries, pages=pages, chains_per_page=chains, stages=stages,
            seed=index,
        )
        cell.name = f"farm{index:03d}"
        corpus.append(cell)
    return corpus


class TestFarmRows:
    """E15 rows: serial vs ``--jobs 4`` vs warm-cache over a 32-design corpus."""

    def test_farm_serial_parallel_warmcache_rows(self, tmp_path, vl_libraries):
        corpus = _build_farm_corpus(vl_libraries, count=32)
        plan = build_sample_plan(source_libraries=vl_libraries)
        cache_dir = tmp_path / "migration-cache"

        # Untimed warmup: absorb one-time costs that are not the farm's
        # (first fork of the interpreter, import caches, bus-parse memo) so
        # the rows compare steady-state behavior.
        MigrationFarm(plan, jobs=4).run(corpus[:2])

        # Row 1: the seed behavior — a naive serial loop, fresh Migrator per
        # design, no cache.
        start = time.perf_counter()
        serial_results = [Migrator(plan).migrate(cell) for cell in corpus]
        t_serial = time.perf_counter() - start
        assert all(result.clean for result in serial_results)

        # Row 2: farm, 4 process workers, cold cache.
        start = time.perf_counter()
        cold = MigrationFarm(plan, jobs=4, cache=ResultCache(cache_dir)).run(corpus)
        t_parallel = time.perf_counter() - start
        assert cold.migrated == len(corpus) and cold.cached == 0
        assert cold.cache_misses == len(corpus) and cold.cache_hits == 0
        assert cold.all_clean
        # The per-stage profile really measured the pipeline.
        assert cold.profile.stages
        assert all(cold.profile.stages[s].calls == len(corpus)
                   for s in ("scaling", "verification"))

        # Row 3: touch exactly one design, re-run warm — one migration, the
        # rest served from the on-disk cache.
        corpus[17].pages[0].add_label(TextLabel("rev B", Point(16, 16)))
        start = time.perf_counter()
        warm = MigrationFarm(plan, jobs=4, cache=ResultCache(cache_dir)).run(corpus)
        t_warm = time.perf_counter() - start
        assert warm.migrated == 1, "only the touched design should re-migrate"
        assert warm.cached == len(corpus) - 1
        assert warm.cache_hits == len(corpus) - 1 and warm.cache_misses == 1
        assert warm.all_clean

        cpus = os.cpu_count() or 1
        rows = {
            "designs": len(corpus),
            "instances": sum(cell.instance_count() for cell in corpus),
            "cpus": cpus,
            "serial_ms": round(t_serial * 1e3, 1),
            "jobs4_cold_ms": round(t_parallel * 1e3, 1),
            "warm_touched1_ms": round(t_warm * 1e3, 1),
            "warm_speedup_vs_serial": round(t_serial / t_warm, 1),
        }
        print(f"\nE15 rows: {rows}")

        # Warm-cache incremental re-run must crush the serial baseline on
        # any hardware: it digests 32 designs and migrates one.
        assert t_warm < t_serial / 3
        if cpus >= 2:
            # With real cores available, 4 workers beat the serial loop.
            assert t_parallel < t_serial
        else:
            # Single visible core: parallelism cannot win; require the pool
            # overhead to stay bounded instead.
            assert t_parallel < 2.0 * t_serial
