"""E5 — simulator disagreement rate on racy vs race-free models.

Paper 3.1: "Different Verilog simulators can legitimately disagree on the
outcome of the same simulation" and divergence indicates "a race condition
in the model".  Regenerated rows: divergence rates across the personality
ensemble for a population of racy and race-free models.  Expected shape:
every racy model diverges, no race-free model does.
"""

import pytest

from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.races import detect_races

RACY_TEMPLATE = """
module racy{n} (clk);
  input clk;
  reg clk, b, d, flag;
  wire a;
  assign a = b;
  always @(posedge clk) if (a != d) flag = 1; else flag = 0;
  always @(posedge clk) b = d;
  initial begin d = 1'b{v}; b = 1'b{nv}; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""

BLOCKING_SWAP = """
module swap (clk);
  input clk;
  reg clk, a, b;
  always @(posedge clk) a = b;
  always @(posedge clk) b = a;
  initial begin a = 1'b0; b = 1'b1; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""

CLEAN_TEMPLATE = """
module clean{n} (clk);
  input clk;
  reg clk, b, d, flag;
  always @(posedge clk) b <= d;
  always @(posedge clk) flag <= d;
  initial begin d = 1'b{v}; b = 1'b{nv}; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""

NB_PIPELINE = """
module pipe (clk);
  input clk;
  reg clk, d, s1, s2, s3;
  always @(posedge clk) s1 <= d;
  always @(posedge clk) s2 <= s1;
  always @(posedge clk) s3 <= s2;
  initial begin d = 1'b1; s1 = 1'b0; s2 = 1'b0; s3 = 1'b0; clk = 1'b0;
    #5 clk = 1'b1; #5 clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""


def racy_models():
    models = [parse_module(RACY_TEMPLATE.format(n=i, v=v, nv=1 - v))
              for i, v in enumerate((1, 0))]
    models.append(parse_module(BLOCKING_SWAP))
    return models


def clean_models():
    models = [parse_module(CLEAN_TEMPLATE.format(n=i, v=v, nv=1 - v))
              for i, v in enumerate((1, 0))]
    models.append(parse_module(NB_PIPELINE))
    return models


class TestDivergenceRates:
    def test_rows(self):
        racy_hits = sum(
            detect_races(m, until=100).has_race for m in racy_models()
        )
        clean_hits = sum(
            detect_races(m, until=100).has_race for m in clean_models()
        )
        rows = {
            "racy models flagged": f"{racy_hits}/{len(racy_models())}",
            "race-free models flagged": f"{clean_hits}/{len(clean_models())}",
        }
        print(f"\nE5 rows: {rows}")
        assert racy_hits == len(racy_models())
        assert clean_hits == 0

    def test_divergence_is_attributed_to_the_model_not_the_kernel(self):
        """Same kernel, different legal orderings: a divergence can only
        come from the model — the paper's troubleshooting question
        answered by construction."""
        report = detect_races(racy_models()[0], observed=["flag"], until=100)
        assert report.has_race
        assert set(report.divergences[0].final_values.values()) == {"0", "1"}


class TestEnsemblePerformance:
    def test_bench_ensemble_on_racy_model(self, benchmark):
        module = racy_models()[0]
        report = benchmark(lambda: detect_races(module, until=100))
        assert report.has_race

    def test_bench_ensemble_on_clean_model(self, benchmark):
        module = clean_models()[2]
        report = benchmark(lambda: detect_races(module, until=100))
        assert not report.has_race
