"""Shared fixtures for the experiment benchmarks (see EXPERIMENTS.md)."""

import pytest

from cadinterop.pnr.samples import build_cell_library, build_floorplan
from cadinterop.pnr.tech import generic_two_layer_tech
from cadinterop.schematic.samples import build_vl_libraries


@pytest.fixture(scope="session")
def vl_libraries():
    return build_vl_libraries()


@pytest.fixture(scope="session")
def pnr_tech():
    return generic_two_layer_tech()


@pytest.fixture(scope="session")
def pnr_library():
    return build_cell_library()
