"""Shared fixtures for the experiment benchmarks (see EXPERIMENTS.md)."""

import os

import pytest

from cadinterop.pnr.samples import build_cell_library, build_floorplan
from cadinterop.pnr.tech import generic_two_layer_tech
from cadinterop.schematic.samples import build_vl_libraries


@pytest.fixture(scope="session")
def bench_scale():
    """Workload multiplier for the microbenchmarks.

    ``CADINTEROP_BENCH_SCALE=1`` (the default) keeps the suite fast enough
    for CI smoke runs; larger values grow the workloads proportionally for
    stable timing measurements on a quiet machine.  Values below 1 are
    clamped up, garbage falls back to 1.
    """
    raw = os.environ.get("CADINTEROP_BENCH_SCALE", "1")
    try:
        scale = int(raw)
    except ValueError:
        scale = 1
    return max(1, scale)


@pytest.fixture(scope="session")
def vl_libraries():
    return build_vl_libraries()


@pytest.fixture(scope="session")
def pnr_tech():
    return generic_two_layer_tech()


@pytest.fixture(scope="session")
def pnr_library():
    return build_cell_library()
