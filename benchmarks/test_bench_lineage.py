"""E17 — semantic-loss lineage matrix over the 8-design CI corpus.

The provenance layer turns the paper's qualitative claim — tool boundaries
lose design information — into a counted, per-stage loss matrix.  Rows:
the same 8-design corpus CI migrates (4 of its designs carry off-grid
wire-label anchors), run through a lineage-enabled farm; the loss report
is cross-checked against the IssueLog of an uninstrumented run so the
audit trail can never drift from the diagnostics.

Regenerate:
    PYTHONPATH=src python -m pytest benchmarks/test_bench_lineage.py -s --benchmark-disable
or from the shell:
    make audit
"""

from cadinterop.common.diagnostics import Category, Severity
from cadinterop.farm import MigrationFarm
from cadinterop.obs import (
    LOSS_VERBS,
    disable_lineage,
    disable_tracing,
    enable_lineage,
    enable_tracing,
)
from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.samples import build_sample_plan, generate_chain_schematic

#: The CI corpus shapes: (pages, chains/page, stages, off-grid labels).
CI_SHAPES = [(1, 2, 3, 0), (2, 2, 4, 1), (1, 3, 5, 0), (2, 4, 4, 2)]
CI_DESIGNS = 8


def ci_corpus(vl_libraries):
    corpus = []
    for index in range(CI_DESIGNS):
        pages, chains, stages, offgrid = CI_SHAPES[index % len(CI_SHAPES)]
        cell = generate_chain_schematic(
            vl_libraries, pages=pages, chains_per_page=chains, stages=stages,
            seed=index, offgrid_labels=offgrid,
        )
        cell.name = f"gen{index:03d}_{cell.name}"
        corpus.append(cell)
    return corpus


class TestLineageMatrix:
    def test_loss_matrix_over_ci_corpus(self, vl_libraries):
        corpus = ci_corpus(vl_libraries)
        plan = build_sample_plan(source_libraries=vl_libraries)

        enable_tracing()
        enable_lineage()
        try:
            report = MigrationFarm(plan, jobs=2, executor="thread").run(corpus)
        finally:
            disable_lineage()
            disable_tracing()
        assert report.migrated == CI_DESIGNS
        loss = report.loss
        assert loss is not None and loss.total > 0
        assert loss.unlinked == 0  # every record resolves to a span

        rows = {
            "designs": CI_DESIGNS,
            "records": loss.total,
            "losses": loss.losses,
            "by_verb": {v: c for v, c in loss.by_verb.items() if c},
            "matrix": {
                stage: {v: c for v, c in row.items() if c}
                for stage, row in sorted(loss.matrix.items())
            },
            "top_lossy": loss.top_lossy_designs(),
        }
        print(f"\nE17 rows: {rows}")

        # The loss budget is fully explained: only the scaling stage loses
        # anything on this corpus, exactly one snap per nudged label.
        expected_snaps = sum(
            CI_SHAPES[i % len(CI_SHAPES)][3] for i in range(CI_DESIGNS)
        )
        assert loss.losses == expected_snaps
        assert loss.stage_count("scaling", "approximated") == expected_snaps
        for stage, row in loss.matrix.items():
            if stage != "scaling":
                assert all(row[verb] == 0 for verb in LOSS_VERBS), stage
        # Exactly one dialect pair, and it owns every record.
        (pair, dialect_row), = loss.dialects.items()
        assert "->" in pair and sum(dialect_row.values()) == loss.total

    def test_matrix_matches_uninstrumented_issue_log(self, vl_libraries):
        """Parity: the audit trail counts what the diagnostics already say."""
        corpus = ci_corpus(vl_libraries)
        plan = build_sample_plan(source_libraries=vl_libraries)

        expected = {}
        for cell in corpus:
            result = Migrator(plan).migrate(cell)
            snaps = sum(
                1 for issue in result.log
                if issue.category is Category.SCALING
                and issue.severity is Severity.WARNING
            )
            if snaps:
                expected[result.schematic.name] = snaps

        recorder = enable_lineage()
        try:
            MigrationFarm(plan, jobs=1).run(corpus)
            records = recorder.records()
        finally:
            disable_lineage()

        observed = {}
        for record in records:
            if record["verb"] == "approximated":
                observed[record["design"]] = observed.get(record["design"], 0) + 1
        print(f"\nE17 parity: issue-log snaps {expected} == lineage {observed}")
        assert observed == expected and expected
