"""E10 — backplane feature coverage and constraint loss per P&R tool.

Paper Section 4: "each tool requires a specific set of constraints" and
"there is minimal consistency over all tools".  Regenerated rows: the
feature-support matrix, conveyed-vs-dropped counts per tool, and the
derived-vs-declared pin access mismatches.  Expected shape: a strict
coverage ordering toolP > toolQ > toolR, and near-empty universal support.
"""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.pnr.backplane import convey
from cadinterop.pnr.dialects import ALL_TOOLS, feature_matrix, universally_supported
from cadinterop.pnr.samples import build_cell_library, build_floorplan


class TestCoverageRows:
    def test_feature_matrix_rows(self):
        matrix = feature_matrix()
        support_counts = {
            tool.name: sum(matrix[f][tool.name] for f in matrix) for tool in ALL_TOOLS
        }
        universal = universally_supported()
        print(f"\nE10 feature support counts: {support_counts}; "
              f"universal: {universal}")
        assert support_counts["toolP"] > support_counts["toolQ"] > support_counts["toolR"]
        # "minimal consistency over all tools"
        assert len(universal) <= len(matrix) // 3

    def test_constraint_loss_rows(self, pnr_library):
        floorplan = build_floorplan()
        rows = {}
        for tool in ALL_TOOLS:
            log = IssueLog()
            payload = convey(floorplan, pnr_library, tool, log)
            rows[tool.name] = {
                "delivered": len(payload.floorplan_directives),
                "dropped": len(payload.dropped),
                "errors": len(log.by_severity(40)),
            }
        print(f"E10 conveyance rows: {rows}")
        assert rows["toolP"]["dropped"] == 0
        assert rows["toolP"]["dropped"] < rows["toolQ"]["dropped"] <= rows["toolR"]["dropped"]

    def test_access_mode_mismatch_rows(self, pnr_library):
        floorplan = build_floorplan()
        log = IssueLog()
        convey(floorplan, pnr_library, ALL_TOOLS[1], log)  # toolQ derives
        mismatches = [i for i in log if "derives access" in i.message]
        print(f"E10 derived-access mismatches under toolQ: {len(mismatches)}")
        assert mismatches  # declared properties silently ignored


class TestConveyancePerformance:
    @pytest.mark.parametrize("tool", ALL_TOOLS, ids=lambda t: t.name)
    def test_bench_convey(self, benchmark, pnr_library, tool):
        floorplan = build_floorplan()
        payload = benchmark(lambda: convey(floorplan, pnr_library, tool))
        benchmark.extra_info["dropped"] = len(payload.dropped)
