"""E14 — classic-problem detection and optimization lever deltas.

Paper Section 6: the flow analysis "clearly identifies the classic
interoperability problems (performance, name mapping, structure mapping,
semantic interpretation errors, and tool control)", and three optimization
levers improve the system.  Regenerated rows: finding counts per problem
class on the modelled environment, and the measured before/after deltas of
each lever.
"""

import pytest

from cadinterop.core import (
    analyze_environment,
    apply_conventions,
    cell_based_methodology,
    measure_lever,
    repartition_boundary,
    standard_scenarios,
    standard_tool_catalog,
    substitute_technology,
    task,
)
from cadinterop.core.analysis import Finding


@pytest.fixture(scope="module")
def environment():
    return cell_based_methodology(), standard_tool_catalog()


class TestClassicProblemRows:
    def test_all_five_detected(self, environment):
        graph, catalog = environment
        analysis = analyze_environment(graph, catalog, standard_scenarios()[0])
        counts = analysis.report.problem_counts()
        print(f"\nE14 classic-problem rows (full-asic): {counts}")
        for problem in Finding.PROBLEMS:
            assert counts[problem] > 0, problem

    def test_holes_and_overlap_rows(self, environment):
        graph, catalog = environment
        analysis = analyze_environment(graph, catalog, standard_scenarios()[0])
        rows = {
            "holes": len(analysis.mapping.holes),
            "coverage": round(analysis.mapping.coverage_ratio(), 2),
        }
        print(f"E14 mapping rows: {rows}")
        assert rows["holes"] > 0  # the modelled environment is incomplete

    def test_scenario_findings_scale_with_size(self, environment):
        graph, catalog = environment
        scenarios = standard_scenarios()
        findings = {
            s.name: len(analyze_environment(graph, catalog, s).report.findings)
            for s in scenarios
        }
        print(f"E14 findings per scenario: {findings}")
        assert findings["netlist-handoff"] <= findings["full-asic"]


class TestOptimizationRows:
    def test_lever_deltas(self, environment):
        graph, catalog = environment

        repartitioned = repartition_boundary(
            catalog, "rtl-editor", "race-analyzer", "rtl-top"
        )
        delta1 = measure_lever("repartition", "rtl-editor->race-analyzer",
                               graph, catalog, graph, repartitioned)

        conventions = apply_conventions(catalog, namespace="project-names")
        delta2 = measure_lever("conventions", "naming convention",
                               graph, catalog, graph, conventions)

        replacement = task(
            "formal-regression", "formal replaces gate/timing sims",
            ["rtl-top", "gate-netlist", "testbench"],
            ["gate-sim-results", "timing-sim-results"],
            phase="verification", kind="validation",
        )
        substituted = substitute_technology(
            graph, ["run-gate-sims", "run-timing-sims"], replacement
        )
        delta3 = measure_lever("technology", "formal substitution",
                               graph, catalog, substituted, catalog)

        rows = {
            d.lever: {
                "findings": f"{d.findings_before}->{d.findings_after}",
                "cost": f"{d.cost_before:.0f}->{d.cost_after:.0f}",
                "improved": d.improved,
            }
            for d in (delta1, delta2, delta3)
        }
        print(f"\nE14 optimization rows: {rows}")
        assert delta1.improved
        assert delta2.improved
        # The technology lever shrinks the graph; it must not add problems.
        assert delta3.findings_after <= delta3.findings_before


class TestAnalysisPerformance:
    def test_bench_full_environment_analysis(self, benchmark, environment):
        graph, catalog = environment
        scenario = standard_scenarios()[0]
        analysis = benchmark(lambda: analyze_environment(graph, catalog, scenario))
        benchmark.extra_info["findings"] = len(analysis.report.findings)

    def test_bench_smallest_scenario(self, benchmark, environment):
        graph, catalog = environment
        scenario = standard_scenarios()[1]
        analysis = benchmark(lambda: analyze_environment(graph, catalog, scenario))
        assert analysis.pruning.tasks_after < 100
