"""E3 — bus syntax translation coverage matrix.

Paper Section 2 bus rules: condensed references expand to explicit ones,
postfix indicators fold into names, explicit forms pass through.
Regenerated rows: translation outcome per syntax class, plus throughput of
the translator on a large label population.
"""

import pytest

from cadinterop.schematic.busnotation import (
    COMPOSER_BUS_SYNTAX,
    VIEWDRAW_BUS_SYNTAX,
    declared_buses_of,
    translate_net_name,
)

DECLARED = {"A": (0, 15), "DATA": (31, 0)}

CASES = {
    "scalar": ("clk", "clk"),
    "explicit-bit": ("A<3>", "A<3>"),
    "explicit-range": ("DATA<31:0>", "DATA<31:0>"),
    "condensed-bit": ("A7", "A<7>"),
    "condensed-nonbus": ("B7", "B7"),          # B is not declared: scalar
    "postfix-scalar": ("reset-", "reset_n"),
    "postfix-bus": ("myBus<0:15>-", "myBus_n<0:15>"),
}


class TestCoverageMatrix:
    def test_all_syntax_classes_translate(self):
        rows = {}
        for label, (source, expected) in CASES.items():
            translated, _rules = translate_net_name(
                source, VIEWDRAW_BUS_SYNTAX, COMPOSER_BUS_SYNTAX, DECLARED
            )
            rows[label] = (source, translated)
            assert translated == expected, label
        print(f"\nE3 rows: {rows}")

    def test_translated_labels_legal_in_target(self):
        for source, expected in CASES.values():
            ref = COMPOSER_BUS_SYNTAX.parse(expected)
            assert COMPOSER_BUS_SYNTAX.format(ref) == expected


class TestTranslationThroughput:
    def labels(self, count=2000):
        population = []
        for index in range(count):
            kind = index % 4
            if kind == 0:
                population.append(f"net{index}")
            elif kind == 1:
                population.append(f"A{index % 16}")
            elif kind == 2:
                population.append(f"bus{index}<7:0>")
            else:
                population.append(f"sig{index}-")
        return population

    def test_bench_label_translation(self, benchmark):
        labels = self.labels()

        def run():
            return [
                translate_net_name(
                    label, VIEWDRAW_BUS_SYNTAX, COMPOSER_BUS_SYNTAX, DECLARED
                )[0]
                for label in labels
            ]

        translated = benchmark(run)
        assert len(translated) == len(labels)

    def test_bench_declaration_scan(self, benchmark):
        labels = self.labels(5000)
        declared = benchmark(lambda: declared_buses_of(labels, VIEWDRAW_BUS_SYNTAX))
        assert declared  # the bus labels were found
