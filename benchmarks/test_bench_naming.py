"""E9 — naming hazards: truncation aliasing, keyword clashes, flattening.

Paper 3.3.  Regenerated rows: aliasing collision counts at 8-character
truncation as the name population grows, keyword-clash rename impact on
analysis scripts, and the flatten/back-map round trip.
"""

import pytest

from cadinterop.hdl.flatten import flatten, unflatten_name
from cadinterop.hdl.names import find_truncation_aliases
from cadinterop.hdl.parser import parse
from cadinterop.hdl.translate import plan_renames, rewrite_script, script_impact


def signal_population(blocks, signals_per_block):
    """Realistic hierarchical names: <block>_<function><index>."""
    names = []
    for block_index in range(blocks):
        for signal_index in range(signals_per_block):
            names.append(f"block{block_index:02}_data{signal_index:03}")
            names.append(f"block{block_index:02}_ctrl{signal_index:03}")
    return names


class TestTruncationRows:
    def test_collision_rate_grows_with_population(self):
        rows = {}
        for blocks in (1, 4, 16):
            names = signal_population(blocks, 8)
            groups = find_truncation_aliases(names, significant=8)
            collided = sum(len(members) for members in groups.values())
            rows[f"{len(names)} names"] = f"{collided} collide in {len(groups)} groups"
        print(f"\nE9 truncation rows: {rows}")
        # Shape: this naming style collapses catastrophically at 8 chars.
        all_names = signal_population(16, 8)
        assert find_truncation_aliases(all_names, significant=8)
        # And survives with a discriminating prefix width.
        assert not find_truncation_aliases(all_names, significant=16)

    def test_paper_example(self):
        groups = find_truncation_aliases(["cntr_reset1", "cntr_reset2"])
        assert groups == {"cntr_res": ["cntr_reset1", "cntr_reset2"]}


class TestKeywordRenameImpact:
    SCRIPT = "\n".join(
        ["probe in", "probe out", "probe clk", "compare in out", "probe data"] * 20
    )

    def test_rows(self):
        plan = plan_renames(["in", "out", "clk", "data", "signal"])
        impact = script_impact(self.SCRIPT, plan)
        rows = {
            "identifiers renamed": plan.renamed_count,
            "script lines broken": impact.broken_lines,
        }
        print(f"\nE9 keyword rows: {rows}")
        assert plan.renamed_count == 3  # in, out, signal
        assert impact.broken_lines == 60  # every probe in/out and compare line

    def test_rewrite_repairs_script(self):
        plan = plan_renames(["in", "out"])
        repaired = rewrite_script(self.SCRIPT, plan)
        assert script_impact(repaired, plan).broken_lines == 0


def deep_design(depth=4):
    """A linear hierarchy depth levels deep."""
    source = ["module leaf (p, q); input p; output q; assign q = ~p; endmodule"]
    previous = "leaf"
    for level in range(depth):
        name = f"level{level}"
        source.append(
            f"module {name} (p, q); input p; output q; wire mid;"
            f" {previous} u1 (.p(p), .q(mid));"
            f" {previous} u2 (.p(mid), .q(q)); endmodule"
        )
        previous = name
    unit = parse("\n".join(source))
    unit.top = previous
    return unit


class TestFlattenRoundTrip:
    def test_rows(self):
        unit = deep_design(4)
        flat, name_map = flatten(unit)
        internal = [n for n in flat.nets if "_" in n]
        # Every flat name maps back to exactly its hierarchical path.
        for flat_name in flat.nets:
            dotted = unflatten_name(name_map, flat_name)
            assert name_map.target_of(dotted) == flat_name
        rows = {
            "flat signals": len(flat.nets),
            "hierarchical (joined) names": len(internal),
            "back-map failures": 0,
        }
        print(f"\nE9 flatten rows: {rows}")
        # Binary instance tree: 1+2+4+8 = 15 'mid' wires, plus the 2 ports.
        assert len(flat.nets) == 17

    def test_bench_flatten(self, benchmark):
        unit = deep_design(6)
        flat, name_map = benchmark(lambda: flatten(unit))
        assert len(flat.nets) > 50

    def test_bench_backmap(self, benchmark):
        unit = deep_design(6)
        flat, name_map = flatten(unit)
        names = list(flat.nets)
        result = benchmark(lambda: [unflatten_name(name_map, n) for n in names])
        assert len(result) == len(names)
