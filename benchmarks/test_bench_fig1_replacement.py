"""E1 — paper Figure 1: component replacement with minimized rip-up.

The paper's only figure shows component replacement ripping up the net
segments attached to replaced pins and rerouting them to the new pins,
with "the number of ripped up net segments ... minimized" and the result
"graphically very similar to the original".

Regenerated rows: ripped segments and graphical similarity for the
minimal strategy vs the naive full-rip baseline, on the sample cell and a
corpus design.  Expected shape: minimal rips far fewer segments and keeps
similarity high; naive rips everything.
"""

import pytest

from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_sample_schematic,
    generate_chain_schematic,
)


def migrate(libraries, cell, strategy):
    plan = build_sample_plan(source_libraries=libraries, strategy=strategy)
    return Migrator(plan).migrate(cell)


class TestFigure1Shape:
    def test_minimal_vs_naive_rows(self, vl_libraries):
        cell = build_sample_schematic(vl_libraries)
        minimal = migrate(vl_libraries, cell, "minimal")
        naive = migrate(vl_libraries, cell, "naive")

        rows = {
            "minimal": (minimal.replacements.total_ripped,
                        minimal.replacements.mean_similarity),
            "naive": (naive.replacements.total_ripped,
                      naive.replacements.mean_similarity),
        }
        print(f"\nE1 rows (ripped segments, similarity): {rows}")

        # Shape: minimization wins on both axes.
        assert rows["minimal"][0] < rows["naive"][0]
        assert rows["minimal"][1] > rows["naive"][1]
        # "Graphically very similar": majority of segments untouched.
        assert rows["minimal"][1] > 0.5
        # Minimal verifies; (the naive baseline breaks the analog tap).
        assert minimal.verification.equivalent

    def test_corpus_minimization_scales(self, vl_libraries):
        cell = generate_chain_schematic(
            vl_libraries, pages=3, chains_per_page=4, stages=6
        )
        minimal = migrate(vl_libraries, cell, "minimal")
        naive = migrate(vl_libraries, cell, "naive")
        assert minimal.replacements.total_ripped < naive.replacements.total_ripped
        assert minimal.verification.equivalent
        assert naive.verification.equivalent  # no taps in the chain corpus


class TestFigure1Performance:
    def test_bench_minimal_replacement(self, benchmark, vl_libraries):
        cell = build_sample_schematic(vl_libraries)

        def run():
            return migrate(vl_libraries, cell, "minimal")

        result = benchmark(run)
        benchmark.extra_info["ripped"] = result.replacements.total_ripped
        benchmark.extra_info["similarity"] = round(
            result.replacements.mean_similarity, 3
        )

    def test_bench_naive_replacement(self, benchmark, vl_libraries):
        cell = build_sample_schematic(vl_libraries)
        result = benchmark(lambda: migrate(vl_libraries, cell, "naive"))
        benchmark.extra_info["ripped"] = result.replacements.total_ripped
