"""E8 — subset portability and sensitivity-mismatch detection.

Paper 3.2: models transported between synthesis tools must use "the
intersection of the vendors' subsets"; incomplete sensitivity lists make
simulation and synthesis disagree.  Regenerated rows: per-vendor accept
rates over a model population, intersection portability, and the
mismatch-detection rate on sensitivity-trap models.
"""

import pytest

from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.synth import (
    DEFAULT_VENDORS,
    analyze,
    portability_report,
    simulation_synthesis_mismatch,
    synthesize,
    written_in_intersection,
)
from cadinterop.hdl.simulator import simulate

MODELS = {
    # Portable: edge-triggered, nonblocking, plain if.
    "portable-ff": """
        module ff (clk, d, q); input clk, d; output q; reg q;
        always @(posedge clk) q <= d;
        endmodule
    """,
    # @(*): synthB rejects.
    "star-comb": """
        module comb (a, b, y); input a, b; output y; reg y;
        always @(*) y = a & b;
        endmodule
    """,
    # level list: synthC rejects.
    "level-comb": """
        module comb2 (a, b, y); input a, b; output y; reg y;
        always @(a or b) y = a | b;
        endmodule
    """,
    # tristate: synthA rejects.
    "tristate": """
        module tri1 (a, en, y); input a, en; output y;
        bufif1 b1 (y, a, en);
        endmodule
    """,
    # delays: nobody accepts.
    "delayed": """
        module dly (a, y); input a; output y;
        assign #5 y = ~a;
        endmodule
    """,
}

TRAP = """
module style (a, b, out);
  input a, b; output out;
  reg out, c;
  always @(a or b) out = a & b & c;
  initial begin c = 1'b1; a = 1'b1; b = 1'b1; end
  initial begin #10 c = 1'b0; end
endmodule
"""

OK_MODEL = """
module ok (a, b, out);
  input a, b; output out;
  reg out, c;
  always @(a or b or c) out = a & b & c;
  initial begin c = 1'b1; a = 1'b1; b = 1'b1; end
  initial begin #10 c = 1'b0; end
endmodule
"""


class TestSubsetRows:
    def test_vendor_accept_matrix(self):
        rows = {}
        for label, source in MODELS.items():
            module = parse_module(source)
            report = portability_report(module)
            rows[label] = {
                "accepted_by": report.accepted_by,
                "portable": written_in_intersection(module),
            }
        print(f"\nE8 accept matrix: {rows}")
        assert rows["portable-ff"]["portable"]
        assert rows["portable-ff"]["accepted_by"] == ["synthA", "synthB", "synthC"]
        assert "synthB" not in rows["star-comb"]["accepted_by"]
        assert "synthC" not in rows["level-comb"]["accepted_by"]
        assert "synthA" not in rows["tristate"]["accepted_by"]
        assert rows["delayed"]["accepted_by"] == []

    def test_intersection_rule_predicts_portability(self):
        for label, source in MODELS.items():
            module = parse_module(source)
            in_intersection = written_in_intersection(module)
            accepted_by_all = len(portability_report(module).accepted_by) == len(
                DEFAULT_VENDORS
            )
            assert in_intersection == accepted_by_all, label


class TestSensitivityMismatch:
    def test_detection_and_mismatch_agree(self):
        trap = parse_module(TRAP)
        ok = parse_module(OK_MODEL)
        rows = {
            "trap": {
                "static-finding": bool(analyze(trap)[0].missing),
                "dynamic-mismatch": simulation_synthesis_mismatch(
                    trap, ["out"], until=100
                ).mismatch,
            },
            "complete-list": {
                "static-finding": bool(analyze(ok)[0].missing),
                "dynamic-mismatch": simulation_synthesis_mismatch(
                    ok, ["out"], until=100
                ).mismatch,
            },
        }
        print(f"\nE8 sensitivity rows: {rows}")
        assert rows["trap"] == {"static-finding": True, "dynamic-mismatch": True}
        assert rows["complete-list"] == {"static-finding": False, "dynamic-mismatch": False}

    def test_synthesized_netlist_behaves_as_synthesis_reads(self):
        netlist = synthesize(parse_module(TRAP)).netlist
        sim = simulate(netlist, until=100)
        assert sim.value("out") == "0"  # responds to c, unlike the RTL


class TestSubsetPerformance:
    def test_bench_portability_sweep(self, benchmark):
        modules = [parse_module(source) for source in MODELS.values()]
        reports = benchmark(lambda: [portability_report(m) for m in modules])
        assert len(reports) == len(MODELS)

    def test_bench_synthesize(self, benchmark):
        module = parse_module(OK_MODEL)
        result = benchmark(lambda: synthesize(module))
        assert result.gate_count > 0
