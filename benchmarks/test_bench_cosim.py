"""E7 — co-simulation fidelity with/without proper value-set mapping.

Paper 3.1: co-simulation attempts "have fallen short of their targets"
because of "inconsistencies in the signal value set ... and in the
simulation cycle definition".  Regenerated rows: signal fidelity against a
monolithic reference for the correct bridge, the naive value-map bridge,
and the misaligned-cycle bridge.  Expected shape: correct = 1.0, both
failure modes < 1.0.
"""

import pytest

from cadinterop.hdl.cosim import BridgeSignal, CoSimulation, compare_with_reference
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import simulate

PRODUCER = """
module producer ();
  reg raw, en; wire data;
  bufif1 b1 (data, raw, en);
  initial begin
    raw = 1'b1; en = 1'b1;
    #10 en = 1'b0;
    #10 en = 1'b1; raw = 1'b0;
  end
endmodule
"""

CONSUMER = """
module consumer ();
  reg din; wire released, seen;
  assign released = din === 1'bz;
  assign seen = released ? 1'b1 : din;
endmodule
"""

MONOLITHIC = """
module mono ();
  reg raw, en; wire data, released, seen;
  bufif1 b1 (data, raw, en);
  assign released = data === 1'bz;
  assign seen = released ? 1'b1 : data;
  initial begin
    raw = 1'b1; en = 1'b1;
    #10 en = 1'b0;
    #10 en = 1'b1; raw = 1'b0;
  end
endmodule
"""

SIGNAL_MAP = {"data": ("right", "din"), "seen": ("right", "seen")}


def run_cosim(value_mode="correct", aligned=True, until=15):
    cosim = CoSimulation(
        parse_module(PRODUCER),
        parse_module(CONSUMER),
        [BridgeSignal("left", "data", "din")],
        value_mode=value_mode,
        aligned=aligned,
    )
    cosim.run(until)
    return cosim


class TestFidelityRows:
    def test_rows(self):
        reference = simulate(parse_module(MONOLITHIC), until=15)
        rows = {}
        for label, kwargs in (
            ("correct", {}),
            ("naive-value-map", {"value_mode": "naive"}),
        ):
            cosim = run_cosim(**kwargs)
            report = compare_with_reference(cosim, reference, SIGNAL_MAP)
            rows[label] = round(report.fidelity, 3)
        print(f"\nE7 rows (fidelity vs monolithic reference): {rows}")
        assert rows["correct"] == 1.0
        assert rows["naive-value-map"] < 1.0

    def test_misaligned_cycles_lag(self):
        """A misaligned bridge leaves round-trip values one exchange stale.

        Single-hop copies survive a blind exchange; the cycle-definition
        mismatch shows on paths that cross the boundary twice within one
        simulation time (left -> right -> back to left).
        """
        def build():
            left = parse_module("""
                module l ();
                  reg stim; wire back, out;
                  assign out = stim;
                  initial begin stim = 1'b0; #10 stim = 1'b1; end
                endmodule
            """)
            right = parse_module("module r (); wire fwd, echo; assign echo = ~fwd; endmodule")
            mapping = [
                BridgeSignal("left", "out", "fwd"),
                BridgeSignal("right", "echo", "back"),
            ]
            return left, right, mapping

        aligned = CoSimulation(*build(), aligned=True)
        aligned.run(10)
        misaligned = CoSimulation(*build(), aligned=False)
        misaligned.run(10)
        assert aligned.value("left", "back") == "0"  # ~1, fully propagated
        assert misaligned.value("left", "back") != "0"  # stale echo


class TestCosimPerformance:
    def test_bench_correct_cosim(self, benchmark):
        result = benchmark(lambda: run_cosim(until=100))
        assert result.value("right", "din") == "0"

    def test_bench_monolithic_reference(self, benchmark):
        result = benchmark(lambda: simulate(parse_module(MONOLITHIC), until=100))
        assert result.value("data") == "0"
