"""E6 — timing-check drift across simulator versions and +pre_16a_path.

Paper 3.1: timing results "drift unless backwards compatibility is
specifically addressed"; the +pre_16a_path option pins the old behavior.
Regenerated rows: violation counts per version for a model population with
boundary-margin timing, with and without the compatibility flag.
Expected shape: drift across the 1.6a boundary without the flag; identical
pre-1.6a numbers everywhere with it.
"""

import pytest

from cadinterop.hdl.simulator import simulate
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.timing import ALL_VERSIONS, TimingCheck, TimingChecker, version_drift


def boundary_waveforms(count=10, limit=20):
    """Clock/data pairs, half exactly at the setup limit, half clear."""
    population = []
    for index in range(count):
        clock_edge = 100 + index * 10
        margin = limit if index % 2 == 0 else limit + 7
        population.append(
            {
                "clk": [(0, "0"), (clock_edge, "1")],
                "d": [(0, "0"), (clock_edge - margin, "1")],
            }
        )
    return population


class TestDriftShape:
    def test_rows(self):
        checks = [TimingCheck("setup", "d", "clk", limit=20)]
        population = boundary_waveforms()
        totals = {version.name: 0 for version in ALL_VERSIONS}
        pinned_totals = {version.name: 0 for version in ALL_VERSIONS}
        for waves in population:
            drift = version_drift(checks, waves)
            for version, count in drift.per_version.items():
                totals[version] += count
            pinned = version_drift(checks, waves, pre_16a_path=True)
            for version, count in pinned.per_version.items():
                pinned_totals[version] += count
        print(f"\nE6 rows: without flag {totals}; with +pre_16a_path {pinned_totals}")
        # Half the population is boundary-exact: new versions flag it.
        assert totals["1.5b"] == 0
        assert totals["1.6a"] == totals["2.0"] == len(population) // 2
        # The flag restores pre-1.6a counts everywhere.
        assert set(pinned_totals.values()) == {0}

    def test_waveforms_from_real_simulation(self):
        """The checker consumes the kernel's actual waveforms."""
        module = parse_module("""
            module t ();
              reg clk, d;
              initial begin clk = 1'b0; d = 1'b0; #30 d = 1'b1; #20 clk = 1'b1; end
            endmodule
        """)
        sim = simulate(module, until=100)
        checks = [TimingCheck("setup", "d", "clk", limit=20)]
        drift = version_drift(checks, {"clk": sim.waveform("clk"), "d": sim.waveform("d")})
        assert drift.drifts  # margin is exactly 20: the boundary case


class TestCheckerPerformance:
    def test_bench_version_sweep(self, benchmark):
        checks = [TimingCheck("setup", "d", "clk", limit=20),
                  TimingCheck("hold", "d", "clk", limit=3),
                  TimingCheck("width", "clk", "clk", limit=4)]
        waves = {
            "clk": [(t, "01"[t // 10 % 2]) for t in range(0, 2000, 10)],
            "d": [(t, "01"[t // 30 % 2]) for t in range(5, 2000, 30)],
        }
        result = benchmark(lambda: version_drift(checks, waves))
        assert result.per_version
