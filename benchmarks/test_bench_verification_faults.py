"""E4 — migration verification catches injected translation faults.

The paper: "design data translations must be independently verified".
Regenerated rows: a fault-injection sweep over a clean migration — broken
connections, shorts, dropped instances, moved taps — and the verifier's
detection rate.  Expected shape: 100% detection, zero false positives on
the clean design.
"""

import pytest

from cadinterop.common.geometry import Point
from cadinterop.schematic.migrate import Migrator, copy_schematic
from cadinterop.schematic.model import Wire
from cadinterop.schematic.samples import build_sample_plan, build_sample_schematic
from cadinterop.schematic.verify import verify_migration


@pytest.fixture(scope="module")
def clean_setup(vl_libraries):
    source = build_sample_schematic(vl_libraries)
    plan = build_sample_plan(source_libraries=vl_libraries, verify=False)
    result = Migrator(plan).migrate(source)
    return source, result.schematic, plan


def fault_break_wire(target):
    page = target.pages[0]
    wire = next(w for w in page.wires if w.label == "N1")
    wire.points[-1] = wire.points[-1].translated(0, 5)


def fault_short_nets(target):
    page = target.pages[0]
    page.add_wire(Wire([Point(80, 110), Point(80, 130)]))


def fault_drop_instance(target):
    target.pages[1].remove_instance("M1")


def fault_move_tap(target):
    page = target.pages[0]
    tap = next(w for w in page.wires if not w.label and len(w.points) == 3)
    tap.points[-1] = tap.points[-1].translated(0, -5)


FAULTS = {
    "broken-wire": fault_break_wire,
    "shorted-nets": fault_short_nets,
    "dropped-instance": fault_drop_instance,
    "moved-tap": fault_move_tap,
}


class TestFaultDetection:
    def test_clean_design_passes(self, clean_setup):
        source, target, plan = clean_setup
        verification = verify_migration(source, target, plan.symbol_map, plan.global_map)
        assert verification.equivalent  # no false positives

    def test_injection_sweep_rows(self, clean_setup):
        source, target, plan = clean_setup
        rows = {}
        for name, inject in FAULTS.items():
            faulty = copy_schematic(target)
            inject(faulty)
            verification = verify_migration(
                source, faulty, plan.symbol_map, plan.global_map
            )
            rows[name] = "DETECTED" if not verification.equivalent else "MISSED"
        print(f"\nE4 rows: {rows}")
        assert all(v == "DETECTED" for v in rows.values())


class TestVerificationPerformance:
    def test_bench_verification(self, benchmark, clean_setup):
        source, target, plan = clean_setup
        verification = benchmark(
            lambda: verify_migration(source, target, plan.symbol_map, plan.global_map)
        )
        assert verification.equivalent
