"""Ablations — what the implementation's design choices buy.

Three load-bearing choices are switched off and measured:

* **A1** route rule-carrying nets first (vs last): critical nets that route
  late find their corridor taken and pay wirelength or fail;
* **A2** pre-reserve terminal nodes (vs not): without reservation other
  nets route across pins and strand them;
* **A3** independent verification (vs trusting the pipeline): the naive
  full-rip strategy silently breaks a tap — only verification notices.
"""

import pytest

from cadinterop.pnr.routing import GridRouter
from cadinterop.pnr.samples import build_bus_scenario, build_cell_library, build_floorplan, generate_design
from cadinterop.pnr.placement import RowPlacer
from cadinterop.pnr.tech import generic_two_layer_tech
from cadinterop.schematic.migrate import Migrator
from cadinterop.schematic.samples import build_sample_plan, build_sample_schematic


class TestA1RuleNetOrdering:
    def route_with_order(self, order):
        tech = generic_two_layer_tech()
        floorplan, design, pads = build_bus_scenario()
        router = GridRouter(tech, floorplan, pads)
        # Reserve terminals as route_design would.
        for net, terminals in design.nets.items():
            for terminal in terminals:
                node = router._terminal_nodes(design, terminal)[0]
                if router.occupancy.get(node, net) == net:
                    router.occupancy[node] = net
        results = {}
        for net in order:
            results[net] = router.route_net(design, net)
            if results[net] is not None and results[net].rule.shield:
                router.add_shields(results[net])
        return results

    def test_rows(self):
        rules_first = self.route_with_order(["crit", "aggr0", "aggr1"])
        rules_last = self.route_with_order(["aggr0", "aggr1", "crit"])

        def wirelength(results, net):
            routed = results.get(net)
            return routed.wirelength_tracks if routed else None

        rows = {
            "rules-first": {"crit": wirelength(rules_first, "crit"),
                            "failed": [n for n, r in rules_first.items() if r is None]},
            "rules-last": {"crit": wirelength(rules_last, "crit"),
                           "failed": [n for n, r in rules_last.items() if r is None]},
        }
        print(f"\nA1 rows: {rows}")
        # Routing the protected net last costs it (detour or failure).
        first_length = rows["rules-first"]["crit"]
        last_length = rows["rules-last"]["crit"]
        assert first_length is not None
        assert last_length is None or last_length > first_length


class TestA2TerminalReservation:
    def route(self, reserve):
        tech = generic_two_layer_tech()
        library = build_cell_library()
        floorplan = build_floorplan()
        design, pads = generate_design(library, cells=18)
        RowPlacer(tech, floorplan, seed=3).place(design, pads)
        router = GridRouter(tech, floorplan, pads)
        if reserve:
            return design, router.route_design(design)
        # Ablated: route in the same order but without pre-reservation.
        failed = []
        routed = {}
        ordered = sorted(
            design.nets,
            key=lambda n: (floorplan.net_rules.get(n) is None, n),
        )
        for net in ordered:
            result = router.route_net(design, net)
            if result is None:
                failed.append(net)
            else:
                routed[net] = result
        return design, type("R", (), {"routed": routed, "failed": failed})()

    def test_rows(self):
        _design, with_reservation = self.route(reserve=True)
        _design2, without_reservation = self.route(reserve=False)
        rows = {
            "reserved": len(with_reservation.failed),
            "not-reserved": len(without_reservation.failed),
        }
        print(f"\nA2 rows (failed nets): {rows}")
        assert rows["reserved"] == 0
        # The ablation may or may not fail on this instance, but it must
        # never do better.
        assert rows["not-reserved"] >= rows["reserved"]


class TestA3VerificationCatchesWhatPipelinesMiss:
    def test_rows(self, vl_libraries):
        cell = build_sample_schematic(vl_libraries)
        naive_plan = build_sample_plan(source_libraries=vl_libraries, strategy="naive")
        result = Migrator(naive_plan).migrate(cell)
        rows = {
            "pipeline-reported-errors": sum(
                1 for issue in result.log
                if issue.severity >= 40 and issue.category.value != "verification"
            ),
            "verification-verdict": result.verification.summary().split(":")[0],
        }
        print(f"\nA3 rows: {rows}")
        # The pipeline itself raises no errors — only independent
        # verification catches the broken tap. The paper's point exactly.
        assert rows["pipeline-reported-errors"] == 0
        assert not result.verification.equivalent


class TestAblationPerformance:
    def test_bench_reserved_routing(self, benchmark):
        tech = generic_two_layer_tech()
        library = build_cell_library()
        floorplan = build_floorplan()
        design, pads = generate_design(library, cells=18)
        RowPlacer(tech, floorplan, seed=3).place(design, pads)

        def run():
            router = GridRouter(tech, floorplan, pads)
            return router.route_design(design)

        result = benchmark(run)
        assert result.failed == []
