"""E13 — the ~200-task methodology and scenario pruning ratios.

Paper Section 6: "approximately 200 tasks to describe a cell based design
methodology that spans from product specification to final mask tapeout";
scenarios "prune the task graph, and reduce the number of interactions".
Regenerated rows: the task count, graph statistics, and per-scenario
pruning ratios.
"""

import pytest

from cadinterop.core.library import cell_based_methodology, standard_scenarios
from cadinterop.core.scenarios import prune_report


class TestMethodologyRows:
    def test_task_count_row(self):
        graph = cell_based_methodology()
        stats = graph.stats()
        print(f"\nE13 graph stats: {stats}")
        # "approximately 200 tasks"
        assert 190 <= stats["tasks"] <= 210
        assert stats["phases"] >= 14
        assert stats["edges"] > stats["tasks"]  # richer than a linear flow

    def test_span_row(self):
        graph = cell_based_methodology()
        needed = graph.backward_closure(["final-mask-data"])
        print(f"E13 spec->tapeout closure: {len(needed)} tasks")
        assert "write-product-spec" in needed

    def test_pruning_rows(self):
        graph = cell_based_methodology()
        rows = {}
        for scenario in standard_scenarios():
            _pruned, report = prune_report(graph, scenario)
            rows[scenario.name] = {
                "tasks": f"{report.tasks_after}/{report.tasks_before}",
                "task_reduction": round(report.task_reduction, 2),
                "interaction_reduction": round(report.interaction_reduction, 2),
            }
        print(f"E13 pruning rows: {rows}")
        for row in rows.values():
            assert row["task_reduction"] > 0.2
            assert row["interaction_reduction"] > 0.2

    def test_nonlinearity_row(self):
        graph = cell_based_methodology()
        assert graph.has_iteration_loops()


class TestMethodologyPerformance:
    def test_bench_build_graph(self, benchmark):
        graph = benchmark(cell_based_methodology)
        assert len(graph) == 200

    def test_bench_edges(self, benchmark):
        graph = cell_based_methodology()
        edges = benchmark(graph.edges)
        assert len(edges) > 300

    def test_bench_prune_all_scenarios(self, benchmark):
        graph = cell_based_methodology()
        scenarios = standard_scenarios()

        def run():
            return [prune_report(graph, scenario)[1] for scenario in scenarios]

        reports = benchmark(run)
        assert len(reports) == 3
