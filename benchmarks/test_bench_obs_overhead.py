"""E16 — observability overhead: traced vs untraced corpus migration.

The obs layer must be effectively free when disabled (the no-op
singletons) and cheap when enabled (append-a-dict per span).  Rows: the
same 32-design corpus through an inline single-job farm with (a) tracing
and metrics off, (b) on, and (c) on plus a JSONL export at the end.
Expected shape: (b) and (c) within 10% of (a).

Inline ``jobs=1`` is the worst case for relative overhead: process
workers amortize span recording behind fork/IPC costs, the inline
executor hides nothing.
"""

import time

import pytest

from cadinterop.farm import MigrationFarm
from cadinterop.obs import (
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    get_metrics,
    get_tracer,
    write_trace,
)
from cadinterop.schematic.samples import build_sample_plan, generate_chain_schematic

DESIGNS = 32
REPEATS = 3
MAX_OVERHEAD = 0.10


def _corpus(vl_libraries, count=DESIGNS):
    shapes = [(1, 2, 3), (2, 2, 4), (1, 3, 4), (2, 3, 3)]
    corpus = []
    for index in range(count):
        pages, chains, stages = shapes[index % len(shapes)]
        cell = generate_chain_schematic(
            vl_libraries, pages=pages, chains_per_page=chains, stages=stages,
            seed=index,
        )
        cell.name = f"obs{index:03d}"
        corpus.append(cell)
    return corpus


def _timed_run(plan, corpus):
    start = time.perf_counter()
    report = MigrationFarm(plan, jobs=1, executor="inline").run(corpus)
    elapsed = time.perf_counter() - start
    assert report.migrated == len(corpus) and report.all_clean
    return elapsed


class TestObsOverhead:
    def test_tracing_overhead_is_bounded(self, tmp_path, vl_libraries):
        corpus = _corpus(vl_libraries)
        plan = build_sample_plan(source_libraries=vl_libraries)

        # Untimed warmup (import caches, bus-parse memo).
        _timed_run(plan, corpus[:4])

        def best(run):
            return min(run() for _ in range(REPEATS))

        t_off = best(lambda: _timed_run(plan, corpus))

        def traced_run(export_to=None):
            tracer = enable_tracing()
            enable_metrics()
            try:
                elapsed = _timed_run(plan, corpus)
                spans = tracer.spans()
                if export_to is not None:
                    write_trace(export_to, spans, get_metrics().snapshot(),
                                trace_id=tracer.trace_id)
                # Every design span plus per-stage spans made it in.
                assert sum(s["name"] == "migrate" for s in spans) == len(corpus)
            finally:
                disable_tracing()
                disable_metrics()
            return elapsed

        t_on = best(traced_run)
        t_export = best(lambda: traced_run(tmp_path / "e16.jsonl"))

        rows = {
            "designs": len(corpus),
            "off_ms": round(t_off * 1e3, 1),
            "traced_ms": round(t_on * 1e3, 1),
            "traced_export_ms": round(t_export * 1e3, 1),
            "overhead_traced": round(t_on / t_off - 1.0, 4),
            "overhead_export": round(t_export / t_off - 1.0, 4),
        }
        print(f"\nE16 rows: {rows}")

        assert not get_tracer().enabled and not get_metrics().enabled
        assert t_on < t_off * (1.0 + MAX_OVERHEAD), rows
        assert t_export < t_off * (1.0 + MAX_OVERHEAD), rows

    def test_disabled_singletons_add_no_instrumentation_cost(self, vl_libraries):
        """With obs off, the guarded call sites reduce to attribute checks:
        a micro-benchmark of the hot helpers stays in the tens of ns."""
        tracer = get_tracer()
        metrics = get_metrics()
        assert not tracer.enabled and not metrics.enabled
        iterations = 100_000
        start = time.perf_counter()
        for _ in range(iterations):
            with tracer.span("x", a=1):
                pass
            metrics.counter("x").inc()
        per_pair_us = (time.perf_counter() - start) / iterations * 1e6
        print(f"\nE16 null-path cost: {per_pair_us:.3f} us per span+counter")
        assert per_pair_us < 5.0
