#!/usr/bin/env python3
"""Quickstart: the paper's promise in ten minutes.

Runs one representative slice of each tool class the DAC'96 paper covers —
schematic migration with verification (Section 2), simulator disagreement
on a racy model (Section 3), P&R constraint loss and its coupling cost
(Section 4), a workflow with the default status policy (Section 5) — and
finishes with the Section 6 analysis producing the reader's checklist.

Run:  python examples/quickstart.py
"""

from cadinterop.common.diagnostics import render_checklist
from cadinterop.core import (
    analyze_environment,
    cell_based_methodology,
    environment_checklist,
    standard_scenarios,
    standard_tool_catalog,
)
from cadinterop.hdl import LIFO, FIFO, parse_module, simulate
from cadinterop.pnr import TOOL_P, TOOL_R, generic_two_layer_tech, run_flow
from cadinterop.pnr.cells import CellLibrary
from cadinterop.pnr.samples import build_bus_scenario
from cadinterop.schematic import Migrator
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_sample_schematic,
    build_vl_libraries,
)
from cadinterop.workflow import (
    FlowTemplate,
    PythonAction,
    StepDef,
    WorkflowEngine,
)


def schematic_section() -> None:
    print("=" * 72)
    print("Section 2 — schematic migration (Viewdraw-like -> Composer-like)")
    print("=" * 72)
    libraries = build_vl_libraries()
    cell = build_sample_schematic(libraries)
    plan = build_sample_plan(source_libraries=libraries)
    result = Migrator(plan).migrate(cell)
    print(f"  components replaced : {result.replacements.replacements}")
    print(f"  net segments ripped : {result.replacements.total_ripped} "
          f"(graphical similarity {result.replacements.mean_similarity:.0%})")
    print(f"  bus syntax rewrites : {result.bus_renames}")
    print(f"  connectors added    : {result.connectors.offpage_added} off-page, "
          f"{result.connectors.hierarchy_added} hierarchy")
    print(f"  verification        : {result.verification.summary()}")
    print(f"  clean migration     : {result.clean}")
    print()


RACY_MODEL = """
module race (clk);
  input clk;
  reg clk, b, d, flag;
  wire a;
  assign a = b;
  always @(posedge clk) if (a != d) flag = 1; else flag = 0;
  always @(posedge clk) b = d;
  initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""


def hdl_section() -> None:
    print("=" * 72)
    print("Section 3 — two simulators legitimately disagree on a racy model")
    print("=" * 72)
    module = parse_module(RACY_MODEL)
    for policy in (FIFO, LIFO):
        sim = simulate(module, policy=policy, until=100)
        print(f"  {policy.name:6} event ordering -> flag = {sim.value('flag')}")
    print("  both orderings are legal: the model has a race (paper 3.1)")
    print()


def pnr_section() -> None:
    print("=" * 72)
    print("Section 4 — constraint loss through a weak P&R dialect")
    print("=" * 72)
    tech = generic_two_layer_tech()
    floorplan, design, pads = build_bus_scenario()
    for tool in (TOOL_P, TOOL_R):
        flow = run_flow(tech, floorplan, CellLibrary("none"), design, tool,
                        pad_positions=pads)
        coupling = flow.parasitics.coupling_of("crit")
        print(f"  {tool.name}: dropped {len(flow.dropped):2} constraints, "
              f"critical-net coupling = {coupling:6.1f} fF")
    print("  the tool that drops spacing+shield rules pays in coupling")
    print()


def workflow_section() -> None:
    print("=" * 72)
    print("Section 5 — workflow with default exit-code status policy")
    print("=" * 72)
    template = FlowTemplate("mini-flow")
    template.add_step(StepDef("synthesize", action=PythonAction(lambda api: 0)))
    template.add_step(
        StepDef("simulate", action=PythonAction(lambda api: 0),
                start_after=("synthesize",))
    )
    template.add_step(
        StepDef("report", action=PythonAction(lambda api: 1),
                start_after=("simulate",))
    )
    engine = WorkflowEngine()
    instance = engine.instantiate(template)
    summary = engine.run(instance)
    for name, record in instance.records.items():
        print(f"  {name:12} -> {record.state.value:10} ({record.message})")
    print()


def methodology_section() -> None:
    print("=" * 72)
    print("Section 6 — environment analysis and the reader's checklist")
    print("=" * 72)
    graph = cell_based_methodology()
    catalog = standard_tool_catalog()
    scenario = standard_scenarios()[1]  # netlist-handoff, the smallest
    analysis = analyze_environment(graph, catalog, scenario)
    print(f"  {analysis.summary()}")
    checklist = environment_checklist(analysis)
    lines = checklist.splitlines()
    print("  checklist preview (first 12 lines):")
    for line in lines[:12]:
        print("   ", line)
    print(f"    ... ({len(lines)} lines total)")
    print()


def main() -> None:
    schematic_section()
    hdl_section()
    pnr_section()
    workflow_section()
    methodology_section()
    print("done — see examples/*.py for deeper walks through each section")


if __name__ == "__main__":
    main()
