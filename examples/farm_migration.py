#!/usr/bin/env python3
"""Corpus migration through the farm: parallel workers + content-hash cache.

The paper's engagement migrated whole schematic libraries, not single
drawings.  This demo replays that workload shape with the batch farm:

1. build a 12-design corpus of multi-page chain schematics;
2. cold run — every design migrates, stage profile shows where time goes;
3. warm run — nothing changed, every design is served from the on-disk
   content-addressed cache;
4. touch ONE design and re-run — exactly one migration happens, the other
   eleven are cache hits (the incremental re-execution that makes repeated
   corpus jobs pay off).

Run:  python examples/farm_migration.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from cadinterop.common.geometry import Point
from cadinterop.farm import MigrationFarm, ResultCache
from cadinterop.schematic.model import TextLabel
from cadinterop.schematic.samples import (
    build_sample_plan,
    build_vl_libraries,
    generate_chain_schematic,
)

CORPUS_SIZE = 12
JOBS = 4


def build_corpus(libraries):
    shapes = [(1, 2, 3), (2, 2, 4), (1, 3, 5), (2, 3, 4)]
    corpus = []
    for index in range(CORPUS_SIZE):
        pages, chains, stages = shapes[index % len(shapes)]
        cell = generate_chain_schematic(
            libraries, pages=pages, chains_per_page=chains, stages=stages, seed=index
        )
        cell.name = f"corpus{index:02d}"
        corpus.append(cell)
    return corpus


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    cache_dir = workdir / "migration-cache"
    print(f"cache directory: {cache_dir}\n")

    libraries = build_vl_libraries()
    corpus = build_corpus(libraries)
    plan = build_sample_plan(source_libraries=libraries)
    total_instances = sum(cell.instance_count() for cell in corpus)
    print(f"corpus: {len(corpus)} designs, {total_instances} instances total")

    # --- 2. cold run: every design migrates -------------------------------
    farm = MigrationFarm(plan, jobs=JOBS, cache=ResultCache(cache_dir))
    cold = farm.run(corpus)
    print(f"\ncold run : {cold.summary()}")
    print("\nstage profile (cold):")
    print(cold.profile.table())

    # --- 3. warm run: nothing changed, all cache hits ---------------------
    warm = MigrationFarm(plan, jobs=JOBS, cache=ResultCache(cache_dir)).run(corpus)
    print(f"\nwarm run : {warm.summary()}")
    assert warm.cached == len(corpus), "warm run should be served from cache"

    # --- 4. touch one design, re-run: exactly one migration ---------------
    corpus[5].pages[0].add_label(TextLabel("rev B", Point(16, 16)))
    touched = MigrationFarm(plan, jobs=JOBS, cache=ResultCache(cache_dir)).run(corpus)
    print(f"touched  : {touched.summary()}")
    assert touched.migrated == 1 and touched.cached == len(corpus) - 1
    redone = [item.design for item in touched.items if item.status == "migrated"]
    print(f"\nre-migrated only {redone} after its edit; "
          f"{touched.cached} designs reused from cache")
    speedup = cold.wall_seconds / max(touched.wall_seconds, 1e-9)
    print(f"incremental re-run was {speedup:.1f}x faster than the cold run")


if __name__ == "__main__":
    main()
