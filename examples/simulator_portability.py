#!/usr/bin/env python3
"""Simulation & synthesis interoperability walkthrough (paper Section 3).

Demonstrates, with runnable artifacts, every failure mode Section 3 lists:
race-driven simulator disagreement, eight-character name truncation,
timing-check drift across simulator versions (and the +pre_16a_path fix),
co-simulation value-set corruption, the synthesizable-subset intersection
rule, and the sensitivity-list simulation/synthesis gap.

Run:  python examples/simulator_portability.py
"""

from cadinterop.common.diagnostics import IssueLog
from cadinterop.hdl import (
    NameAliasError,
    PC8_LIKE,
    TimingCheck,
    detect_races,
    parse_module,
    run_personality,
    version_drift,
)
from cadinterop.hdl.cosim import BridgeSignal, CoSimulation
from cadinterop.hdl.synth import (
    DEFAULT_VENDORS,
    intersection,
    portability_report,
    simulation_synthesis_mismatch,
    synthesize,
)
from cadinterop.hdl.simulator import simulate


def race_detection() -> None:
    print("=" * 72)
    print("3.1 race detection by personality ensemble")
    print("=" * 72)
    racy = parse_module("""
        module race (clk);
          input clk;
          reg clk, b, d, flag;
          wire a;
          assign a = b;
          always @(posedge clk) if (a != d) flag = 1; else flag = 0;
          always @(posedge clk) b = d;
          initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
        endmodule
    """)
    report = detect_races(racy, observed=["flag"], until=100)
    print(f"  {report.summary()}")
    for divergence in report.divergences:
        print(f"  outcomes per personality: {divergence.final_values}")

    clean = parse_module("""
        module clean (clk);
          input clk;
          reg clk, b, d, flag;
          always @(posedge clk) b <= d;
          always @(posedge clk) flag <= d;
          initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
        endmodule
    """)
    print(f"  {detect_races(clean, observed=['flag'], until=100).summary()}")
    print()


def name_truncation() -> None:
    print("=" * 72)
    print("3.3 eight-character truncation on a PC simulator")
    print("=" * 72)
    module = parse_module("""
        module m ();
          reg cntr_reset1, cntr_reset2;
          initial begin cntr_reset1 = 1'b0; cntr_reset2 = 1'b1; end
        endmodule
    """)
    log = IssueLog()
    try:
        run_personality(module, PC8_LIKE, log=log)
    except NameAliasError as exc:
        print(f"  pc8-like refused the design: {exc}")
    for issue in log:
        print(f"  {issue.format()}")
    print()


def timing_drift() -> None:
    print("=" * 72)
    print("3.1 timing drift across versions and +pre_16a_path")
    print("=" * 72)
    # Data arrives exactly at the setup limit: the boundary case the
    # modelled 1.6a change redefined.
    waves = {"clk": [(0, "0"), (50, "1")], "d": [(0, "0"), (30, "1")]}
    checks = [TimingCheck("setup", "d", "clk", limit=20)]
    plain = version_drift(checks, waves)
    pinned = version_drift(checks, waves, pre_16a_path=True)
    print(f"  violations per version            : {plain.per_version} "
          f"(drift: {plain.drifts})")
    print(f"  with +pre_16a_path                : {pinned.per_version} "
          f"(drift: {pinned.drifts})")
    print()


def cosimulation() -> None:
    print("=" * 72)
    print("3.1 co-simulation value-set mapping")
    print("=" * 72)
    producer = parse_module("""
        module producer ();
          reg raw, en; wire data;
          bufif1 b1 (data, raw, en);
          initial begin raw = 1'b1; en = 1'b1; #10 en = 1'b0; end
        endmodule
    """)
    consumer_src = """
        module consumer ();
          reg din; wire released, seen;
          assign released = din === 1'bz;
          assign seen = released ? 1'b1 : din;
        endmodule
    """
    bridge = [BridgeSignal("left", "data", "din")]
    for mode in ("correct", "naive"):
        cosim = CoSimulation(
            parse_module("""
                module producer ();
                  reg raw, en; wire data;
                  bufif1 b1 (data, raw, en);
                  initial begin raw = 1'b1; en = 1'b1; #10 en = 1'b0; end
                endmodule
            """),
            parse_module(consumer_src),
            bridge,
            value_mode=mode,
        )
        cosim.run(20)
        print(f"  {mode:8} mapping: tri-stated bus seen as "
              f"{cosim.value('right', 'din')!r}, pull-up result "
              f"{cosim.value('right', 'seen')!r}")
    print("  (z must survive; the naive bridge forces it to 0)")
    print()


def synthesis_portability() -> None:
    print("=" * 72)
    print("3.2 synthesizable subsets and the intersection rule")
    print("=" * 72)
    model = parse_module("""
        module style (a, b, out);
          input a, b; output out;
          reg out, c;
          always @(a or b) out = a & b & c;
          initial begin c = 1'b1; a = 1'b1; b = 1'b1; end
          initial begin #10 c = 1'b0; end
        endmodule
    """)
    report = portability_report(model)
    print(f"  features used: {sorted(report.features)}")
    for vendor, violations in report.per_vendor.items():
        verdict = "accepts" if not violations else f"rejects ({violations})"
        print(f"  {vendor}: {verdict}")
    common = intersection(DEFAULT_VENDORS)
    print(f"  portable (intersection) features: {len(common)} of all")

    mismatch = simulation_synthesis_mismatch(model, observed=["out"], until=100)
    print(f"\n  paper's modeling-style trap: always @(a or b) out = a & b & c;")
    print(f"  simulation vs synthesis results: {mismatch.diverging}")

    netlist = synthesize(model).netlist
    gate_sim = simulate(netlist, until=100)
    print(f"  synthesized gate netlist simulates out = {gate_sim.value('out')!r} "
          "(sensitive to c, unlike the RTL)")
    print()


def main() -> None:
    race_detection()
    name_truncation()
    timing_drift()
    cosimulation()
    synthesis_portability()


if __name__ == "__main__":
    main()
