#!/usr/bin/env python3
"""The Section 6 methodology, applied to a full environment.

Specification (200 tasks + scenarios) -> analysis (task/tool map with
holes/overlaps, data/control-flow diagrams, the five classic problems) ->
optimization (all three levers, measured) -> the reader's checklist.

Run:  python examples/methodology_audit.py
"""

from cadinterop.core import (
    analyze_environment,
    apply_conventions,
    cell_based_methodology,
    environment_checklist,
    map_tasks_to_tools,
    measure_lever,
    prune_report,
    repartition_boundary,
    standard_scenarios,
    standard_tool_catalog,
    substitute_technology,
    task,
)


def specification() -> None:
    print("=" * 72)
    print("system specification: tasks and scenarios")
    print("=" * 72)
    graph = cell_based_methodology()
    stats = graph.stats()
    print(f"  methodology: {stats['tasks']} tasks "
          f"(paper: 'approximately 200'), {stats['info_items']} normalized "
          f"info items, {stats['edges']} interactions, {stats['phases']} phases")
    print(f"  creation/analysis/validation: {stats['creation']}/"
          f"{stats['analysis']}/{stats['validation']}")
    print(f"  iteration loops present: {graph.has_iteration_loops()} "
          "(task graphs are not linear)")
    print("\n  scenario pruning:")
    for scenario in standard_scenarios():
        _pruned, report = prune_report(graph, scenario)
        print(f"    {scenario.name:22} {report.tasks_after:4}/{report.tasks_before} tasks "
              f"({report.task_reduction:.0%} pruned), interactions "
              f"{report.edges_after}/{report.edges_before} "
              f"({report.interaction_reduction:.0%} pruned)")
    print()


def analysis() -> None:
    print("=" * 72)
    print("system analysis: task/tool map, flow diagrams, classic problems")
    print("=" * 72)
    graph = cell_based_methodology()
    catalog = standard_tool_catalog()
    for scenario in standard_scenarios():
        env = analyze_environment(graph, catalog, scenario)
        print(f"  {env.summary()}")
    env = analyze_environment(graph, catalog, standard_scenarios()[0])
    print(f"\n  cross-tool data edges: {len(env.diagram.cross_tool_edges())}")
    worst = env.report.worst_tool_pair()
    if worst:
        print(f"  worst tool pair: {worst[0]} -> {worst[1]} ({worst[2]} findings)")
    print("\n  sample findings:")
    for finding in env.report.findings[:6]:
        print(f"    [{finding.problem:18}] {finding.info}: "
              f"{finding.producer_tool} -> {finding.consumer_tool}: {finding.detail}")
    print()


def optimization() -> None:
    print("=" * 72)
    print("system optimization: the three levers, measured")
    print("=" * 72)
    graph = cell_based_methodology()
    catalog = standard_tool_catalog()

    # Lever 1: repartition the rtl-editor -> race-analyzer boundary.
    repartitioned = repartition_boundary(
        catalog, "rtl-editor", "race-analyzer", "rtl-top"
    )
    delta1 = measure_lever(
        "repartition", "direct rtl-editor link into the race analyzer",
        graph, catalog, graph, repartitioned,
    )

    # Lever 2: flow-wide naming conventions.
    conventions = apply_conventions(catalog, namespace="project-names")
    delta2 = measure_lever(
        "conventions", "project-wide naming convention",
        graph, catalog, graph, conventions,
    )

    # Lever 3: formal verification replaces the gate-sim regression tasks.
    replacement = task(
        "formal-regression",
        "formal equivalence replaces gate-level regression simulation",
        ["rtl-top", "gate-netlist", "testbench"],
        ["gate-sim-results", "timing-sim-results"],
        phase="verification", kind="validation",
    )
    substituted = substitute_technology(
        graph, ["run-gate-sims", "run-timing-sims"], replacement
    )
    delta3 = measure_lever(
        "technology", "formal verification replaces gate/timing simulation",
        graph, catalog, substituted, catalog,
    )

    for delta in (delta1, delta2, delta3):
        print(f"  {delta.lever:12} {delta.description}")
        print(f"    findings {delta.findings_before} -> {delta.findings_after} "
              f"(removed {delta.findings_removed}), conversion cost "
              f"{delta.cost_before:.1f} -> {delta.cost_after:.1f}, "
              f"improved: {delta.improved}")
    print()


def checklist() -> None:
    print("=" * 72)
    print("the reader's checklist (abstract's promise), truncated")
    print("=" * 72)
    graph = cell_based_methodology()
    catalog = standard_tool_catalog()
    env = analyze_environment(graph, catalog, standard_scenarios()[1])
    lines = environment_checklist(env).splitlines()
    for line in lines[:20]:
        print(f"  {line}")
    print(f"  ... ({len(lines)} lines total)")


def main() -> None:
    specification()
    analysis()
    optimization()
    checklist()


if __name__ == "__main__":
    main()
