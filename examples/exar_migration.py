#!/usr/bin/env python3
"""The Exar case study, end to end (paper Section 2).

Replays the consulting engagement the paper reports: a design captured in
the Viewdraw-like system, with analog properties, condensed buses, globals,
and implicit multi-page connections, is migrated onto qualified
Composer-like libraries — through on-disk files in both vendor formats,
exactly as the real transfer would have happened.

Run:  python examples/exar_migration.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from cadinterop.common.diagnostics import render_checklist
from cadinterop.schematic import Migrator, io_cd, io_vl
from cadinterop.schematic.samples import (
    build_cd_libraries,
    build_sample_plan,
    build_sample_schematic,
    build_vl_libraries,
    generate_chain_schematic,
)
from cadinterop.schematic.verify import audit_properties


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    print(f"working directory: {workdir}\n")

    # --- 1. The customer's existing data, on disk in the source format ---
    vl_libraries = build_vl_libraries()
    source = build_sample_schematic(vl_libraries)
    source_path = workdir / "mixed1.vl"
    source_path.write_text(io_vl.dump_schematic(source))
    for library in vl_libraries.libraries():
        (workdir / f"{library.name}.vllib").write_text(io_vl.dump_library(library))
    print(f"wrote source design: {source_path} "
          f"({source.instance_count()} instances, {source.wire_count()} wires, "
          f"{len(source.pages)} pages)")

    # --- 2. Read it back (as the migration tool would) and migrate -------
    loaded = io_vl.load_schematic(source_path.read_text(), vl_libraries)
    plan = build_sample_plan(source_libraries=vl_libraries,
                             target_libraries=build_cd_libraries())
    result = Migrator(plan).migrate(loaded)

    print("\nmigration steps performed:")
    print(f"  scaling            : factor {result.scaling.factor} "
          f"({result.scaling.points_scaled} points, "
          f"{result.scaling.points_snapped} snapped)")
    print(f"  symbol replacement : {result.replacements.replacements} components, "
          f"{result.replacements.total_ripped} segments ripped / "
          f"{result.replacements.total_retained} retained "
          f"(similarity {result.replacements.mean_similarity:.0%})")
    print(f"  bus translation    : {result.bus_renames}")
    print(f"  connectors         : {result.connectors.offpage_added} off-page + "
          f"{result.connectors.hierarchy_added} hierarchy "
          f"({result.connectors.placed_on_floating_end} on floating ends)")
    print(f"  text cosmetics     : {result.text.labels_adjusted} labels adjusted")

    # --- 3. Independent verification (the paper insists on it) ------------
    print(f"\nverification: {result.verification.summary()}")
    audit = audit_properties(loaded, result.schematic, required=["designer"])
    print(f"property audit: {'clean' if not audit.has_errors() else audit.summary()}")

    # --- 4. Write the translated design in the target format -------------
    target_path = workdir / "mixed1.cd"
    target_path.write_text(io_cd.dump_schematic(result.schematic))
    print(f"\nwrote translated design: {target_path}")

    # Prove the target file is readable in the target system.
    cd_libraries = build_cd_libraries()
    reread = io_cd.load_schematic(target_path.read_text(), cd_libraries)
    print(f"target system reread OK: {reread.instance_count()} instances")

    # --- 5. A corpus-scale run, as the real engagement would batch -------
    print("\nbatch migration of a chain-design corpus:")
    for pages, chains, stages in ((2, 3, 4), (3, 4, 6), (4, 6, 8)):
        cell = generate_chain_schematic(
            vl_libraries, pages=pages, chains_per_page=chains, stages=stages
        )
        batch = Migrator(build_sample_plan(source_libraries=vl_libraries)).migrate(cell)
        status = "OK " if batch.clean else "FAIL"
        print(f"  {cell.name:20} {cell.instance_count():4} instances -> {status} "
              f"ripped {batch.replacements.total_ripped:4}, "
              f"verification {'pass' if batch.verification.equivalent else 'FAIL'}")

    # --- 6. Hand the migrated design to physical design -------------------
    print("\nhand-off into place-and-route (the next tool class):")
    from cadinterop.common.geometry import Rect
    from cadinterop.pnr.floorplan import Floorplan
    from cadinterop.pnr.placement import RowPlacer
    from cadinterop.pnr.routing import GridRouter
    from cadinterop.pnr.samples import build_cell_library
    from cadinterop.pnr.tech import generic_two_layer_tech
    from cadinterop.schematic.samples import generate_chain_schematic as _gen
    from cadinterop.schematic2pnr import sample_binding_table, schematic_to_pnr

    chain = Migrator(build_sample_plan(source_libraries=vl_libraries)).migrate(
        _gen(vl_libraries, pages=2, chains_per_page=2, stages=4)
    ).schematic
    conversion = schematic_to_pnr(chain, sample_binding_table(), build_cell_library())
    print(f"  bound {len(conversion.design.instances)} cells, "
          f"{len(conversion.design.nets)} nets; hand-off clean: {conversion.ok}")
    tech = generic_two_layer_tech()
    floorplan = Floorplan("chain", Rect(0, 0, 700, 700))
    RowPlacer(tech, floorplan, seed=9).place(conversion.design, {})
    routing = GridRouter(tech, floorplan, {}).route_design(conversion.design)
    print(f"  placed and routed: {len(routing.routed)}/{len(conversion.design.nets)} "
          f"nets ({routing.total_wirelength} tracks)")

    # --- 7. The issue log as a checklist ---------------------------------
    print("\n" + render_checklist(result.log, "migration issue checklist"))


if __name__ == "__main__":
    main()
