#!/usr/bin/env python3
"""A workflow-managed block flow (paper Section 5).

Captures a tapeout flow as a template, deploys it per design block
(hierarchical sub-flows), mixes shell/Python/persistent-tool actions,
exercises finish conditions, permissions, data-change triggers, and closes
the loop with metrics-based process tuning.

Run:  python examples/tapeout_workflow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from cadinterop.workflow import (
    ContentContains,
    DataVariable,
    FlowTemplate,
    MetricsCollector,
    PersistentTool,
    PythonAction,
    ShellAction,
    StepDef,
    StepState,
    ToolSessionAction,
    TriggerManager,
    VersionedStore,
    WorkflowEngine,
)


def build_block_template(workdir: Path, simulator: PersistentTool) -> FlowTemplate:
    """The per-block sub-flow: synth -> sim -> timing, one tool session."""
    template = FlowTemplate("block-flow")
    template.add_step(
        StepDef("synthesize", action=ToolSessionAction(simulator, "compile"))
    )
    template.add_step(
        StepDef("simulate", action=ToolSessionAction(simulator, "run", {"cycles": 500}),
                start_after=("synthesize",))
    )
    template.add_step(
        StepDef(
            "timing",
            action=ShellAction(f"echo 'slack met: 0 violations' > {workdir}/timing.log"),
            start_after=("simulate",),
            finish_conditions=(ContentContains(workdir / "timing.log", "0 violations"),),
        )
    )
    return template


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    print(f"working directory: {workdir}\n")

    # A persistent tool shared by the flow: invoked once, reused by feature.
    simulator = PersistentTool("sim-session")
    simulator.register_feature("compile", lambda: 0)
    simulator.register_feature("run", lambda cycles: 0)

    block_flow = build_block_template(workdir, simulator)

    chip = FlowTemplate("chip-tapeout")
    chip.add_step(StepDef("floorplan", action=PythonAction(lambda api: 0)))
    chip.add_step(StepDef("cpu", sub_flow=block_flow, start_after=("floorplan",)))
    chip.add_step(StepDef("cache", sub_flow=block_flow, start_after=("floorplan",)))
    chip.add_step(
        StepDef("assemble", action=PythonAction(lambda api: 0),
                start_after=("cpu", "cache"))
    )
    chip.add_step(
        StepDef("tapeout", action=PythonAction(lambda api: 0),
                start_after=("assemble",), permissions={"lead"})
    )

    engine = WorkflowEngine()
    instance = engine.instantiate(chip)

    print("run 1: designer role (no tapeout permission)")
    summary = engine.run(instance, user="bob", roles={"designer"})
    print(f"  succeeded={summary.succeeded} permission-skipped={summary.skipped_permission}")
    print(f"  tool sessions started: {simulator.start_count}, "
          f"feature calls: {simulator.call_log}")

    print("\nrun 2: lead signs off tapeout")
    summary = engine.run(instance, user="ann", roles={"lead"})
    print(f"  tapeout: {instance.state_of('tapeout').value}")
    print(f"  whole flow succeeded: {instance.all_succeeded()}")

    # --- data change triggers a rerun of downstream work -----------------
    print("\ndata change detection:")
    netlist = workdir / "cpu_netlist.v"
    netlist.write_text("module cpu; endmodule\n")
    triggers = TriggerManager(engine)
    cpu_instance = instance.children["cpu"]
    triggers.watch(cpu_instance, DataVariable("cpu-netlist", [netlist]),
                   ["simulate"])
    netlist.write_text("module cpu; wire fix; endmodule\n")
    for notification in triggers.poll():
        print(f"  notification: {notification.kind} on {notification.subject} "
              f"-> steps {notification.affected_steps} marked stale")
    print(f"  cpu.simulate state: {cpu_instance.state_of('simulate').value}")
    summary = engine.rerun_stale(cpu_instance)
    print(f"  after rerun: {cpu_instance.state_of('simulate').value}")

    # --- versioned data management ----------------------------------------
    print("\nversioned data management:")
    store = VersionedStore()
    store.check_in("cpu_netlist.v", netlist.read_text(), author="bob",
                   comment="post-fix netlist")
    store.check_in("cpu_netlist.v", netlist.read_text() + "// eco\n",
                   author="bob", comment="eco")
    for revision in store.history("cpu_netlist.v"):
        print(f"  r{revision.number} by {revision.author}: {revision.comment}")

    # --- closed-loop metrics ---------------------------------------------
    print("\nprocess metrics:")
    collector = MetricsCollector()
    collector.collect(instance)
    print("  " + collector.report().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
