#!/usr/bin/env python3
"""RTL to routed layout, across every hand-off the paper worries about.

One design travels the whole flow built by this library: RTL (Section 3
substrate) -> synthesis -> gate netlist -> lowering onto a cell library
(structure mapping + name mapping) -> placement -> rule-honoring routing ->
parasitic extraction (Section 4 substrate) -> and back to a simulatable
netlist for LVS-style closure against the original RTL.

Run:  python examples/rtl_to_layout.py
"""

from cadinterop.common.geometry import Point, Rect
from cadinterop.hdl.ast_nodes import Assign, Const, InitialBlock
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import simulate
from cadinterop.hdl.synth import synthesize
from cadinterop.pnr.floorplan import Floorplan, NetRule
from cadinterop.pnr.parasitics import extract
from cadinterop.pnr.placement import RowPlacer
from cadinterop.pnr.routing import GridRouter
from cadinterop.pnr.samples import build_cell_library
from cadinterop.pnr.tech import generic_two_layer_tech
from cadinterop.rtl2gds import (
    gate_netlist_to_pnr,
    pnr_to_gate_netlist,
    strip_testbench,
)

RTL = """
module alu_bit (a, b, sel, y);
  input a, b, sel; output y;
  reg y;
  always @(*) if (sel) y = a ^ b; else y = a & b;
endmodule
"""


def stimulate(module, values):
    body = [Assign(name, Const(value)) for name, value in values.items()]
    for name in values:
        module.add_net(name, "reg")
    module.initial_blocks.append(InitialBlock(body))
    return module


def main() -> None:
    print("1. RTL")
    rtl = parse_module(RTL)
    print(f"   module {rtl.name}: {len(rtl.always_blocks)} always block(s), "
          f"ports {rtl.port_names()}")

    print("\n2. synthesis (Section 3 substrate)")
    result = synthesize(rtl)
    hardware = strip_testbench(result.netlist)
    print(f"   {result.gate_count} gates, {result.latch_count} latches inferred")

    print("\n3. lowering onto the cell library (the hand-off)")
    library = build_cell_library()
    conversion = gate_netlist_to_pnr(hardware, library)
    print(f"   {conversion.cells_emitted} cells emitted "
          f"({conversion.decomposed_gates} gates decomposed onto 2-input cells)")
    print(f"   hand-off clean: {conversion.ok}")

    print("\n4. placement and routing (Section 4 substrate)")
    tech = generic_two_layer_tech()
    floorplan = Floorplan("alu_bit", Rect(0, 0, 800, 800))
    floorplan.add_net_rule(NetRule("y", width_tracks=1, spacing_tracks=2))
    pads = {
        "a": Point(0, 200), "b": Point(0, 400),
        "sel": Point(0, 600), "y": Point(795, 400),
    }
    design = conversion.design
    placement = RowPlacer(tech, floorplan, seed=5).place(design, pads)
    router = GridRouter(tech, floorplan, pads)
    routing = router.route_design(design)
    report = extract(tech, routing, router.occupancy)
    print(f"   placed {placement.placed} cells (HPWL {placement.hpwl}), "
          f"routed {len(routing.routed)}/{len(design.nets)} nets "
          f"({routing.total_wirelength} tracks, {sum(n.vias for n in routing.routed.values())} vias)")
    print(f"   total capacitance {report.total_cap:.1f} fF "
          f"(coupling {report.total_coupling:.1f} fF)")

    print("\n5. closure: re-derive a netlist from the layout and compare")
    recovered = pnr_to_gate_netlist(design)
    mismatches = 0
    for a in "01":
        for b in "01":
            for sel in "01":
                values = {"a": a, "b": b, "sel": sel}
                golden = simulate(stimulate(parse_module(RTL), values), until=10)
                check = simulate(stimulate(pnr_to_gate_netlist(design), values), until=10)
                marker = "ok" if golden.value("y") == check.value("y") else "MISMATCH"
                if marker != "ok":
                    mismatches += 1
                print(f"   a={a} b={b} sel={sel}: rtl={golden.value('y')} "
                      f"layout={check.value('y')} {marker}")
    print(f"\n   functional closure: {'PASS' if mismatches == 0 else 'FAIL'} "
          f"({8 - mismatches}/8 vectors)")


if __name__ == "__main__":
    main()
