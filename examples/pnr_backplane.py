#!/usr/bin/env python3
"""The P&R backplane walkthrough (paper Section 4).

Builds the feature matrix across three P&R tool dialects, conveys one
floorplan to each (showing what every tool drops), runs the full
place-and-route flow under each dialect, and quantifies the cost of the
gaps as routed coupling capacitance on the critical net.

Run:  python examples/pnr_backplane.py
"""

from cadinterop.common.diagnostics import render_checklist
from cadinterop.pnr import (
    ALL_TOOLS,
    convey,
    feature_matrix,
    generic_two_layer_tech,
    run_flow,
    universally_supported,
)
from cadinterop.pnr.cells import CellLibrary, derive_access_from_blockages
from cadinterop.pnr.formats import def_like, lef_like
from cadinterop.pnr.samples import (
    build_bus_scenario,
    build_cell_library,
    build_floorplan,
    generate_design,
)
from cadinterop.common.diagnostics import IssueLog


def show_feature_matrix() -> None:
    print("=" * 72)
    print("feature support matrix (minimal consistency over all tools)")
    print("=" * 72)
    matrix = feature_matrix()
    names = [tool.name for tool in ALL_TOOLS]
    print(f"  {'feature':34}" + "".join(f"{n:>8}" for n in names))
    for feature, support in sorted(matrix.items()):
        row = "".join(f"{'yes' if support[n] else '-':>8}" for n in names)
        print(f"  {feature:34}{row}")
    universal = universally_supported()
    print(f"\n  features ALL tools support: {universal or 'practically none'}")
    print()


def show_pin_access_conventions() -> None:
    print("=" * 72)
    print("pin access direction: property vs derived-from-blockages")
    print("=" * 72)
    library = build_cell_library()
    dff = library.cell("dff")
    for pin in dff.pins:
        declared = pin.props.access
        derived = derive_access_from_blockages(dff, pin.name)
        print(f"  dff.{pin.name:3} declared={sorted(declared) if declared else 'none':30} "
              f"derived={sorted(derived)}")
    print("  a derived-mode tool ignores the declaration entirely")
    print()


def show_conveyance() -> None:
    print("=" * 72)
    print("conveying one floorplan to three tools")
    print("=" * 72)
    floorplan = build_floorplan()
    library = build_cell_library()
    for tool in ALL_TOOLS:
        log = IssueLog()
        payload = convey(floorplan, library, tool, log)
        print(f"  {tool.name}: {len(payload.floorplan_directives)} directives "
              f"delivered, {len(payload.dropped)} intents dropped, "
              f"net rules honored: {sorted(payload.honored_rule_features) or 'none'}")
        for item in payload.dropped[:4]:
            print(f"     dropped: {item}")
        if len(payload.dropped) > 4:
            print(f"     ... and {len(payload.dropped) - 4} more")
    print()


def show_topology_cost() -> None:
    print("=" * 72)
    print("the measurable cost: coupling on the critical bus (experiment E11)")
    print("=" * 72)
    tech = generic_two_layer_tech()
    floorplan, design, pads = build_bus_scenario()
    print(f"  {'tool':8}{'shield tracks':>14}{'crit coupling (fF)':>20}")
    for tool in ALL_TOOLS:
        flow = run_flow(tech, floorplan, CellLibrary("none"), design, tool,
                        pad_positions=pads)
        print(f"  {tool.name:8}{flow.routing.shield_nodes:>14}"
              f"{flow.parasitics.coupling_of('crit'):>20.1f}")
    print()


def show_full_flow() -> None:
    print("=" * 72)
    print("full flow on a placed/routed random design")
    print("=" * 72)
    tech = generic_two_layer_tech()
    library = build_cell_library()
    floorplan = build_floorplan()
    design, pads = generate_design(library, cells=18)
    print(f"  design: {len(design.instances)} cells, {len(design.nets)} nets")
    for tool in ALL_TOOLS:
        flow = run_flow(tech, floorplan, library, design, tool, pad_positions=pads)
        print(f"  {tool.name}: hpwl={flow.placement.hpwl}, "
              f"routed {len(flow.routing.routed)}/{len(design.nets)} nets, "
              f"wirelength {flow.routing.total_wirelength} tracks, "
              f"total coupling {flow.parasitics.total_coupling:.1f} fF")

    # Exchange files: the library as LEF-like, the design as DEF-like.
    lef_text = lef_like.dump_library(library)
    def_text = def_like.dump_design(design, floorplan.die)
    print(f"\n  exchange files: LEF-like {len(lef_text.splitlines())} lines, "
          f"DEF-like {len(def_text.splitlines())} lines (round-trip tested)")
    print()


def main() -> None:
    show_feature_matrix()
    show_pin_access_conventions()
    show_conveyance()
    show_topology_cost()
    show_full_flow()


if __name__ == "__main__":
    main()
