# Convenience targets for the cadinterop reproduction.

PYTHON ?= python

.PHONY: install test bench rows examples farm trace audit checklist kernels all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate the experiment rows recorded in EXPERIMENTS.md.
rows:
	$(PYTHON) -m pytest benchmarks/ -s --benchmark-disable

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/exar_migration.py
	$(PYTHON) examples/simulator_portability.py
	$(PYTHON) examples/pnr_backplane.py
	$(PYTHON) examples/tapeout_workflow.py
	$(PYTHON) examples/methodology_audit.py
	$(PYTHON) examples/rtl_to_layout.py
	$(PYTHON) examples/farm_migration.py

# Corpus migration demo: parallel workers + content-hash cache.
farm:
	$(PYTHON) examples/farm_migration.py

# Traced batch migration: span tree + stats table on stdout.
trace:
	$(PYTHON) -m cadinterop.cli trace migrate-batch --generate 8 --jobs 2

# Provenance audit: migrate the demo corpus with lineage on, then render
# the per-stage/per-dialect loss matrix from the emitted trace.
audit:
	$(PYTHON) -m cadinterop.cli migrate-batch --generate 8 --jobs 2 \
		--lineage-out lineage.jsonl
	$(PYTHON) -m cadinterop.cli audit lineage.jsonl

checklist:
	$(PYTHON) -m cadinterop.cli checklist --scenario full-asic

# Kernel equivalence (compiled vs interpreter oracle) + the E18 speedup row.
kernels:
	$(PYTHON) -m pytest tests/hdl/test_kernel_differential.py -q
	$(PYTHON) -m pytest benchmarks/test_bench_kernel_compile.py -s --benchmark-disable

all: test bench examples

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis
