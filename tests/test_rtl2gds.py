"""Cross-section integration: RTL -> synthesis -> P&R -> back, verified."""

import pytest

from cadinterop.common.geometry import Point, Rect
from cadinterop.hdl.ast_nodes import Assign, Const, Delay, HDLError, InitialBlock
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import simulate
from cadinterop.hdl.synth import synthesize
from cadinterop.pnr.floorplan import Floorplan
from cadinterop.pnr.placement import RowPlacer
from cadinterop.pnr.routing import GridRouter
from cadinterop.pnr.samples import build_cell_library
from cadinterop.pnr.tech import generic_two_layer_tech
from cadinterop.rtl2gds import (
    gate_netlist_to_pnr,
    pnr_to_gate_netlist,
    strip_testbench,
)

RTL = """
module majority (a, b, c, y);
  input a, b, c; output y;
  reg y, a, b, c;
  always @(*) y = (a & b) | (b & c) | (a & c);
  initial begin a = 1'b1; b = 1'b0; c = 1'b1; end
endmodule
"""


@pytest.fixture(scope="module")
def library():
    return build_cell_library()


@pytest.fixture(scope="module")
def lowered(library):
    rtl = parse_module(RTL)
    netlist = synthesize(rtl).netlist
    hardware = strip_testbench(netlist)
    # Re-express the buf output bindings as gates only (synthesize emits
    # buf gates already; assigns only appear for constants).
    return rtl, hardware, gate_netlist_to_pnr(hardware, library)


class TestLowering:
    def test_lowering_succeeds(self, lowered):
        _rtl, _hardware, conversion = lowered
        assert conversion.ok
        assert conversion.cells_emitted > 0
        assert conversion.decomposed_gates >= 0

    def test_only_library_cells_used(self, lowered, library):
        _rtl, _hardware, conversion = lowered
        for instance in conversion.design.instances.values():
            assert instance.cell.name in ("nand2", "inv")

    def test_ports_become_pads(self, lowered):
        _rtl, _hardware, conversion = lowered
        pad_names = {
            who
            for terminals in conversion.design.nets.values()
            for kind, who, _pin in terminals
            if kind == "pad"
        }
        assert pad_names == {"a", "b", "c", "y"}

    def test_unmappable_gate_reported(self, library):
        module = parse_module(
            """
            module t (a, en, y); input a, en; output y;
            bufif1 b1 (y, a, en);
            endmodule
            """
        )
        conversion = gate_netlist_to_pnr(module, library)
        assert not conversion.ok
        assert conversion.log.has_errors()

    def test_behavioral_module_rejected(self, library):
        module = parse_module(
            "module t (a, y); input a; output y; reg y; always @(*) y = a; endmodule"
        )
        with pytest.raises(HDLError):
            gate_netlist_to_pnr(module, library)


class TestRoundTripEquivalence:
    def drive_and_compare(self, rtl_source, stimuli, library):
        """Synthesize, lower, re-derive, and compare outputs for stimuli."""
        for values in stimuli:
            rtl = parse_module(rtl_source)
            netlist = synthesize(rtl).netlist
            hardware = strip_testbench(netlist)
            conversion = gate_netlist_to_pnr(hardware, library)
            assert conversion.ok
            recovered = pnr_to_gate_netlist(conversion.design)

            # Build identical stimulus on both sides.
            def stimulate(module):
                body = [
                    Assign(name, Const(value)) for name, value in values.items()
                ]
                for name in values:
                    module.add_net(name, "reg")
                module.initial_blocks.append(InitialBlock(body))
                return module

            rtl_sim = simulate(stimulate(parse_module(rtl_source)), until=100)
            recovered_sim = simulate(stimulate(recovered), until=100)
            assert recovered_sim.value("y") == rtl_sim.value("y"), values

    def test_majority_equivalence_exhaustive(self, library):
        stimuli = [
            {"a": a, "b": b, "c": c}
            for a in "01" for b in "01" for c in "01"
        ]
        self.drive_and_compare(
            """
            module majority (a, b, c, y);
              input a, b, c; output y; reg y;
              always @(*) y = (a & b) | (b & c) | (a & c);
            endmodule
            """,
            stimuli,
            library,
        )

    def test_xor_equivalence(self, library):
        stimuli = [{"a": a, "b": b} for a in "01" for b in "01"]
        self.drive_and_compare(
            """
            module x (a, b, y);
              input a, b; output y; reg y;
              always @(*) y = a ^ b;
            endmodule
            """,
            stimuli,
            library,
        )


class TestPhysicalClosure:
    def test_lowered_design_places_and_routes(self, lowered, library):
        _rtl, _hardware, conversion = lowered
        tech = generic_two_layer_tech()
        # Conservative die for the handful of cells.
        floorplan = Floorplan("r2g", Rect(0, 0, 800, 800))
        pads = {
            "a": Point(0, 200), "b": Point(0, 400),
            "c": Point(0, 600), "y": Point(795, 400),
        }
        design = conversion.design
        for instance in design.instances.values():
            instance.location = None
        placement = RowPlacer(tech, floorplan, seed=5).place(design, pads)
        assert placement.placed == len(design.instances)
        router = GridRouter(tech, floorplan, pads)
        routing = router.route_design(design)
        assert routing.failed == [], routing.failed
        assert routing.total_wirelength > 0
