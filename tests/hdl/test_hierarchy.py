"""Tests for elaboration and flattening with reversible name maps."""

import pytest

from cadinterop.hdl.ast_nodes import HDLError
from cadinterop.hdl.elaborate import elaborate, hierarchy_depth, instance_count
from cadinterop.hdl.flatten import flatten, unflatten_name
from cadinterop.hdl.parser import parse
from cadinterop.hdl.simulator import simulate


def two_level_design():
    unit = parse(
        """
        module leaf (p, q);
          input p; output q;
          wire t;
          not g1 (t, p);
          not g2 (q, t);
        endmodule
        module mid (x, y);
          input x; output y;
          wire w;
          leaf u1 (.p(x), .q(w));
          leaf u2 (.p(w), .q(y));
        endmodule
        module top (a, b);
          input a; output b;
          reg a;
          mid m1 (.x(a), .y(b));
          initial a = 1'b1;
        endmodule
        """
    )
    unit.top = "top"
    return unit


class TestElaborate:
    def test_tree_shape(self):
        root = elaborate(two_level_design())
        assert instance_count(root) == 1 + 1 + 2
        assert hierarchy_depth(root) == 3
        paths = {node.dotted_path for node in root.walk()}
        assert paths == {"", "m1", "m1.u1", "m1.u2"}

    def test_unknown_module_rejected(self):
        unit = parse("module t (); wire w; ghost u1 (.p(w)); endmodule")
        with pytest.raises(HDLError):
            elaborate(unit)

    def test_unknown_port_rejected(self):
        unit = parse(
            """
            module c (p); input p; endmodule
            module t (); wire w; c u1 (.nope(w)); endmodule
            """
        )
        unit.top = "t"
        with pytest.raises(HDLError):
            elaborate(unit)

    def test_recursion_rejected(self):
        unit = parse(
            """
            module a (); wire w; b u1 (.p(w)); endmodule
            module b (p); input p; wire v; a u2 (); endmodule
            """
        )
        unit.top = "a"
        with pytest.raises(HDLError):
            elaborate(unit)


class TestFlatten:
    def test_internal_names_joined_with_separator(self):
        flat, name_map = flatten(two_level_design())
        assert "m1_u1_t" in flat.nets
        assert "m1_w" in flat.nets

    def test_ports_preserved(self):
        flat, _ = flatten(two_level_design())
        assert flat.port_names() == ["a", "b"]

    def test_behavior_preserved(self):
        # Four inverters in series: b == a.
        flat, _ = flatten(two_level_design())
        sim = simulate(flat, until=10)
        assert sim.value("b") == "1"

    def test_back_mapping_paper_requirement(self):
        """A problem found on a flat name maps back to the hierarchy."""
        flat, name_map = flatten(two_level_design())
        assert unflatten_name(name_map, "m1_u1_t") == "m1.u1.t"
        assert unflatten_name(name_map, "a") == "a"

    def test_collision_with_existing_flat_name_uniquified(self):
        unit = parse(
            """
            module leaf (p); input p; wire t; not g (t, p); endmodule
            module top (a);
              input a;
              wire u1_t;
              assign u1_t = a;
              leaf u1 (.p(a));
            endmodule
            """
        )
        unit.top = "top"
        flat, name_map = flatten(unit)
        # The leaf's t would flatten to u1_t which is taken: uniquified.
        flat_leaf_t = name_map.target_of("u1.t")
        assert flat_leaf_t != "u1_t"
        assert unflatten_name(name_map, flat_leaf_t) == "u1.t"
        assert unflatten_name(name_map, "u1_t") == "u1_t"

    def test_custom_separator(self):
        flat, name_map = flatten(two_level_design(), separator="$")
        assert "m1$u1$t" in flat.nets

    def test_initial_blocks_carried(self):
        flat, _ = flatten(two_level_design())
        assert len(flat.initial_blocks) == 1

    def test_shared_net_kinds(self):
        flat, _ = flatten(two_level_design())
        assert flat.nets["a"].kind == "reg"
