"""Exhaustive equivalence tests for the table-driven 4-value operators.

The Logic4 operators are precomputed lookup tables built at import from
small branching reference functions (``REFERENCE_OPS``).  These tests
sweep the full input space — 4 values for unary, 4x4 for binary — so the
tables can never silently drift from the reference semantics.
"""

import pytest

from cadinterop.hdl.logic import (
    AND_TABLE,
    BUF_TABLE,
    CASE_EQ_TABLE,
    EQ_TABLE,
    Logic4,
    Logic9,
    NOT_TABLE,
    OR_TABLE,
    REFERENCE_OPS,
    RESOLVE_TABLE,
    XOR_TABLE,
)

V4 = Logic4.VALUES

BINARY_OPS = ["and_", "or_", "xor", "eq", "case_eq", "resolve"]
BINARY_TABLES = {
    "and_": AND_TABLE,
    "or_": OR_TABLE,
    "xor": XOR_TABLE,
    "eq": EQ_TABLE,
    "case_eq": CASE_EQ_TABLE,
    "resolve": RESOLVE_TABLE,
}


class TestTableEquivalence:
    def test_not_table_matches_reference_exhaustively(self):
        reference = REFERENCE_OPS["not_"]
        for a in V4:
            assert NOT_TABLE[a] == reference(a)
            assert Logic4.not_(a) == reference(a)

    def test_buf_table_is_x_squashing_identity(self):
        for a in V4:
            expected = "x" if a in "xz" else a
            assert BUF_TABLE[a] == expected

    @pytest.mark.parametrize("op", BINARY_OPS)
    def test_binary_table_matches_reference_exhaustively(self, op):
        reference = REFERENCE_OPS[op]
        table = BINARY_TABLES[op]
        method = getattr(Logic4, op)
        for a in V4:
            for b in V4:
                assert table[a][b] == reference(a, b), (op, a, b)
                assert method(a, b) == reference(a, b), (op, a, b)

    @pytest.mark.parametrize("op", BINARY_OPS)
    def test_tables_are_total_over_the_value_set(self, op):
        table = BINARY_TABLES[op]
        assert set(table) == set(V4)
        for row in table.values():
            assert set(row) == set(V4)
            assert set(row.values()) <= set(V4)

    def test_out_of_set_inputs_raise_key_error(self):
        with pytest.raises(KeyError):
            Logic4.and_("0", "U")
        with pytest.raises(KeyError):
            Logic4.not_("W")
        with pytest.raises(KeyError):
            Logic4.resolve("q", "1")


class TestAlgebraicProperties:
    """Structural sanity on the generated tables."""

    @pytest.mark.parametrize("op", ["and_", "or_", "xor", "eq", "case_eq", "resolve"])
    def test_commutativity(self, op):
        table = BINARY_TABLES[op]
        for a in V4:
            for b in V4:
                assert table[a][b] == table[b][a]

    def test_resolve_z_is_identity(self):
        for a in V4:
            assert RESOLVE_TABLE["z"][a] == a
            assert RESOLVE_TABLE[a]["z"] == a

    def test_resolve_conflict_is_x(self):
        assert RESOLVE_TABLE["0"]["1"] == "x"
        assert RESOLVE_TABLE["1"]["0"] == "x"

    def test_and_or_absorption_on_binary_values(self):
        for a in "01":
            assert AND_TABLE[a]["1"] == a
            assert AND_TABLE[a]["0"] == "0"
            assert OR_TABLE[a]["0"] == a
            assert OR_TABLE[a]["1"] == "1"

    def test_case_eq_is_literal_even_on_xz(self):
        assert CASE_EQ_TABLE["x"]["x"] == "1"
        assert CASE_EQ_TABLE["z"]["z"] == "1"
        assert CASE_EQ_TABLE["x"]["z"] == "0"
        assert EQ_TABLE["x"]["x"] == "x"
        assert EQ_TABLE["z"]["z"] == "x"


class TestResolveMany:
    def test_empty_fold_is_high_impedance(self):
        assert Logic4.resolve_many([]) == "z"

    def test_single_contribution_is_identity(self):
        for a in V4:
            assert Logic4.resolve_many([a]) == a

    def test_fold_matches_pairwise_reference(self):
        reference = REFERENCE_OPS["resolve"]
        for a in V4:
            for b in V4:
                for c in V4:
                    expected = reference(reference(reference("z", a), b), c)
                    assert Logic4.resolve_many([a, b, c]) == expected


class TestLogic9Resolution:
    def test_exhaustive_commutativity(self):
        for a in Logic9.VALUES:
            for b in Logic9.VALUES:
                assert Logic9.resolve(a, b) == Logic9.resolve(b, a)

    def test_uninitialized_dominates(self):
        for a in Logic9.VALUES:
            assert Logic9.resolve("U", a) == "U"

    def test_high_impedance_is_identity(self):
        for a in Logic9.VALUES:
            if a == "-":
                continue  # don't-care resolves to X, not itself
            assert Logic9.resolve("Z", a) == a

    def test_strong_beats_weak(self):
        assert Logic9.resolve("0", "H") == "0"
        assert Logic9.resolve("1", "L") == "1"
        assert Logic9.resolve("L", "H") == "W"


class TestValidation:
    @pytest.mark.parametrize("bad", ["U", "W", "q", "", "01", "Z"])
    def test_logic4_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            Logic4.validate(bad)

    @pytest.mark.parametrize("good", list(V4))
    def test_logic4_validate_accepts(self, good):
        assert Logic4.validate(good) == good

    @pytest.mark.parametrize("bad", ["x", "z", "q", ""])
    def test_logic9_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            Logic9.validate(bad)
