"""Tests for the closure-compilation layer (cadinterop.hdl.compile).

The interpreter (``evaluate`` / ``Simulator`` process objects) is the
reference semantics; ``compile_expr`` / ``compile_model`` must agree with
it everywhere.  These tests sweep expressions and gates exhaustively over
small input spaces and check the model/run split — one CompiledModel
shared by many Simulators with zero state bleed.
"""

import itertools

import pytest

from cadinterop.hdl.ast_nodes import (
    AlwaysBlock,
    Binary,
    Cond,
    Const,
    Delay,
    GateInst,
    HDLError,
    Module,
    SensItem,
    Sensitivity,
    Unary,
    Var,
)
from cadinterop.hdl.compile import (
    CompiledModel,
    compile_always_body,
    compile_calls,
    compile_expr,
    compile_gate_eval,
    compile_model,
)
from cadinterop.hdl.logic import Logic4
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import FIFO, LIFO, Simulator, evaluate

V4 = Logic4.VALUES
BINARY_OPERATORS = ["&", "&&", "|", "||", "^", "~^", "==", "!=", "===", "!=="]


def gate_module(gate, inputs):
    module = Module("m")
    for name in inputs:
        module.add_net(name, "reg")
    module.add_net("o", "wire")
    module.add_gate(gate)
    return module


def assert_expr_equivalent(expr, names):
    """Compiled closure == interpreter over every 4-value assignment."""
    fn = compile_expr(expr)
    for combo in itertools.product(V4, repeat=len(names)):
        values = dict(zip(names, combo))
        assert fn(values) == evaluate(expr, values), (expr, values)


class TestExprEquivalence:
    def test_const_and_var(self):
        assert_expr_equivalent(Const("1"), [])
        assert_expr_equivalent(Var("a"), ["a"])

    @pytest.mark.parametrize("op", ["~", "!"])
    def test_unary_on_var_and_nested(self, op):
        assert_expr_equivalent(Unary(op, Var("a")), ["a"])
        assert_expr_equivalent(Unary(op, Unary("~", Var("a"))), ["a"])
        assert_expr_equivalent(Unary(op, Const("x")), [])

    @pytest.mark.parametrize("op", BINARY_OPERATORS)
    def test_binary_all_operand_shapes(self, op):
        # Var/Var, Var/nested, nested/Var, nested/nested — each shape is a
        # distinct specialization in compile_expr.
        assert_expr_equivalent(Binary(op, Var("a"), Var("b")), ["a", "b"])
        assert_expr_equivalent(
            Binary(op, Var("a"), Unary("~", Var("b"))), ["a", "b"]
        )
        assert_expr_equivalent(
            Binary(op, Unary("~", Var("a")), Var("b")), ["a", "b"]
        )
        assert_expr_equivalent(
            Binary(op, Unary("~", Var("a")), Unary("~", Var("b"))), ["a", "b"]
        )

    def test_conditional_exhaustive(self):
        expr = Cond(Var("s"), Var("a"), Var("b"))
        assert_expr_equivalent(expr, ["s", "a", "b"])

    def test_deep_mixed_tree(self):
        expr = Binary(
            "|",
            Binary("^", Var("a"), Unary("~", Var("b"))),
            Cond(Var("s"), Binary("&", Var("a"), Var("s")), Const("z")),
        )
        assert_expr_equivalent(expr, ["a", "b", "s"])

    def test_unknown_operator_rejected_at_compile_time(self):
        with pytest.raises(HDLError):
            compile_expr(Binary("<<", Var("a"), Var("b")))


class TestGateEquivalence:
    @pytest.mark.parametrize(
        "kind", ["and", "nand", "or", "nor", "xor", "xnor"]
    )
    @pytest.mark.parametrize("arity", [2, 3])
    def test_logic_gates_match_simulated_reference(self, kind, arity):
        inputs = [f"i{k}" for k in range(arity)]
        gate = GateInst(name="g", gate=kind, output="o", inputs=inputs)
        fn = compile_gate_eval(gate)
        module = gate_module(gate, inputs)
        for combo in itertools.product(V4, repeat=arity):
            values = dict(zip(inputs, combo))
            sim = Simulator(module, FIFO, kernel="interp")
            for name, value in values.items():
                sim.set_signal(name, value)
            sim.run(10)
            assert fn(dict(values)) == sim.value("o"), (kind, values)

    @pytest.mark.parametrize("kind", ["buf", "not", "bufif0", "bufif1"])
    def test_buffer_and_tristate_gates(self, kind):
        inputs = ["d"] if kind in ("buf", "not") else ["d", "e"]
        gate = GateInst(name="g", gate=kind, output="o", inputs=inputs)
        fn = compile_gate_eval(gate)
        module = gate_module(gate, inputs)
        for combo in itertools.product(V4, repeat=len(inputs)):
            values = dict(zip(inputs, combo))
            sim = Simulator(module, FIFO, kernel="interp")
            for name, value in values.items():
                sim.set_signal(name, value)
            sim.run(10)
            assert fn(dict(values)) == sim.value("o"), (kind, values)


class TestCompileModel:
    def test_delay_in_always_rejected_at_compile_time(self):
        block = AlwaysBlock(
            sensitivity=Sensitivity(items=[SensItem("clk", "posedge")]),
            body=[Delay(5)],
        )
        with pytest.raises(HDLError, match="delays inside always"):
            compile_always_body(block.body)
        module = Module("m")
        module.add_net("clk", "reg")
        module.always_blocks.append(block)
        with pytest.raises(HDLError, match="delays inside always"):
            compile_model(module)

    def test_unflattened_hierarchy_rejected(self):
        from cadinterop.hdl.ast_nodes import ModuleInst

        module = parse_module("module top; reg x; endmodule")
        module.add_instance(ModuleInst("u0", "leaf", {}))
        with pytest.raises(HDLError, match="flatten"):
            compile_model(module)

    def test_compiled_model_shared_across_runs_without_state_bleed(self):
        module = parse_module(
            """
            module shared;
              reg clk; reg q; wire w;
              assign w = ~q;
              initial begin clk = 0; q = 0; #5 clk = 1; #5 clk = 0; #5 clk = 1; end
              always @(posedge clk) q = w;
            endmodule
            """
        )
        model = compile_model(module)
        assert isinstance(model, CompiledModel)
        first = Simulator(model, FIFO, trace_signals=["q", "w"])
        first.run(100)
        # A second run from the same model starts from scratch.
        second = Simulator(model, FIFO, trace_signals=["q", "w"])
        assert second.now == 0
        assert second.value("q") == "x"  # fresh state, nothing ran yet
        second.run(100)
        assert first.values == second.values
        assert first.waveforms == second.waveforms
        # And a differently-ordered run shares the model too.
        third = Simulator(model, LIFO)
        third.run(100)
        assert third.values == first.values

    def test_compiled_model_with_interp_kernel_is_an_error(self):
        module = parse_module("module m; reg a; endmodule")
        model = compile_model(module)
        with pytest.raises(HDLError):
            Simulator(model, FIFO, kernel="interp")

    def test_unknown_kernel_rejected(self):
        module = parse_module("module m; reg a; endmodule")
        with pytest.raises(ValueError):
            Simulator(module, FIFO, kernel="turbo")

    def test_compile_calls_counter_advances_once_per_compile(self):
        module = parse_module("module m; reg a; endmodule")
        before = compile_calls()
        compile_model(module)
        assert compile_calls() == before + 1
        Simulator(module, FIFO)  # kernel="compiled" default compiles once
        assert compile_calls() == before + 2
        model = compile_model(module)
        baseline = compile_calls()
        Simulator(model, FIFO)
        Simulator(model, LIFO)
        assert compile_calls() == baseline  # spawning runs never recompiles

    def test_multi_driver_nets_still_resolve(self):
        module = parse_module(
            """
            module bus;
              reg a; reg b; wire w;
              assign w = a;
              assign w = b;
              initial begin a = 1'bz; b = 1'b1; end
            endmodule
            """
        )
        for kernel in ("interp", "compiled"):
            sim = Simulator(module, FIFO, kernel=kernel)
            sim.run(10)
            assert sim.value("w") == "1", kernel
