"""Tests for the 4-value and 9-value logic systems."""

import pytest
from hypothesis import given, strategies as st

from cadinterop.hdl.logic import Logic4, Logic9, naive_to4, roundtrip_fidelity, to4, to9

v4 = st.sampled_from(Logic4.VALUES)
v9 = st.sampled_from(Logic9.VALUES)


class TestLogic4:
    def test_validate(self):
        with pytest.raises(ValueError):
            Logic4.validate("U")

    def test_not(self):
        assert Logic4.not_("0") == "1"
        assert Logic4.not_("1") == "0"
        assert Logic4.not_("x") == "x"
        assert Logic4.not_("z") == "x"

    def test_and_dominates_zero(self):
        for v in Logic4.VALUES:
            assert Logic4.and_("0", v) == "0"
            assert Logic4.and_(v, "0") == "0"

    def test_or_dominates_one(self):
        for v in Logic4.VALUES:
            assert Logic4.or_("1", v) == "1"

    def test_xor_unknowns(self):
        assert Logic4.xor("1", "x") == "x"
        assert Logic4.xor("1", "0") == "1"
        assert Logic4.xor("1", "1") == "0"

    def test_eq_vs_case_eq(self):
        assert Logic4.eq("x", "x") == "x"
        assert Logic4.case_eq("x", "x") == "1"
        assert Logic4.case_eq("x", "z") == "0"

    def test_resolution(self):
        assert Logic4.resolve("z", "1") == "1"
        assert Logic4.resolve("0", "z") == "0"
        assert Logic4.resolve("0", "1") == "x"
        assert Logic4.resolve("1", "1") == "1"

    @given(v4, v4)
    def test_resolution_commutative(self, a, b):
        assert Logic4.resolve(a, b) == Logic4.resolve(b, a)

    @given(v4)
    def test_resolve_z_identity(self, a):
        assert Logic4.resolve("z", a) == a

    def test_resolve_many(self):
        assert Logic4.resolve_many(["z", "z", "1"]) == "1"
        assert Logic4.resolve_many([]) == "z"

    @given(v4, v4)
    def test_and_or_demorgan(self, a, b):
        # ~(a & b) == ~a | ~b holds in 4-value logic for 0/1/x inputs
        # (z behaves as x through the operators).
        lhs = Logic4.not_(Logic4.and_(a, b))
        rhs = Logic4.or_(Logic4.not_(a), Logic4.not_(b))
        assert lhs == rhs


class TestLogic9:
    def test_validate(self):
        with pytest.raises(ValueError):
            Logic9.validate("q")

    def test_u_dominates(self):
        for v in Logic9.VALUES:
            assert Logic9.resolve("U", v) == "U"

    def test_strong_conflict(self):
        assert Logic9.resolve("0", "1") == "X"

    def test_weak_yields_to_strong(self):
        assert Logic9.resolve("L", "1") == "1"
        assert Logic9.resolve("H", "0") == "0"

    def test_weak_conflict(self):
        assert Logic9.resolve("L", "H") == "W"

    @given(v9, v9)
    def test_resolution_commutative(self, a, b):
        assert Logic9.resolve(a, b) == Logic9.resolve(b, a)

    @given(v9.filter(lambda v: v != "-"))
    def test_z_identity(self, a):
        """Z yields to any driven value ('-' is the exception: don't-care
        resolves to X per IEEE 1164)."""
        assert Logic9.resolve("Z", a) == a

    def test_z_with_dont_care(self):
        assert Logic9.resolve("Z", "-") == "X"

    @given(v9, v9, v9)
    def test_resolution_associative(self, a, b, c):
        assert Logic9.resolve(Logic9.resolve(a, b), c) == Logic9.resolve(a, Logic9.resolve(b, c))

    def test_to_binary(self):
        assert Logic9.to_binary("L") == "0"
        assert Logic9.to_binary("H") == "1"
        assert Logic9.to_binary("W") == "x"
        assert Logic9.to_binary("U") == "x"


class TestConversions:
    @given(v4)
    def test_4_to_9_roundtrip_exact(self, value):
        assert to4(to9(value)) == value

    def test_correct_projection(self):
        assert to4("L") == "0" and to4("H") == "1"
        assert to4("Z") == "z"
        assert to4("U") == "x" and to4("W") == "x" and to4("-") == "x"

    def test_naive_projection_corrupts(self):
        """The legacy shortcut: z and x become hard 0."""
        assert naive_to4("Z") == "0"
        assert naive_to4("X") == "0"
        assert naive_to4("U") == "0"
        assert naive_to4("W") == "0"

    def test_naive_differs_from_correct_exactly_on_non_driven(self):
        differing = {v for v in Logic9.VALUES if to4(v) != naive_to4(v)}
        assert differing == {"U", "X", "Z", "W", "-"}

    def test_roundtrip_fidelity_full_for_correct_map(self):
        preserved, total = roundtrip_fidelity()
        assert (preserved, total) == (9, 9)

    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            to4("q")
        with pytest.raises(ValueError):
            to9("U")
