"""Tests for synthesis subsets, sensitivity analysis, netlisting, constraints."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import simulate
from cadinterop.hdl.synth import (
    ALL_DIALECTS,
    ConstraintSet,
    DEFAULT_VENDORS,
    DialectCsvLike,
    DialectIniLike,
    DialectSdcLike,
    SYNTH_A,
    SYNTH_B,
    SYNTH_C,
    SynthesisError,
    analyze,
    extract_features,
    intersection,
    migrate_constraints,
    portability_report,
    simulation_synthesis_mismatch,
    synthesis_interpretation,
    synthesize,
    written_in_intersection,
)

PAPER_EXAMPLE = """
module style (a, b, out);
  input a, b; output out;
  reg out, c;
  always @(a or b) out = a & b & c;
  initial begin c = 1'b1; a = 1'b1; b = 1'b1; end
  initial begin #10 c = 1'b0; end
endmodule
"""


class TestFeatureExtraction:
    def test_basic_features(self):
        m = parse_module(
            """
            module m (a, y); input a; output y; reg q;
            assign #2 y = ~a;
            always @(posedge a) q <= 1'b1;
            endmodule
            """
        )
        features = extract_features(m)
        assert "continuous-assign" in features
        assert "assign-delay" in features
        assert "always-edge" in features
        assert "nonblocking-assign" in features

    def test_tristate_and_case_equality(self):
        m = parse_module(
            "module m (a, y); input a; output y; assign y = a === 1'bz; endmodule"
        )
        features = extract_features(m)
        assert "tristate-z" in features and "case-equality" in features

    def test_multiple_drivers(self):
        m = parse_module(
            """
            module m (a, b, y); input a, b; output y;
            buf g1 (y, a);
            buf g2 (y, b);
            endmodule
            """
        )
        assert "multiple-drivers" in extract_features(m)

    def test_blocking_in_edge_block(self):
        m = parse_module(
            "module m (clk, d); input clk, d; reg q; always @(posedge clk) q = d; endmodule"
        )
        assert "blocking-in-edge-block" in extract_features(m)


class TestSubsets:
    def test_vendors_differ(self):
        sets = {v.name: v.accepted for v in DEFAULT_VENDORS}
        assert len(set(map(frozenset, sets.values()))) == 3

    def test_intersection_is_subset_of_each(self):
        common = intersection(DEFAULT_VENDORS)
        for vendor in DEFAULT_VENDORS:
            assert common <= vendor.accepted

    def test_star_block_rejected_by_synthB(self):
        m = parse_module(
            "module m (a, y); input a; output y; reg y; always @(*) y = a; endmodule"
        )
        assert SYNTH_A.accepts(m)
        assert not SYNTH_B.accepts(m)
        assert "always-star" in SYNTH_B.violations(m)

    def test_portability_report(self):
        m = parse_module(PAPER_EXAMPLE)
        report = portability_report(m)
        # initial-block is rejected by every vendor (testbench construct).
        assert not report.portable
        assert "initial-block" in report.blocking_features()

    def test_intersection_rule_predicate(self):
        portable = parse_module(
            """
            module p (clk, d, q); input clk, d; output q; reg q;
            always @(posedge clk) q <= d;
            endmodule
            """
        )
        assert written_in_intersection(portable)

    def test_level_always_fails_synthC(self):
        m = parse_module(
            "module m (a, y); input a; output y; reg y; always @(a) y = a; endmodule"
        )
        assert "always-level" in SYNTH_C.violations(m)


class TestSensitivityAnalysis:
    def test_paper_example_missing_c(self):
        log = IssueLog()
        findings = analyze(parse_module(PAPER_EXAMPLE), log)
        assert findings[0].missing == {"c"}
        assert any("disagree" in i.message for i in log)

    def test_complete_list_clean(self):
        m = parse_module(
            "module m (a, b); input a, b; reg y; always @(a or b) y = a & b; endmodule"
        )
        findings = analyze(m)
        assert not findings[0].has_issue

    def test_star_is_complete(self):
        m = parse_module(
            "module m (a, b); input a, b; reg y; always @(*) y = a & b; endmodule"
        )
        assert not analyze(m)[0].missing

    def test_edge_blocks_exempt(self):
        m = parse_module(
            "module m (clk, d); input clk, d; reg q; always @(posedge clk) q <= d; endmodule"
        )
        assert not analyze(m)[0].has_issue

    def test_latch_inference_flagged(self):
        m = parse_module(
            "module m (en, d); input en, d; reg q; always @(en or d) if (en) q = d; endmodule"
        )
        findings = analyze(m)
        assert findings[0].latch_targets == {"q"}

    def test_extra_signals_reported(self):
        m = parse_module(
            "module m (a, b); input a, b; reg y; always @(a or b) y = a; endmodule"
        )
        assert analyze(m)[0].extra == {"b"}

    def test_synthesis_interpretation_full_sensitivity(self):
        interpreted = synthesis_interpretation(parse_module(PAPER_EXAMPLE))
        block = interpreted.always_blocks[0]
        assert block.sensitivity.signals() == {"a", "b", "c"}

    def test_simulation_vs_synthesis_mismatch(self):
        """The paper's exact trap: sim holds stale out=1; synthesis sees 0."""
        report = simulation_synthesis_mismatch(
            parse_module(PAPER_EXAMPLE), observed=["out"], until=100
        )
        assert report.mismatch
        assert report.diverging["out"] == ("1", "0")

    def test_no_mismatch_for_complete_list(self):
        m = parse_module(
            """
            module ok (a, b, out);
              input a, b; output out; reg out, c;
              always @(a or b or c) out = a & b & c;
              initial begin c = 1'b1; a = 1'b1; b = 1'b1; end
              initial begin #10 c = 1'b0; end
            endmodule
            """
        )
        assert not simulation_synthesis_mismatch(m, ["out"], until=100).mismatch


class TestSynthesize:
    def test_comb_netlist_equivalence(self):
        m = parse_module(
            """
            module comb (a, b, c, y);
              input a, b, c; output y; reg y, a, b, c;
              always @(*) if (a) y = b ^ c; else y = b | c;
              initial begin a = 1'b1; b = 1'b1; c = 1'b0; end
            endmodule
            """
        )
        result = synthesize(m)
        assert result.gate_count > 0 and result.latch_count == 0
        sim_rtl = simulate(m, until=10)
        sim_gate = simulate(result.netlist, until=10)
        assert sim_rtl.value("y") == sim_gate.value("y") == "1"

    def test_ff_kept_as_process(self):
        m = parse_module(
            """
            module ff (clk, d, q);
              input clk, d; output q; reg q, clk, d;
              always @(posedge clk) q <= d;
              initial begin d = 1'b1; clk = 1'b0; #5 clk = 1'b1; end
            endmodule
            """
        )
        result = synthesize(m)
        assert result.ff_count == 1
        sim = simulate(result.netlist, until=10)
        assert sim.value("q") == "1"

    def test_latch_synthesized_with_feedback(self):
        m = parse_module(
            """
            module lat (en, d, q);
              input en, d; output q; reg q, en, d;
              always @(en or d) if (en) q = d;
              initial begin en = 1'b1; d = 1'b1; #5 en = 1'b0; #5 d = 1'b0; end
            endmodule
            """
        )
        result = synthesize(m)
        assert result.latch_count == 1
        sim = simulate(result.netlist, until=20)
        assert sim.value("q") == "1"  # latched despite d falling

    def test_synthesized_netlist_exposes_paper_mismatch(self):
        """Gate netlist of the incomplete-list block responds to c."""
        result = synthesize(parse_module(PAPER_EXAMPLE))
        sim = simulate(result.netlist, until=100)
        assert sim.value("out") == "0"  # RTL sim would say 1

    def test_profile_gate(self):
        m = parse_module(PAPER_EXAMPLE)
        with pytest.raises(SynthesisError):
            synthesize(m, profile=SYNTH_B)

    def test_hierarchy_rejected(self):
        from cadinterop.hdl.parser import parse

        unit = parse(
            """
            module c (p); input p; endmodule
            module t (); wire w; c u1 (.p(w)); endmodule
            """
        )
        unit.top = "t"
        with pytest.raises(SynthesisError):
            synthesize(unit.top_module)


class TestConstraints:
    def full_constraints(self):
        return ConstraintSet(
            clock_period=10.0,
            clock_port="clk",
            input_delays={"a": 2.0},
            output_delays={"y": 3.0},
            max_fanout=8,
            max_transition=0.5,
            dont_touch=["u_analog"],
            multicycle_paths={"u1/ff/d": 2},
        )

    def test_sdc_roundtrip_lossless(self):
        dialect = DialectSdcLike()
        c = self.full_constraints()
        loaded = dialect.load(dialect.dump(c))
        assert loaded == c

    def test_ini_loses_advanced_features(self):
        log = IssueLog()
        migrated, lost = migrate_constraints(
            self.full_constraints(), DialectSdcLike(), DialectIniLike(), log
        )
        assert set(lost) == {"max_transition", "dont_touch", "multicycle"}
        assert migrated.clock_period == 10.0
        assert migrated.multicycle_paths == {}
        assert len(log) == 3

    def test_csv_keeps_only_clock_and_io(self):
        _migrated, lost = migrate_constraints(
            self.full_constraints(), DialectSdcLike(), DialectCsvLike()
        )
        assert "max_fanout" in lost

    def test_lossless_within_support(self):
        c = ConstraintSet(clock_period=5.0, clock_port="clk", input_delays={"a": 1.0})
        for dialect in ALL_DIALECTS:
            migrated, lost = migrate_constraints(c, DialectSdcLike(), dialect)
            assert lost == []
            assert migrated == c
