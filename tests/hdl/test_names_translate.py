"""Tests for naming rules, truncation aliasing, and VHDL translation."""

import pytest
from hypothesis import given, strategies as st

from cadinterop.common.diagnostics import IssueLog
from cadinterop.hdl.names import (
    NamingConvention,
    find_truncation_aliases,
    is_legal_verilog_identifier,
    is_legal_vhdl_identifier,
    keyword_clashes,
    naive_meaning_inference,
    parse_escaped,
    safe_under_truncation,
)
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.translate import (
    plan_renames,
    rewrite_script,
    script_impact,
    translate_module,
    vhdl_safe_transform,
)


class TestIdentifierLegality:
    def test_verilog_allows_dollar(self):
        assert is_legal_verilog_identifier("net$1")

    def test_verilog_rejects_keyword(self):
        assert not is_legal_verilog_identifier("module")

    def test_paper_example_in_out(self):
        """'in' and 'out' are legal Verilog names but VHDL keywords."""
        assert is_legal_verilog_identifier("in")
        assert is_legal_verilog_identifier("out")
        assert not is_legal_vhdl_identifier("in")
        assert not is_legal_vhdl_identifier("out")

    def test_vhdl_underscore_rules(self):
        assert not is_legal_vhdl_identifier("_leading")
        assert not is_legal_vhdl_identifier("trailing_")
        assert not is_legal_vhdl_identifier("dou__ble")
        assert is_legal_vhdl_identifier("ok_name")

    def test_vhdl_case_insensitive_keywords(self):
        assert not is_legal_vhdl_identifier("Signal")

    def test_keyword_clashes(self):
        clashes = keyword_clashes(["clk", "in", "out", "data"])
        assert clashes == ["in", "out"]


class TestEscapedIdentifiers:
    def test_parse(self):
        name, rest = parse_escaped("\\bus[3] = 1;")
        assert name.body == "bus[3]" and rest == "= 1;"

    def test_requires_terminator(self):
        with pytest.raises(ValueError):
            parse_escaped("\\noterm")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_escaped("\\ x")

    def test_source_text_roundtrip(self):
        name, _ = parse_escaped("\\a*b ")
        assert name.source_text == "\\a*b "

    def test_naive_inference_traps(self):
        """Some tools wrongly infer meaning from characters in the name."""
        assert naive_meaning_inference("bus[3]") == "bus-bit"
        assert naive_meaning_inference("reset*") == "active-low"
        assert naive_meaning_inference("plain_name") is None


class TestTruncation:
    def test_paper_example(self):
        aliases = find_truncation_aliases(["cntr_reset1", "cntr_reset2", "clk"])
        assert aliases == {"cntr_res": ["cntr_reset1", "cntr_reset2"]}

    def test_safe_set(self):
        assert safe_under_truncation(["alpha", "beta", "gamma"])

    def test_custom_width(self):
        aliases = find_truncation_aliases(["abcd1", "abcd2"], significant=4)
        assert "abcd" in aliases

    @given(st.lists(st.from_regex(r"[a-z]{1,6}", fullmatch=True), unique=True, max_size=20))
    def test_short_names_never_alias(self, names):
        assert safe_under_truncation(names, significant=8)


class TestNamingConvention:
    def test_violations_collected(self):
        convention = NamingConvention(max_length=8)
        violations = convention.violations(
            ["in", "very_long_name", "net$x", "\\esc", "cntr_reset1", "cntr_reset2"]
        )
        reasons = {reason for _name, reason in violations}
        assert any("keyword" in reason for reason in reasons)
        assert any("longer than" in reason for reason in reasons)
        assert any("$" in reason for reason in reasons)
        assert any("escaped" in reason for reason in reasons)
        assert any("alias" in reason for reason in reasons)

    def test_clean_names_pass(self):
        convention = NamingConvention(max_length=8)
        assert convention.violations(["clk", "rst_n", "dat0"]) == []


class TestVhdlTranslation:
    def test_transform_examples(self):
        assert vhdl_safe_transform("in") == "in_sig"
        assert vhdl_safe_transform("net$1") == "net_d_1"
        assert vhdl_safe_transform("_x_") == "x"

    def test_plan_keeps_legal_names(self):
        plan = plan_renames(["clk", "in", "out"])
        assert "clk" not in plan.renames
        assert plan.renames["in"] == "in_sig"
        assert plan.renamed_count == 2

    def test_plan_avoids_collisions(self):
        plan = plan_renames(["in_sig", "in"])
        assert plan.renames["in"] != "in_sig"

    def test_translate_module(self):
        module = parse_module(
            """
            module m (in, out);
              input in; output out;
              assign out = ~in;
            endmodule
            """
        )
        log = IssueLog()
        translated, plan = translate_module(module, log)
        assert set(translated.port_names()) == {"in_sig", "out_sig"}
        assert plan.renamed_count == 2
        assert len(log) == 2

    def test_back_mapping(self):
        plan = plan_renames(["in"])
        assert plan.name_map.unmap("in_sig") == "in"

    def test_script_impact(self):
        plan = plan_renames(["in", "out", "clk"])
        script = "probe in\nprobe clk\ncompare out expected\nprobe in\n"
        impact = script_impact(script, plan)
        assert impact.broken_lines == 3
        affected_names = {name for _l, name, _t in impact.affected}
        assert affected_names == {"in", "out"}

    def test_rewrite_script(self):
        plan = plan_renames(["in"])
        assert rewrite_script("probe in; probe inside", plan) == "probe in_sig; probe inside"
