"""Tests for simulator personalities and ensemble race detection."""

import pytest

from cadinterop.common.diagnostics import IssueLog
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.personalities import (
    DEFAULT_ENSEMBLE,
    NameAliasError,
    PC8_LIKE,
    SimulatorPersonality,
    TURBO_LIKE,
    XL_LIKE,
    run_personality,
)
from cadinterop.hdl.races import detect_races
from cadinterop.hdl.simulator import FIFO

RACY_SRC = """
module race (clk);
  input clk;
  reg clk, b, d, flag;
  wire a;
  assign a = b;
  always @(posedge clk) if (a != d) flag = 1; else flag = 0;
  always @(posedge clk) b = d;
  initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""

CLEAN_SRC = """
module clean (clk);
  input clk;
  reg clk, b, d, flag;
  always @(posedge clk) b <= d;
  always @(posedge clk) flag <= d;
  initial begin d = 1'b1; b = 1'b0; flag = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
endmodule
"""


class TestPersonalities:
    def test_xl_and_turbo_disagree_on_race(self):
        """The paper's 'legitimately disagree': same model, both correct."""
        module = parse_module(RACY_SRC)
        xl = run_personality(module, XL_LIKE, until=100)
        turbo = run_personality(module, TURBO_LIKE, until=100)
        assert xl.value("flag") != turbo.value("flag")

    def test_personalities_agree_on_clean_model(self):
        module = parse_module(CLEAN_SRC)
        results = {
            p.name: run_personality(module, p, until=100).value("flag")
            for p in DEFAULT_ENSEMBLE
        }
        assert len(set(results.values())) == 1

    def test_pc8_truncation_aliases_error(self):
        module = parse_module(
            """
            module m ();
              reg cntr_reset1, cntr_reset2;
              initial begin cntr_reset1 = 1'b0; cntr_reset2 = 1'b1; end
            endmodule
            """
        )
        log = IssueLog()
        with pytest.raises(NameAliasError):
            run_personality(module, PC8_LIKE, log=log)
        assert log.has_errors()

    def test_pc8_truncates_but_simulates_unique_names(self):
        module = parse_module(
            """
            module m ();
              reg very_long_signal_name;
              initial very_long_signal_name = 1'b1;
            endmodule
            """
        )
        sim = run_personality(module, PC8_LIKE, until=10)
        assert sim.value("very_lon") == "1"

    def test_unlimited_personality_untouched(self):
        module = parse_module("module m (); reg abcdefghij; initial abcdefghij = 1'b1; endmodule")
        sim = run_personality(module, XL_LIKE, until=10)
        assert sim.value("abcdefghij") == "1"


class TestRaceDetection:
    def test_racy_model_flagged(self):
        report = detect_races(parse_module(RACY_SRC), observed=["flag"], until=100)
        assert report.has_race
        assert report.racy_signals == ["flag"]
        assert report.log.has_errors()
        assert "RACE" in report.summary()

    def test_clean_model_passes(self):
        report = detect_races(parse_module(CLEAN_SRC), observed=["flag", "b"], until=100)
        assert not report.has_race
        assert "race-free" in report.summary()

    def test_divergence_details(self):
        report = detect_races(parse_module(RACY_SRC), observed=["flag"], until=100)
        divergence = report.divergences[0]
        assert set(divergence.final_values) == {p.name for p in DEFAULT_ENSEMBLE}
        assert set(divergence.outcomes) == {"0", "1"}

    def test_observed_defaults_to_all_signals(self):
        report = detect_races(parse_module(RACY_SRC), until=100)
        assert "flag" in report.racy_signals

    def test_needs_two_personalities(self):
        with pytest.raises(ValueError):
            detect_races(parse_module(CLEAN_SRC), personalities=[XL_LIKE])

    def test_waveform_only_divergence_counts(self):
        """A glitch that converges to the same final value is still a race."""
        src = """
        module g (clk);
          input clk;
          reg clk, b, d, y;
          wire a;
          assign a = b;
          always @(posedge clk) b = d;
          always @(posedge clk) y = a;
          always @(a) y = a;
          initial begin d = 1'b1; b = 1'b0; y = 1'b0; clk = 1'b0; #5 clk = 1'b1; end
        endmodule
        """
        report = detect_races(parse_module(src), observed=["y"], until=100)
        # Final y converges to 1 everywhere, but the waveforms differ.
        if report.has_race:
            assert report.divergences[0].waveform_mismatch or (
                len(set(report.divergences[0].final_values.values())) > 1
            )
