"""Tests for two-kernel co-simulation and its failure modes."""

import pytest

from cadinterop.hdl.cosim import (
    BridgeSignal,
    CoSimulation,
    compare_with_reference,
)
from cadinterop.hdl.parser import parse_module
from cadinterop.hdl.simulator import simulate


def producer_src():
    # Drives 'data' including a tri-state (z) phase via bufif1.
    return parse_module(
        """
        module producer ();
          reg raw, en; wire data;
          bufif1 b1 (data, raw, en);
          initial begin
            raw = 1'b1; en = 1'b1;
            #10 en = 1'b0;
            #10 en = 1'b1; raw = 1'b0;
          end
        endmodule
        """
    )


def consumer_src():
    # Pull-up style consumption: z means 'released' -> sees pulled high.
    return parse_module(
        """
        module consumer ();
          reg din; wire released, seen;
          assign released = din === 1'bz;
          assign seen = released ? 1'b1 : din;
        endmodule
        """
    )


def bridge():
    return [BridgeSignal("left", "data", "din")]


class TestCorrectBridge:
    def test_z_survives_correct_value_mapping(self):
        cosim = CoSimulation(producer_src(), consumer_src(), bridge(), value_mode="correct")
        cosim.run(15)
        assert cosim.value("right", "din") == "z"
        assert cosim.value("right", "seen") == "1"  # pulled high while released

    def test_final_values_propagate(self):
        cosim = CoSimulation(producer_src(), consumer_src(), bridge(), value_mode="correct")
        cosim.run(100)
        assert cosim.value("right", "din") == "0"
        assert cosim.value("right", "seen") == "0"

    def test_matches_monolithic_reference(self):
        reference = simulate(
            parse_module(
                """
                module mono ();
                  reg raw, en; wire data, released, seen;
                  bufif1 b1 (data, raw, en);
                  assign released = data === 1'bz;
                  assign seen = released ? 1'b1 : data;
                  initial begin
                    raw = 1'b1; en = 1'b1;
                    #10 en = 1'b0;
                    #10 en = 1'b1; raw = 1'b0;
                  end
                endmodule
                """
            ),
            until=100,
        )
        cosim = CoSimulation(producer_src(), consumer_src(), bridge(), value_mode="correct")
        cosim.run(100)
        report = compare_with_reference(
            cosim, reference, {"data": ("right", "din"), "seen": ("right", "seen")}
        )
        assert report.exact
        assert report.fidelity == 1.0


class TestValueSetFailure:
    def test_naive_mapping_corrupts_z(self):
        """The paper's value-set inconsistency: z arrives as hard 0."""
        cosim = CoSimulation(producer_src(), consumer_src(), bridge(), value_mode="naive")
        cosim.run(15)
        assert cosim.value("right", "din") == "0"  # should be z
        assert cosim.value("right", "seen") == "0"  # pull-up defeated

    def test_naive_mapping_fidelity_below_one(self):
        reference = simulate(
            parse_module(
                """
                module mono ();
                  reg raw, en; wire data, released, seen;
                  bufif1 b1 (data, raw, en);
                  assign released = data === 1'bz;
                  assign seen = released ? 1'b1 : data;
                  initial begin raw = 1'b1; en = 1'b1; #10 en = 1'b0; end
                endmodule
                """
            ),
            until=15,
        )
        cosim = CoSimulation(producer_src(), consumer_src(), bridge(), value_mode="naive")
        cosim.run(15)
        report = compare_with_reference(
            cosim, reference, {"data": ("right", "din"), "seen": ("right", "seen")}
        )
        assert not report.exact
        assert report.fidelity < 1.0

    def test_bad_value_mode_rejected(self):
        with pytest.raises(ValueError):
            CoSimulation(producer_src(), consumer_src(), bridge(), value_mode="wrong")


class TestCycleAlignment:
    def round_trip_modules(self):
        left = parse_module(
            """
            module l ();
              reg stim; wire back, out;
              assign out = stim;
              initial begin stim = 1'b0; #10 stim = 1'b1; end
            endmodule
            """
        )
        right = parse_module(
            """
            module r ();
              wire fwd, echo;
              assign echo = ~fwd;
            endmodule
            """
        )
        mapping = [
            BridgeSignal("left", "out", "fwd"),
            BridgeSignal("right", "echo", "back"),
        ]
        return left, right, mapping

    def test_aligned_reaches_fixpoint_within_timestep(self):
        left, right, mapping = self.round_trip_modules()
        cosim = CoSimulation(left, right, mapping, aligned=True)
        cosim.run(20)
        assert cosim.value("right", "fwd") == "1"
        assert cosim.value("left", "back") == "0"

    def test_misaligned_bridge_is_stale(self):
        """One blind exchange per step: the echo lags the forward value."""
        left, right, mapping = self.round_trip_modules()
        cosim = CoSimulation(left, right, mapping, aligned=False)
        cosim.run(10)  # stop exactly at the stimulus edge
        # fwd was exchanged before the right kernel could settle ~fwd and
        # send it back: back is stale (still reflecting the pre-edge value
        # or unknown), unlike the aligned run at the same instant.
        aligned = CoSimulation(*self.round_trip_modules(), aligned=True)
        aligned.run(10)
        assert aligned.value("left", "back") == "0"
        assert cosim.value("left", "back") != "0"

    def test_divergent_exchange_detected(self):
        """A cross-kernel combinational loop with an odd number of
        inversions oscillates and the exchange fixpoint never converges."""
        from cadinterop.hdl.ast_nodes import HDLError

        # Loop: left a = rst ? 0 : ~b; right echoes c straight back.  Once
        # rst drops, definite values circulate through one net inversion.
        left = parse_module(
            """
            module l (); reg rst; wire a, b;
            assign a = rst ? 1'b0 : ~b;
            initial begin rst = 1'b1; #5 rst = 1'b0; end
            endmodule
            """
        )
        right = parse_module("module r (); wire c, d; assign d = c; endmodule")
        mapping = [
            BridgeSignal("left", "a", "c"),
            BridgeSignal("right", "d", "b"),
        ]
        cosim = CoSimulation(left, right, mapping, aligned=True)
        with pytest.raises(HDLError):
            cosim.run(10)
