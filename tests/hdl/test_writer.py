"""Round-trip tests for the HDL writer: parse(write(m)) == m."""

import pytest
from hypothesis import given, settings, strategies as st

from cadinterop.hdl.ast_nodes import (
    Binary,
    Cond,
    Const,
    Module,
    Unary,
    Var,
)
from cadinterop.hdl.parser import parse, parse_module
from cadinterop.hdl.simulator import Simulator, simulate
from cadinterop.hdl.writer import write_design, write_expr, write_module


def modules_equal(a: Module, b: Module) -> bool:
    if a.name != b.name:
        return False
    if [(p.name, p.direction) for p in a.ports] != [(p.name, p.direction) for p in b.ports]:
        return False
    if {n: d.kind for n, d in a.nets.items()} != {n: d.kind for n, d in b.nets.items()}:
        return False
    if [(x.target, x.expr, x.delay) for x in a.assigns] != [
        (x.target, x.expr, x.delay) for x in b.assigns
    ]:
        return False
    if [(g.gate, g.output, g.inputs, g.delay) for g in a.gates] != [
        (g.gate, g.output, g.inputs, g.delay) for g in b.gates
    ]:
        return False
    if len(a.always_blocks) != len(b.always_blocks):
        return False
    for block_a, block_b in zip(a.always_blocks, b.always_blocks):
        if block_a.sensitivity.star != block_b.sensitivity.star:
            return False
        if [(i.signal, i.edge) for i in block_a.sensitivity.items] != [
            (i.signal, i.edge) for i in block_b.sensitivity.items
        ]:
            return False
        if repr(block_a.body) != repr(block_b.body):
            return False
    if len(a.initial_blocks) != len(b.initial_blocks):
        return False
    for block_a, block_b in zip(a.initial_blocks, b.initial_blocks):
        if repr(block_a.body) != repr(block_b.body):
            return False
    if [(i.name, i.module_name, i.connections) for i in a.instances] != [
        (i.name, i.module_name, i.connections) for i in b.instances
    ]:
        return False
    return True


FIXTURES = [
    """
    module comb (a, b, c, y);
      input a, b, c; output y;
      wire w;
      assign #2 w = a & b | ~c;
      assign y = w ^ (a ~^ b);
    endmodule
    """,
    """
    module seq (clk, d, q, qb);
      input clk, d; output q, qb;
      reg q, qb;
      always @(posedge clk) begin
        q <= d;
        qb <= ~d;
      end
      always @(negedge clk) q <= 1'b0;
    endmodule
    """,
    """
    module styles (a, b);
      input a, b; reg x, y;
      always @(*) x = a ? b : ~b;
      always @(a or b) begin
        if (a & b) y = 1'b1;
        else begin
          y = 1'b0;
          x = b;
        end
      end
      initial begin x = 1'b0; #5 x = 1'b1; #3 y = 1'bz; end
    endmodule
    """,
    """
    module gates (a, b, en, y);
      input a, b, en; output y;
      wire n1, n2;
      nand #3 g1 (n1, a, b);
      bufif1 g2 (y, n1, en);
      xor g3 (n2, a, b, en);
    endmodule
    """,
    """
    module logic_ops (a, b, y);
      input a, b; output y;
      assign y = a && b || !(a == b) & (a !== 1'bx);
    endmodule
    """,
]


class TestModuleRoundTrip:
    @pytest.mark.parametrize("source", FIXTURES, ids=range(len(FIXTURES)))
    def test_roundtrip_structural(self, source):
        original = parse_module(source)
        text = write_module(original)
        reparsed = parse_module(text)
        assert modules_equal(original, reparsed), text

    @pytest.mark.parametrize("source", FIXTURES[:3], ids=range(3))
    def test_roundtrip_behavioral(self, source):
        original = parse_module(source)
        reparsed = parse_module(write_module(original))
        sim_a = simulate(original, until=100)
        sim_b = simulate(reparsed, until=100)
        for signal in original.nets:
            assert sim_a.value(signal) == sim_b.value(signal)

    def test_escaped_identifier_roundtrip(self):
        source = "module m (); wire \\bus[3] ; assign \\bus[3] = 1'b0; endmodule"
        original = parse_module(source)
        reparsed = parse_module(write_module(original))
        assert "bus[3]" in reparsed.nets

    def test_hierarchy_roundtrip(self):
        source = """
        module child (p, q); input p; output q; assign q = ~p; endmodule
        module top (x, y); input x; output y; wire m;
          child u1 (.p(x), .q(m));
          child u2 (.p(m), .q(y));
        endmodule
        """
        unit = parse(source)
        text = write_design(unit)
        reparsed = parse(text)
        assert set(reparsed.modules) == {"child", "top"}
        assert modules_equal(unit.module("top"), reparsed.module("top"))

    def test_synthesized_netlist_roundtrips(self):
        module = parse_module(
            """
            module m (a, b, y); input a, b; output y; reg y;
            always @(*) if (a) y = b; else y = ~b;
            endmodule
            """
        )
        from cadinterop.hdl.synth import synthesize

        netlist = synthesize(module).netlist
        reparsed = parse_module(write_module(netlist))
        assert modules_equal(netlist, reparsed)


# ---------------------------------------------------------------------------
# Property: random expression trees survive write/parse
# ---------------------------------------------------------------------------

_vars = st.sampled_from([Var("a"), Var("b"), Var("c")])
_leaves = st.one_of(_vars, st.sampled_from([Const("0"), Const("1"), Const("x"), Const("z")]))


def _extend(children):
    return st.one_of(
        st.builds(Unary, st.sampled_from(["~", "!"]), children),
        st.builds(
            Binary,
            st.sampled_from(list({"&", "|", "^", "~^", "&&", "||", "==", "!=", "===", "!=="})),
            children,
            children,
        ),
        st.builds(Cond, children, children, children),
    )


expression_trees = st.recursive(_leaves, _extend, max_leaves=12)


class TestExpressionRoundTripProperty:
    @given(expr=expression_trees)
    @settings(max_examples=120, deadline=None)
    def test_write_parse_identity(self, expr):
        text = write_expr(expr)
        module = parse_module(
            f"module m (a, b, c, y); input a, b, c; output y; assign y = {text}; endmodule"
        )
        assert module.assigns[0].expr == expr, text
